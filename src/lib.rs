//! # logrel — logical reliability of interacting real-time tasks
//!
//! Facade crate re-exporting the whole toolchain built around the DATE'08
//! paper *Logical Reliability of Interacting Real-Time Tasks*: the core
//! model, the joint schedulability/reliability analyses, the refinement
//! checker, the HTL-style language front-end, the E-machine code generator,
//! the distributed-runtime simulator and the three-tank case study.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use logrel_core as core;
pub use logrel_emachine as emachine;
pub use logrel_lang as lang;
pub use logrel_lint as lint;
pub use logrel_obs as obs;
pub use logrel_query as query;
pub use logrel_refine as refine;
pub use logrel_reliability as reliability;
pub use logrel_sched as sched;
pub use logrel_serve as serve;
pub use logrel_sim as sim;
pub use logrel_steerbywire as steerbywire;
pub use logrel_threetank as threetank;
pub use logrel_validate as validate;

/// One-stop prelude for applications.
pub mod prelude {
    pub use logrel_core::prelude::*;
}
