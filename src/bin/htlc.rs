//! `htlc` — the logrel command-line compiler and analysis driver.
//!
//! ```text
//! htlc check <file>                  parse, elaborate and run the joint
//!                                    schedulability/reliability analysis
//! htlc fmt <file>                    pretty-print the program
//! htlc graph <file>                  emit the specification graph as DOT
//! htlc ecode <file> <host>           disassemble one host's E-code
//! htlc importance <file> <comm>      rank components by Birnbaum importance
//! htlc simulate <file> [rounds [seed]]  fault-injected simulation summary
//! htlc refine <refining> <refined>   check the refinement relation (κ by
//!                                    task name)
//! ```

use logrel::lang::{compile, elaborate_file, parse, parse_file, print_program};
use logrel::refine::{check_refinement, validate, Kappa, SystemRef};
use logrel::reliability::architecture_importance;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("htlc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "usage: htlc <check|fmt|graph|ecode|importance|simulate|refine> <args>\n\
                 run `htlc help` for details";
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => {
            println!(
                "htlc — logical-reliability compiler\n\n\
                 htlc check <file>                 joint analysis with SRG table\n\
                 htlc check-file <file>            multi-program file with declared refinements\n\
                 htlc fmt <file>                   pretty-print\n\
                 htlc graph <file>                 specification graph (DOT)\n\
                 htlc ecode <file> <host>          E-code disassembly\n\
                 htlc latency <file>               worst-case data ages\n\
                 htlc importance <file> <comm>     component importance ranking\n\
                 htlc simulate <file> [rounds [seed]]  fault-injected run\n\
                 htlc refine <refining> <refined>  refinement check"
            );
            Ok(())
        }
        "check" => {
            let path = args.get(1).ok_or(usage)?;
            let sys = compile(&read(path)?).map_err(|e| e.to_string())?;
            println!(
                "program `{}`: {} communicators, {} tasks, round {}",
                sys.name,
                sys.spec.communicator_count(),
                sys.spec.task_count(),
                sys.spec.round_period()
            );
            match validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)) {
                Ok(cert) => {
                    println!("VALID: schedulable and reliable\n");
                    println!("{}", cert.verdict.static_report().render(&sys.spec));
                    println!(
                        "{}",
                        cert.schedule.gantt(
                            |t| sys.spec.task(t).name().to_owned(),
                            |h| sys.arch.host(h).name().to_owned(),
                        )
                    );
                    Ok(())
                }
                Err(e) => Err(format!("INVALID: {e}")),
            }
        }
        "check-file" => {
            // Multi-program file: validate the refinement roots fully, then
            // check each declared refinement and inherit validity (Prop 2).
            let path = args.get(1).ok_or(usage)?;
            let file = parse_file(&read(path)?).map_err(|e| e.to_string())?;
            let elaborated = elaborate_file(&file).map_err(|e| e.to_string())?;
            println!(
                "{} program(s), {} refinement declaration(s)",
                elaborated.systems.len(),
                elaborated.refinements.len()
            );
            // Roots: programs no declaration refines further.
            let refining_set: std::collections::BTreeSet<usize> = elaborated
                .refinements
                .iter()
                .map(|r| r.refining)
                .collect();
            let mut certs = std::collections::BTreeMap::new();
            for (i, sys) in elaborated.systems.iter().enumerate() {
                if !refining_set.contains(&i) {
                    let cert = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp))
                        .map_err(|e| format!("program `{}` is INVALID: {e}", sys.name))?;
                    println!("program `{}`: VALID (analysed directly)", sys.name);
                    certs.insert(i, cert);
                }
            }
            for r in &elaborated.refinements {
                let refining = &elaborated.systems[r.refining];
                let refined = &elaborated.systems[r.refined];
                let kappa = Kappa::from_pairs(
                    &refining.spec,
                    &refined.spec,
                    r.pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())),
                )
                .map_err(|e| e.to_string())?;
                check_refinement(
                    SystemRef::new(&refining.spec, &refining.arch, &refining.imp),
                    SystemRef::new(&refined.spec, &refined.arch, &refined.imp),
                    &kappa,
                )
                .map_err(|e| e.to_string())?;
                println!(
                    "program `{}`: VALID by refinement of `{}` (Proposition 2)",
                    refining.name, refined.name
                );
            }
            Ok(())
        }
        "fmt" => {
            let path = args.get(1).ok_or(usage)?;
            let program = parse(&read(path)?).map_err(|e| e.to_string())?;
            print!("{}", print_program(&program));
            Ok(())
        }
        "latency" => {
            let path = args.get(1).ok_or(usage)?;
            let sys = compile(&read(path)?).map_err(|e| e.to_string())?;
            let ages = logrel::sched::data_ages(&sys.spec);
            println!("{:<16} {:>16}", "communicator", "worst data age");
            for c in sys.spec.communicator_ids() {
                let age = ages
                    .age(c)
                    .map_or("unbounded/-".to_owned(), |a| a.to_string());
                println!("{:<16} {:>16}", sys.spec.communicator(c).name(), age);
            }
            Ok(())
        }
        "graph" => {
            let path = args.get(1).ok_or(usage)?;
            let sys = compile(&read(path)?).map_err(|e| e.to_string())?;
            let graph = logrel::core::graph::SpecGraph::new(&sys.spec);
            print!("{}", graph.to_dot(&sys.spec));
            let cycles = graph.communicator_cycles();
            if !cycles.is_memory_free() {
                eprintln!("warning: the specification has communicator cycles (memory)");
            }
            Ok(())
        }
        "ecode" => {
            let path = args.get(1).ok_or(usage)?;
            let host_name = args.get(2).ok_or(usage)?;
            let sys = compile(&read(path)?).map_err(|e| e.to_string())?;
            let host = sys
                .arch
                .find_host(host_name)
                .ok_or_else(|| format!("unknown host `{host_name}`"))?;
            let code = logrel::emachine::generate(&sys.spec, &sys.imp, host);
            print!("{}", code.disassemble());
            Ok(())
        }
        "importance" => {
            let path = args.get(1).ok_or(usage)?;
            let comm_name = args.get(2).ok_or(usage)?;
            let sys = compile(&read(path)?).map_err(|e| e.to_string())?;
            let comm = sys
                .spec
                .find_communicator(comm_name)
                .ok_or_else(|| format!("unknown communicator `{comm_name}`"))?;
            let ranking = architecture_importance(&sys.spec, &sys.arch, &sys.imp, comm)
                .map_err(|e| e.to_string())?;
            println!(
                "{:<24} {:>10} {:>12}",
                "component", "birnbaum", "improvement"
            );
            for c in ranking {
                println!("{:<24} {:>10.6} {:>12.6}", c.name, c.birnbaum, c.improvement);
            }
            Ok(())
        }
        "simulate" => {
            let path = args.get(1).ok_or(usage)?;
            let rounds: u64 = args
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad round count `{s}`")))
                .transpose()?
                .unwrap_or(10_000);
            let seed: u64 = args
                .get(3)
                .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                .transpose()?
                .unwrap_or(0xC0FFEE);
            let sys = compile(&read(path)?).map_err(|e| e.to_string())?;
            let analytic = logrel::reliability::compute_srgs(&sys.spec, &sys.arch, &sys.imp)
                .map_err(|e| e.to_string())?;
            let td = logrel::core::TimeDependentImplementation::from(sys.imp.clone());
            let sim = logrel::sim::Simulation::new(&sys.spec, &sys.arch, &td);
            let mut inj = logrel::sim::ProbabilisticFaults::from_architecture(&sys.arch);
            let out = sim.run(
                &mut logrel::sim::BehaviorMap::new(),
                &mut logrel::sim::ConstantEnvironment::new(logrel::core::Value::Float(1.0)),
                &mut inj,
                &logrel::sim::SimConfig { rounds, seed },
            );
            println!("{rounds} rounds, seed {seed}\n");
            println!("{:<12} {:>12} {:>12}", "communicator", "empirical", "analytic");
            for c in sys.spec.communicator_ids() {
                let bits: Vec<bool> = out.trace.abstraction(c).into_iter().skip(2).collect();
                let mean = if bits.is_empty() {
                    0.0
                } else {
                    bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
                };
                println!(
                    "{:<12} {:>12.6} {:>12.6}",
                    sys.spec.communicator(c).name(),
                    mean,
                    analytic.communicator(c).get()
                );
            }
            Ok(())
        }
        "refine" => {
            let refining_path = args.get(1).ok_or(usage)?;
            let refined_path = args.get(2).ok_or(usage)?;
            let refining = compile(&read(refining_path)?).map_err(|e| e.to_string())?;
            let refined = compile(&read(refined_path)?).map_err(|e| e.to_string())?;
            let kappa = Kappa::by_name(&refining.spec, &refined.spec);
            match check_refinement(
                SystemRef::new(&refining.spec, &refining.arch, &refining.imp),
                SystemRef::new(&refined.spec, &refined.arch, &refined.imp),
                &kappa,
            ) {
                Ok(()) => {
                    println!("`{refining_path}` refines `{refined_path}`");
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            }
        }
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}
