//! `htlc` — the logrel command-line compiler and analysis driver.
//!
//! ```text
//! htlc check <file>                  parse, elaborate, statically verify the
//!                                    generated E-code and run the joint
//!                                    schedulability/reliability analysis
//! htlc verify <file>                 translation validation: certify the
//!                                    compiled round program and the composed
//!                                    per-host E-code against the
//!                                    specification's denotational dataflow
//! htlc lint [--deny] [--format json] <file>...
//!                                    specification lints + E-code verification;
//!                                    --format json emits the stable
//!                                    `logrel-diagnostics-v1` document
//! htlc certify [--deny] [--box D] [--format json] [--metrics PATH] <file>
//!                                    sound reliability certification: outward-
//!                                    rounded interval SRGs decide every LRC as
//!                                    CERTIFIED / REFUTED / INDETERMINATE,
//!                                    symbolic Birnbaum sensitivities rank the
//!                                    bottleneck components and per-component
//!                                    degradation margins are reported; --box D
//!                                    additionally certifies over the
//!                                    reliability box [r-D, r] per component;
//!                                    --format json emits the stable
//!                                    `logrel-certificate-v1` document
//! htlc fmt <file>                    pretty-print the program
//! htlc graph <file>                  emit the specification graph as DOT
//! htlc ecode <file> <host>           disassemble one host's E-code
//! htlc importance <file> <comm>      rank components by Birnbaum importance
//! htlc simulate <file> [rounds [seed]]  fault-injected simulation summary
//! htlc inject [--metrics PATH] [--lanes N|off|auto] [--seed N] <file> <scenario> [rounds [seed [reps]]]
//!                                    scenario campaign with online LRC
//!                                    monitoring (crash/rejoin, flaky
//!                                    hosts, burst loss, stuck sensors,
//!                                    common-cause groups, partitions,
//!                                    wear-out, adaptive adversaries);
//!                                    --metrics exports the aggregated
//!                                    registry (Prometheus text at PATH,
//!                                    JSON at PATH.json, `-` for stdout);
//!                                    --lanes selects the bit-sliced
//!                                    Monte-Carlo path (up to 64
//!                                    replications per u64 word); --seed
//!                                    overrides the positional seed, and
//!                                    the effective seed is echoed in
//!                                    stdout and as the
//!                                    `logrel_campaign_seed` gauge
//! htlc trace [--seed N] <file> <scenario> [rounds [seed]]
//!                                    single-replication run with the
//!                                    flight recorder attached: counter
//!                                    summary plus every recorded dump
//!                                    (alarm-triggered and final) with
//!                                    names resolved
//! htlc fuzz <file> [--iters N] [--seed S] [--corpus DIR]
//!                                    coverage-guided scenario fuzzing:
//!                                    mutates `.scn` timelines, keeps
//!                                    candidates with novel coverage
//!                                    signatures, hunts monitor misses
//!                                    (µ-violations the LRC monitor never
//!                                    alarmed on) and shrinks them to
//!                                    minimal reproducers; --corpus
//!                                    writes the corpus and reproducer
//!                                    `.scn` files; fully deterministic
//!                                    in --seed
//! htlc refine <refining> <refined>   check the refinement relation (κ by
//!                                    task name)
//! htlc analyze <spec> [--against <db>] [--stats]
//!                                    incremental joint analysis through the
//!                                    content-hashed query engine: reuses
//!                                    green entries of the `.logrel-cache`
//!                                    database, attempts refinement reuse
//!                                    (Proposition 2) for a dirty
//!                                    schedulability query, and recomputes
//!                                    only the dirtied cone — with output
//!                                    byte-identical to a cold run
//! ```
//!
//! `lint`, `check` and `verify` additionally accept `--incremental`,
//! which caches the whole command report in the spec's `.logrel-cache`
//! and replays it verbatim while the spec is unchanged.
//!
//! Exit codes: `0` clean (warnings may have been printed), `1` usage or
//! I/O error, `2` diagnostics of error severity emitted (`--deny`
//! promotes warnings). Every failing finding — lints (`L`), E-code
//! verification (`E`), translation validation (`V`), refinement
//! violations (`R001`–`R009`, spanned against the refining source) and
//! analysis verdicts (`A001` invalid system, `A003` failed round-program
//! self-certification, `A004` degenerate campaign parameters) — goes to
//! stderr through the one shared renderer
//! in the stable greppable form `code:severity:file:line:col: message`.

use logrel::lang::{compile, elaborate_file, parse, parse_file, print_program};
use logrel::lint::{self, refine_error_diagnostics, Diagnostic, Severity};
use logrel::obs::MetricsSink as _;
use logrel::query::Report;
use logrel::refine::{check_refinement, validate, Kappa, SystemRef};
use logrel::reliability::architecture_importance;
use std::process::ExitCode;

/// A failed run: usage/I-O trouble (exit 1) or emitted diagnostics
/// (exit 2). Diagnostics are printed where they occur; `Diagnostics`
/// only carries the count for the closing summary line.
enum Failure {
    Usage(String),
    Io(String),
    Diagnostics(usize),
}

impl From<String> for Failure {
    fn from(msg: String) -> Self {
        Failure::Usage(msg)
    }
}

impl From<&str> for Failure {
    fn from(msg: &str) -> Self {
        Failure::Usage(msg.to_owned())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Usage(msg)) | Err(Failure::Io(msg)) => {
            eprintln!("htlc: {msg}");
            ExitCode::from(1)
        }
        Err(Failure::Diagnostics(n)) => {
            eprintln!("htlc: {n} error(s) emitted");
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Result<String, Failure> {
    std::fs::read_to_string(path).map_err(|e| Failure::Io(format!("cannot read `{path}`: {e}")))
}

/// Prints a front-end error in the stable diagnostic format and returns
/// the exit-2 failure.
fn lang_failure(file: &str, err: &logrel::lang::LangError) -> Failure {
    eprintln!("{}", Diagnostic::from_lang_error(err).render(file));
    Failure::Diagnostics(1)
}

/// Compiles `path`, reporting failures as diagnostics.
fn compile_path(path: &str) -> Result<logrel::lang::ElaboratedSystem, Failure> {
    compile(&read(path)?).map_err(|e| lang_failure(path, &e))
}

/// Prints a failed analysis verdict through the shared diagnostic
/// renderer (A-series codes: `A001` invalid system, `A003` failed
/// round-program self-certification, `A004` degenerate campaign
/// parameters such as zero replications or a bad lane width; refinement
/// violations use the spanned R-series via [`refine_error_diagnostics`]
/// instead) and returns the exit-2 failure.
fn analysis_failure(file: &str, code: &'static str, message: String) -> Failure {
    eprintln!(
        "{}",
        Diagnostic::new(code, Severity::Error, Default::default(), message).render(file)
    );
    Failure::Diagnostics(1)
}

/// Flight-recorder ring capacity used by `inject --metrics` and `trace`:
/// enough context to see the rounds leading up to a violation without
/// unbounded growth.
const FLIGHT_RING: usize = 256;

/// Resolves scenario names against a compiled program.
struct Symbols<'a>(&'a logrel::lang::ElaboratedSystem);

impl logrel::sim::ScenarioSymbols for Symbols<'_> {
    fn host(&self, name: &str) -> Option<logrel::core::HostId> {
        self.0.arch.find_host(name)
    }
    fn communicator(&self, name: &str) -> Option<logrel::core::CommunicatorId> {
        self.0.spec.find_communicator(name)
    }
}

/// Removes a boolean `--flag` from `args`, returning whether it was
/// present.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Loads a `.logrel-cache` database, failing **closed**: a corrupt,
/// truncated or version-mismatched file yields a warning plus a cold
/// analysis (counted as `logrel_query_cache_fallback_total`), never a
/// panic or stale results. Only a genuinely missing file is silent.
fn load_cache(
    sink: &mut dyn logrel::obs::MetricsSink,
    path: &str,
) -> Option<logrel::query::QueryDb> {
    match logrel::query::load(path) {
        logrel::query::LoadOutcome::Loaded(db) => Some(*db),
        logrel::query::LoadOutcome::Missing => None,
        logrel::query::LoadOutcome::Invalid(reason) => {
            eprintln!("htlc: warning: ignoring cache `{path}`: {reason}");
            sink.add(logrel::obs::names::QUERY_CACHE_FALLBACK, 1);
            None
        }
    }
}

/// Persists the refreshed database; cache-write trouble degrades to a
/// warning — the analysis already succeeded and its output stands.
fn save_cache(path: &str, db: &logrel::query::QueryDb) {
    if let Err(e) = logrel::query::save(db, path) {
        eprintln!("htlc: warning: cannot write cache `{path}`: {e}");
    }
}

/// Replays `report` exactly as the non-incremental arm would have
/// printed it and converts its error count into the exit status.
fn emit_report(report: &Report) -> Result<(), Failure> {
    print!("{}", report.stdout);
    eprint!("{}", report.stderr);
    if report.errors > 0 {
        Err(Failure::Diagnostics(report.errors))
    } else {
        Ok(())
    }
}

/// Runs a whole-command report query through the incremental cache:
/// loads the spec's `.logrel-cache` (fail-closed), replays a green
/// report verbatim, otherwise computes cold and persists the refreshed
/// database.
fn run_cached(path: &str, source: &str, query: &str, compute: impl FnOnce() -> Report) -> Report {
    let cache_path = logrel::query::default_cache_path(path);
    let mut registry = logrel::obs::Registry::new();
    let prior = load_cache(&mut registry, &cache_path);
    let (report, db, _hit) =
        logrel::query::cached_report(source, query, prior.as_ref(), &mut registry, compute);
    if let Some(db) = db {
        save_cache(&cache_path, &db);
    }
    report
}

/// The `check` pipeline as a replayable report: byte-for-byte the
/// stdout/stderr of the original arm.
fn check_report(path: &str, source: &str) -> Report {
    let mut out = String::new();
    let mut err = String::new();
    let program = match parse(source) {
        Ok(p) => p,
        Err(e) => {
            err.push_str(&format!("{}\n", Diagnostic::from_lang_error(&e).render(path)));
            return Report { errors: 1, stdout: out, stderr: err };
        }
    };
    let sys = match logrel::lang::elaborate(&program) {
        Ok(s) => s,
        Err(e) => {
            err.push_str(&format!("{}\n", Diagnostic::from_lang_error(&e).render(path)));
            return Report { errors: 1, stdout: out, stderr: err };
        }
    };
    out.push_str(&format!(
        "program `{}`: {} communicators, {} tasks, round {}\n",
        sys.name,
        sys.spec.communicator_count(),
        sys.spec.task_count(),
        sys.spec.round_period()
    ));
    // Statically verify the generated E-code of every host before
    // trusting it to the analysis and the runtime.
    let ecode_diags = lint::verify_generated(&program, &sys);
    if !ecode_diags.is_empty() {
        for d in &ecode_diags {
            err.push_str(&format!("{}\n", d.render(path)));
        }
        return Report { errors: ecode_diags.len(), stdout: out, stderr: err };
    }
    out.push_str(&format!(
        "E-code: statically verified for all {} host(s)\n",
        sys.arch.host_count()
    ));
    match validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)) {
        Ok(cert) => {
            out.push_str("VALID: schedulable and reliable\n\n");
            out.push_str(&format!("{}\n", cert.verdict.static_report().render(&sys.spec)));
            out.push_str(&format!(
                "{}\n",
                cert.schedule.gantt(
                    |t| sys.spec.task(t).name().to_owned(),
                    |h| sys.arch.host(h).name().to_owned(),
                )
            ));
            Report { errors: 0, stdout: out, stderr: err }
        }
        Err(e) => {
            err.push_str(&format!(
                "{}\n",
                Diagnostic::new("A001", Severity::Error, Default::default(), format!("INVALID: {e}"))
                    .render(path)
            ));
            Report { errors: 1, stdout: out, stderr: err }
        }
    }
}

/// The `verify` pipeline as a replayable report.
fn verify_report(path: &str, source: &str) -> Report {
    let mut out = String::new();
    let mut err = String::new();
    let sys = match compile(source) {
        Ok(s) => s,
        Err(e) => {
            err.push_str(&format!("{}\n", Diagnostic::from_lang_error(&e).render(path)));
            return Report { errors: 1, stdout: out, stderr: err };
        }
    };
    let td = logrel::core::TimeDependentImplementation::from(sys.imp.clone());
    match logrel::validate::certify_system(&sys.spec, &sys.arch, &td) {
        Ok(cert) => {
            out.push_str(&format!("{cert}\n"));
            out.push_str(&format!(
                "VERIFIED: `{}` — compiled artifacts ({}) are isomorphic to the \
                 specification's round denotation\n",
                sys.name,
                cert.artifacts.join(", ")
            ));
            Report { errors: 0, stdout: out, stderr: err }
        }
        Err(diags) => {
            for d in &diags {
                err.push_str(&format!("{}\n", d.render(path)));
            }
            Report { errors: diags.len(), stdout: out, stderr: err }
        }
    }
}

/// The per-file `lint` pipeline as a replayable report. `deny` and
/// `json` are part of the query name, so variants never share entries.
/// JSON mode routes the `logrel-diagnostics-v1` document to stdout and
/// keeps stderr empty — machine consumers read one stream.
fn lint_report(path: &str, source: &str, deny: bool, json: bool) -> Report {
    let mut diags = lint::lint_source(source);
    if deny {
        lint::deny_warnings(&mut diags);
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    if json {
        let stdout = lint::diagnostics_json(path, &diags);
        return Report { errors, stdout, stderr: String::new() };
    }
    let mut err = String::new();
    for d in &diags {
        err.push_str(&format!("{}\n", d.render(path)));
    }
    Report { errors, stdout: String::new(), stderr: err }
}

/// Certification counters carried out of [`certify_report`] for the
/// `--metrics` export. `None` when the analysis never ran (front-end
/// failure) — or when an incremental run replayed a cached report.
#[derive(Clone, Copy)]
struct CertCounts {
    certified: u64,
    refuted: u64,
    indeterminate: u64,
    min_slack: Option<f64>,
}

/// The `certify` pipeline as a replayable report: interval SRG
/// certification with symbolic sensitivity analysis. Text mode renders
/// the certificate on stdout and the spanned C-series diagnostics on
/// stderr; JSON mode emits the `logrel-certificate-v1` document
/// (diagnostics embedded) on stdout with stderr empty. Front-end and
/// analysis failures in JSON mode degrade to the `logrel-diagnostics-v1`
/// document, so consumers always receive well-formed JSON on stdout.
fn certify_report(
    path: &str,
    source: &str,
    deny: bool,
    json: bool,
    box_delta: Option<f64>,
) -> (Report, Option<CertCounts>) {
    let fail = |diags: Vec<Diagnostic>| -> Report {
        let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
        if json {
            let stdout = lint::diagnostics_json(path, &diags);
            Report { errors, stdout, stderr: String::new() }
        } else {
            let mut err = String::new();
            for d in &diags {
                err.push_str(&format!("{}\n", d.render(path)));
            }
            Report { errors, stdout: String::new(), stderr: err }
        }
    };
    let program = match parse(source) {
        Ok(p) => p,
        Err(e) => return (fail(vec![Diagnostic::from_lang_error(&e)]), None),
    };
    let sys = match logrel::lang::elaborate(&program) {
        Ok(s) => s,
        Err(e) => return (fail(vec![Diagnostic::from_lang_error(&e)]), None),
    };
    match logrel::reliability::certify(&sys.spec, &sys.arch, &sys.imp, box_delta) {
        Ok(cert) => {
            let mut diags = lint::certify_diagnostics(&program, &cert);
            if deny {
                lint::deny_warnings(&mut diags);
            }
            let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
            let counts = CertCounts {
                certified: cert.count(logrel::reliability::CertStatus::Certified) as u64,
                refuted: cert.count(logrel::reliability::CertStatus::Refuted) as u64,
                indeterminate: cert.count(logrel::reliability::CertStatus::Indeterminate)
                    as u64,
                min_slack: cert.min_slack(),
            };
            let report = if json {
                let stdout = lint::certificate_json(path, &sys.name, &cert, &diags);
                Report { errors, stdout, stderr: String::new() }
            } else {
                let mut err = String::new();
                for d in &diags {
                    err.push_str(&format!("{}\n", d.render(path)));
                }
                Report {
                    errors,
                    stdout: lint::render_certificate(&sys.name, &cert),
                    stderr: err,
                }
            };
            (report, Some(counts))
        }
        Err(e) => (fail(vec![lint::certify_error_diagnostic(&e)]), None),
    }
}

/// Removes `--flag VALUE` from `args`, returning the value if present.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, Failure> {
    match args.iter().position(|a| a == flag) {
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(Failure::Usage(format!("{flag} requires a value"))),
        None => Ok(None),
    }
}

/// Removes `--format text|json` from `args`, returning whether JSON
/// output was selected.
fn take_json_format(args: &mut Vec<String>) -> Result<bool, Failure> {
    match take_flag_value(args, "--format")?.as_deref() {
        None | Some("text") => Ok(false),
        Some("json") => Ok(true),
        Some(other) => Err(Failure::Usage(format!(
            "--format wants `text` or `json`, got `{other}`"
        ))),
    }
}

/// Exports the registry: Prometheus text at `target` and the JSON
/// document at `target.json`, or both concatenated to stdout when
/// `target` is `-`.
fn write_metrics(target: &str, registry: &logrel::obs::Registry) -> Result<(), Failure> {
    let prom = logrel::obs::export::to_prometheus(registry);
    let json = logrel::obs::export::to_json(registry);
    if target == "-" {
        print!("{prom}{json}");
    } else {
        std::fs::write(target, prom)
            .map_err(|e| Failure::Io(format!("cannot write `{target}`: {e}")))?;
        let json_path = format!("{target}.json");
        std::fs::write(&json_path, json)
            .map_err(|e| Failure::Io(format!("cannot write `{json_path}`: {e}")))?;
    }
    Ok(())
}

/// Renders one flight-recorder event, resolving the raw round-program
/// indices the recorder stores back to specification names.
fn render_event(e: &logrel::obs::ObsEvent, sys: &logrel::lang::ElaboratedSystem) -> String {
    use logrel::obs::ObsEvent as E;
    let task = |t: usize| sys.spec.task(logrel::core::TaskId::new(t as u32)).name();
    let host = |h: usize| sys.arch.host(logrel::core::HostId::new(h as u32)).name();
    let comm = |c: usize| {
        sys.spec
            .communicator(logrel::core::CommunicatorId::new(c as u32))
            .name()
    };
    match e {
        E::Vote {
            at,
            task: t,
            outcome,
            delivered,
            replicas,
        } => format!(
            "[{at}] vote {} {} ({delivered}/{replicas} delivered)",
            task(*t),
            outcome.label()
        ),
        E::ReplicaDrop {
            at,
            task: t,
            host: h,
            reason,
        } => format!(
            "[{at}] replica-drop {}@{} ({})",
            task(*t),
            host(*h),
            reason.label()
        ),
        E::HostDown { at, host: h } => format!("[{at}] host-down {}", host(*h)),
        E::HostUp { at, host: h } => format!("[{at}] host-up {}", host(*h)),
        E::AlarmRaised {
            at,
            comm: c,
            mean,
            epsilon,
            lrc,
        } => format!(
            "[{at}] alarm-raised {} (mean {mean:.6}, eps {epsilon:.6}, lrc {lrc})",
            comm(*c)
        ),
        E::AlarmCleared { at, comm: c, mean } => {
            format!("[{at}] alarm-cleared {} (mean {mean:.6})", comm(*c))
        }
        E::DegraderEngaged { at, rule } => format!("[{at}] degrader-engaged rule #{rule}"),
        E::ModeSwitch { at, event } => format!("[{at}] mode-switch `{event}`"),
    }
}

/// Pretty-prints every retained flight-recorder dump with names resolved.
fn format_dumps(registry: &logrel::obs::Registry, sys: &logrel::lang::ElaboratedSystem) -> String {
    let Some(rec) = registry.recorder() else {
        return String::new();
    };
    let mut out = format!(
        "flight recorder: {} dump(s), {} event(s) evicted from the ring\n",
        rec.dumps().len(),
        rec.dropped()
    );
    for (i, dump) in rec.dumps().iter().enumerate() {
        let trigger = match &dump.trigger {
            logrel::obs::DumpTrigger::AlarmRaised { comm } => format!(
                "alarm-raised on `{}`",
                sys.spec
                    .communicator(logrel::core::CommunicatorId::new(*comm as u32))
                    .name()
            ),
            t => t.label().to_owned(),
        };
        out.push_str(&format!(
            "\ndump #{i}: {trigger} at {} ({} event(s))\n",
            dump.at,
            dump.events.len()
        ));
        for e in &dump.events {
            out.push_str(&format!("  {}\n", render_event(e, sys)));
        }
    }
    out
}

fn run(args: &[String]) -> Result<(), Failure> {
    let usage = "usage: htlc <check|verify|lint|certify|analyze|fmt|graph|ecode|importance|simulate|inject|trace|fuzz|serve|refine> <args>\n\
                 run `htlc help` for details";
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => {
            println!(
                "htlc — logical-reliability compiler\n\n\
                 htlc check [--incremental] <file> joint analysis with SRG table\n\
                 htlc check-file <file>            multi-program file with declared refinements\n\
                 htlc verify [--incremental] <file> translation validation of compiled artifacts\n\
                 htlc lint [--deny] [--incremental] [--format json] <file>...\n\
                                                   specification lints + E-code verification;\n\
                                                   --format json emits the stable\n\
                                                   logrel-diagnostics-v1 document\n\
                 htlc certify [--deny] [--incremental] [--box D] [--format json] [--metrics PATH] <file>\n\
                                                   sound reliability certification: outward-\n\
                                                   rounded interval SRGs decide every LRC\n\
                                                   (CERTIFIED/REFUTED/INDETERMINATE), with\n\
                                                   symbolic Birnbaum bottlenecks and per-\n\
                                                   component degradation margins; --box D\n\
                                                   re-certifies over the reliability box\n\
                                                   [r-D, r]; --format json emits the stable\n\
                                                   logrel-certificate-v1 document\n\
                 htlc analyze <spec> [--against <db>] [--stats]\n\
                                                   incremental joint analysis: reuses green\n\
                                                   queries from <spec>.logrel-cache, tries\n\
                                                   refinement reuse (Prop 2) before\n\
                                                   recomputing the dirtied cone; output is\n\
                                                   byte-identical to a cold run\n\
                 htlc fmt <file>                   pretty-print\n\
                 htlc graph <file>                 specification graph (DOT)\n\
                 htlc ecode <file> <host>          E-code disassembly\n\
                 htlc latency <file>               worst-case data ages\n\
                 htlc importance <file> <comm>     component importance ranking\n\
                 htlc simulate <file> [rounds [seed]]  fault-injected run\n\
                 htlc inject [--metrics PATH] [--lanes N|off|auto] [--seed N] <file> <scenario> [rounds [seed [reps]]]\n\
                                                   scenario campaign; --metrics exports the\n\
                                                   aggregated registry (Prometheus text at\n\
                                                   PATH, JSON at PATH.json, `-` for stdout);\n\
                                                   --lanes packs up to N replications per\n\
                                                   u64 word (default auto = 64, `off` for\n\
                                                   the scalar path; results are identical);\n\
                                                   --seed overrides the positional seed\n\
                 htlc trace [--seed N] <file> <scenario> [rounds [seed]]  flight-recorder trace\n\
                 htlc fuzz <file> [--iters N] [--seed S] [--corpus DIR]\n\
                                                   coverage-guided scenario fuzzing: mutate\n\
                                                   fault timelines, keep novel coverage\n\
                                                   signatures, shrink monitor misses to\n\
                                                   minimal .scn reproducers (deterministic\n\
                                                   in --seed; --corpus writes artifacts)\n\
                 htlc serve [--stdin | --listen ADDR] [--workers N] [--queue N] [--cache PATH]\n\
                                                   long-running campaign job service: one\n\
                                                   logrel-job-v1 JSON request per line in,\n\
                                                   one logrel-metrics-v1 result line plus a\n\
                                                   logrel-job-status-v1 status line out;\n\
                                                   specs compile once per content hash and\n\
                                                   replications shard over a worker pool\n\
                                                   (results are byte-identical at any\n\
                                                   worker count); --stdin serves a pipe for\n\
                                                   CI, --listen a line-delimited TCP socket\n\
                                                   (SIGTERM drains in-flight jobs)\n\
                 htlc refine <refining> <refined>  refinement check\n\n\
                 exit codes: 0 clean, 1 usage/IO error, 2 diagnostics emitted\n\
                 diagnostics: code:severity:file:line:col: message (stderr)"
            );
            Ok(())
        }
        "lint" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let deny = take_bool_flag(&mut rest, "--deny");
            let incremental = take_bool_flag(&mut rest, "--incremental");
            let json = take_json_format(&mut rest)?;
            if rest.is_empty() {
                return Err(usage.into());
            }
            let query = match (deny, json) {
                (false, false) => "lint_full",
                (true, false) => "lint_full_deny",
                (false, true) => "lint_json",
                (true, true) => "lint_json_deny",
            };
            let mut errors = 0usize;
            for path in &rest {
                let source = read(path)?;
                let report = if incremental {
                    run_cached(path, &source, query, || lint_report(path, &source, deny, json))
                } else {
                    lint_report(path, &source, deny, json)
                };
                print!("{}", report.stdout);
                eprint!("{}", report.stderr);
                errors += report.errors;
            }
            if errors > 0 {
                Err(Failure::Diagnostics(errors))
            } else {
                Ok(())
            }
        }
        "certify" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let deny = take_bool_flag(&mut rest, "--deny");
            let incremental = take_bool_flag(&mut rest, "--incremental");
            let json = take_json_format(&mut rest)?;
            let metrics = take_flag_value(&mut rest, "--metrics")?;
            let box_delta: Option<f64> = take_flag_value(&mut rest, "--box")?
                .map(|s| {
                    s.parse::<f64>()
                        .ok()
                        .filter(|d| (0.0..1.0).contains(d))
                        .ok_or_else(|| format!("--box wants a delta in [0, 1), got `{s}`"))
                })
                .transpose()?;
            let path = rest.first().ok_or(usage)?;
            let source = read(path)?;
            // Every flag that changes the report participates in the query
            // name, so variants never share cache entries. The delta is
            // rendered through the f64 shortest round-trip `Display`, which
            // is injective over distinct values.
            let query = format!(
                "certify:deny={deny}:json={json}:box={}",
                box_delta.map_or_else(|| "-".to_owned(), |d| d.to_string())
            );
            let counts_cell = std::cell::Cell::new(None::<CertCounts>);
            let report = if incremental {
                run_cached(path, &source, &query, || {
                    let (report, counts) = certify_report(path, &source, deny, json, box_delta);
                    counts_cell.set(counts);
                    report
                })
            } else {
                let (report, counts) = certify_report(path, &source, deny, json, box_delta);
                counts_cell.set(counts);
                report
            };
            if let Some(target) = &metrics {
                // Counters reflect this process's own work: a warm
                // incremental replay certified nothing, so only a cold
                // compute populates them.
                let mut registry = logrel::obs::Registry::new();
                if let Some(c) = counts_cell.get() {
                    registry.add(logrel::obs::names::CERTIFY_SPECS, 1);
                    registry.add(logrel::obs::names::CERTIFY_LRC_CERTIFIED, c.certified);
                    registry.add(logrel::obs::names::CERTIFY_LRC_REFUTED, c.refuted);
                    registry.add(
                        logrel::obs::names::CERTIFY_LRC_INDETERMINATE,
                        c.indeterminate,
                    );
                    if let Some(slack) = c.min_slack {
                        registry.set_gauge(logrel::obs::names::CERTIFY_MIN_SLACK, slack);
                    }
                }
                print!("{}", report.stdout);
                eprint!("{}", report.stderr);
                if *target == "-" && !report.stdout.is_empty() {
                    println!();
                }
                write_metrics(target, &registry)?;
                if report.errors > 0 {
                    return Err(Failure::Diagnostics(report.errors));
                }
                return Ok(());
            }
            emit_report(&report)
        }
        "check" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let incremental = take_bool_flag(&mut rest, "--incremental");
            let path = rest.first().ok_or(usage)?;
            let source = read(path)?;
            let report = if incremental {
                run_cached(path, &source, "check_report", || check_report(path, &source))
            } else {
                check_report(path, &source)
            };
            emit_report(&report)
        }
        "verify" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let incremental = take_bool_flag(&mut rest, "--incremental");
            let path = rest.first().ok_or(usage)?;
            let source = read(path)?;
            let report = if incremental {
                run_cached(path, &source, "verify_report", || verify_report(path, &source))
            } else {
                verify_report(path, &source)
            };
            emit_report(&report)
        }
        "analyze" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let stats = take_bool_flag(&mut rest, "--stats");
            let against = take_flag_value(&mut rest, "--against")?;
            let path = rest.first().ok_or(usage)?;
            let source = read(path)?;
            let cache_path =
                against.unwrap_or_else(|| logrel::query::default_cache_path(path));
            let mut registry = logrel::obs::Registry::new();
            let prior = load_cache(&mut registry, &cache_path);
            let out = logrel::query::analyze_source(&source, path, prior.as_ref(), &mut registry);
            print!("{}", out.stdout);
            eprint!("{}", out.stderr);
            if stats {
                println!(
                    "cache: {} queries, {} hit(s), {} recomputed, {} refinement-reuse(s)",
                    out.stats.queries, out.stats.hits, out.stats.recomputes, out.stats.refine_reuses
                );
            }
            if let Some(db) = &out.db {
                save_cache(&cache_path, db);
            }
            if out.errors > 0 {
                Err(Failure::Diagnostics(out.errors))
            } else {
                Ok(())
            }
        }
        "check-file" => {
            // Multi-program file: validate the refinement roots fully, then
            // check each declared refinement and inherit validity (Prop 2).
            let path = args.get(1).ok_or(usage)?;
            let file = parse_file(&read(path)?).map_err(|e| lang_failure(path, &e))?;
            let elaborated = elaborate_file(&file).map_err(|e| lang_failure(path, &e))?;
            println!(
                "{} program(s), {} refinement declaration(s)",
                elaborated.systems.len(),
                elaborated.refinements.len()
            );
            // Roots: programs no declaration refines further.
            let refining_set: std::collections::BTreeSet<usize> = elaborated
                .refinements
                .iter()
                .map(|r| r.refining)
                .collect();
            let mut certs = std::collections::BTreeMap::new();
            for (i, sys) in elaborated.systems.iter().enumerate() {
                if !refining_set.contains(&i) {
                    let cert = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp))
                        .map_err(|e| {
                            analysis_failure(
                                path,
                                "A001",
                                format!("program `{}` is INVALID: {e}", sys.name),
                            )
                        })?;
                    println!("program `{}`: VALID (analysed directly)", sys.name);
                    certs.insert(i, cert);
                }
            }
            for r in &elaborated.refinements {
                let refining = &elaborated.systems[r.refining];
                let refined = &elaborated.systems[r.refined];
                let kappa = Kappa::from_pairs(
                    &refining.spec,
                    &refined.spec,
                    r.pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())),
                )
                .map_err(|e| Failure::Usage(e.to_string()))?;
                check_refinement(
                    SystemRef::new(&refining.spec, &refining.arch, &refining.imp),
                    SystemRef::new(&refined.spec, &refined.arch, &refined.imp),
                    &kappa,
                )
                .map_err(|e| {
                    // R-series diagnostics, spanned against the refining
                    // program's declarations inside the multi-program file.
                    let diags = refine_error_diagnostics(&file.programs[r.refining], &e);
                    for d in &diags {
                        eprintln!("{}", d.render(path));
                    }
                    Failure::Diagnostics(diags.len())
                })?;
                println!(
                    "program `{}`: VALID by refinement of `{}` (Proposition 2)",
                    refining.name, refined.name
                );
            }
            Ok(())
        }
        "fmt" => {
            let path = args.get(1).ok_or(usage)?;
            let program = parse(&read(path)?).map_err(|e| lang_failure(path, &e))?;
            print!("{}", print_program(&program));
            Ok(())
        }
        "latency" => {
            let path = args.get(1).ok_or(usage)?;
            let sys = compile_path(path)?;
            let ages = logrel::sched::data_ages(&sys.spec);
            println!("{:<16} {:>16}", "communicator", "worst data age");
            for c in sys.spec.communicator_ids() {
                let age = ages
                    .age(c)
                    .map_or("unbounded/-".to_owned(), |a| a.to_string());
                println!("{:<16} {:>16}", sys.spec.communicator(c).name(), age);
            }
            Ok(())
        }
        "graph" => {
            let path = args.get(1).ok_or(usage)?;
            let sys = compile_path(path)?;
            let graph = logrel::core::graph::SpecGraph::new(&sys.spec);
            print!("{}", graph.to_dot(&sys.spec));
            let cycles = graph.communicator_cycles();
            if !cycles.is_memory_free() {
                eprintln!("warning: the specification has communicator cycles (memory)");
            }
            Ok(())
        }
        "ecode" => {
            let path = args.get(1).ok_or(usage)?;
            let host_name = args.get(2).ok_or(usage)?;
            let sys = compile_path(path)?;
            let host = sys
                .arch
                .find_host(host_name)
                .ok_or_else(|| Failure::Usage(format!("unknown host `{host_name}`")))?;
            let code = logrel::emachine::generate(&sys.spec, &sys.imp, host);
            print!("{}", code.disassemble());
            Ok(())
        }
        "importance" => {
            let path = args.get(1).ok_or(usage)?;
            let comm_name = args.get(2).ok_or(usage)?;
            let sys = compile_path(path)?;
            let comm = sys
                .spec
                .find_communicator(comm_name)
                .ok_or_else(|| Failure::Usage(format!("unknown communicator `{comm_name}`")))?;
            let ranking = architecture_importance(&sys.spec, &sys.arch, &sys.imp, comm)
                .map_err(|e| Failure::Usage(e.to_string()))?;
            println!(
                "{:<24} {:>10} {:>12}",
                "component", "birnbaum", "improvement"
            );
            for c in ranking {
                println!("{:<24} {:>10.6} {:>12.6}", c.name, c.birnbaum, c.improvement);
            }
            Ok(())
        }
        "simulate" => {
            let path = args.get(1).ok_or(usage)?;
            let rounds: u64 = args
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad round count `{s}`")))
                .transpose()?
                .unwrap_or(10_000);
            let seed: u64 = args
                .get(3)
                .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                .transpose()?
                .unwrap_or(0xC0FFEE);
            let sys = compile_path(path)?;
            let analytic = logrel::reliability::compute_srgs(&sys.spec, &sys.arch, &sys.imp)
                .map_err(|e| Failure::Usage(e.to_string()))?;
            let td = logrel::core::TimeDependentImplementation::from(sys.imp.clone());
            let sim = logrel::sim::Simulation::try_new(&sys.spec, &sys.arch, &td)
                .map_err(|e| analysis_failure(path, "A003", format!("{e}")))?;
            let mut inj = logrel::sim::ProbabilisticFaults::from_architecture(&sys.arch);
            let out = sim.run(
                &mut logrel::sim::BehaviorMap::new(),
                &mut logrel::sim::ConstantEnvironment::new(logrel::core::Value::Float(1.0)),
                &mut inj,
                &logrel::sim::SimConfig { rounds, seed },
            );
            println!("{rounds} rounds, seed {seed}\n");
            println!("{:<12} {:>12} {:>12}", "communicator", "empirical", "analytic");
            for c in sys.spec.communicator_ids() {
                let bits: Vec<bool> = out.trace.abstraction(c).into_iter().skip(2).collect();
                let mean = if bits.is_empty() {
                    0.0
                } else {
                    bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
                };
                println!(
                    "{:<12} {:>12.6} {:>12.6}",
                    sys.spec.communicator(c).name(),
                    mean,
                    analytic.communicator(c).get()
                );
            }
            Ok(())
        }
        "inject" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let metrics = take_flag_value(&mut rest, "--metrics")?;
            let lanes = match take_flag_value(&mut rest, "--lanes")?.as_deref() {
                None | Some("auto") => logrel::sim::LaneMode::Auto,
                Some("off") => logrel::sim::LaneMode::Off,
                Some(s) => {
                    let n: u8 = s
                        .parse()
                        .ok()
                        .filter(|n| (1..=64).contains(n))
                        .ok_or_else(|| {
                            Failure::Usage(format!("--lanes wants 1..=64, `off` or `auto`, got `{s}`"))
                        })?;
                    logrel::sim::LaneMode::Width(n)
                }
            };
            // `--seed N` overrides the positional seed; both forms stay
            // accepted so existing invocations keep working.
            let seed_flag: Option<u64> = take_flag_value(&mut rest, "--seed")?
                .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                .transpose()?;
            let path = rest.first().ok_or(usage)?;
            let scenario_path = rest.get(1).ok_or(usage)?;
            let rounds: u64 = rest
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad round count `{s}`")))
                .transpose()?
                .unwrap_or(4_000);
            let seed: u64 = seed_flag.unwrap_or(
                rest.get(3)
                    .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                    .transpose()?
                    .unwrap_or(0xC0FFEE),
            );
            let reps: u64 = rest
                .get(4)
                .map(|s| s.parse().map_err(|_| format!("bad replication count `{s}`")))
                .transpose()?
                .unwrap_or(8);
            let sys = compile_path(path)?;

            let scenario =
                logrel::sim::Scenario::parse_with(&read(scenario_path)?, &Symbols(&sys))
                    .map_err(|e| Failure::Usage(format!("{scenario_path}: {e}")))?;

            let analytic = logrel::reliability::compute_srgs(&sys.spec, &sys.arch, &sys.imp)
                .map_err(|e| Failure::Usage(e.to_string()))?;
            let analytic: Vec<Option<f64>> = sys
                .spec
                .communicator_ids()
                .map(|c| Some(analytic.communicator(c).get()))
                .collect();
            let td = logrel::core::TimeDependentImplementation::from(sys.imp.clone());
            // The registry collects compile/certify spans even when
            // `--metrics` is absent; it is only exported when requested.
            let mut registry = logrel::obs::Registry::with_recorder(FLIGHT_RING);
            let sim =
                logrel::sim::Simulation::try_new_observed(&sys.spec, &sys.arch, &td, &mut registry)
                    .map_err(|e| analysis_failure(path, "A003", format!("{e}")))?;
            let config = logrel::sim::CampaignConfig {
                batch: logrel::sim::montecarlo::BatchConfig {
                    replications: reps,
                    rounds,
                    base_seed: seed,
                    threads: 0,
                },
                monitor: logrel::sim::MonitorConfig::default(),
                lanes,
            };
            // Echo the execution path and the effective seed in the export
            // so downstream tooling can tell bit-sliced runs from scalar
            // ones and can replay the campaign exactly.
            registry.set_gauge(logrel::obs::names::BITSLICE_LANES, lanes.width() as f64);
            registry.set_gauge(logrel::obs::names::CAMPAIGN_SEED, seed as f64);
            let setup = |_rep| logrel::sim::montecarlo::ReplicationContext {
                behaviors: logrel::sim::BehaviorMap::new(),
                environment: Box::new(logrel::sim::ConstantEnvironment::new(
                    logrel::core::Value::Float(1.0),
                )),
                injector: Box::new(logrel::sim::ProbabilisticFaults::from_architecture(
                    &sys.arch,
                )),
            };
            let report = if metrics.is_some() {
                let run_span = logrel::obs::Span::start();
                let report = logrel::sim::run_campaign_observed(
                    &sim,
                    &sys.spec,
                    &scenario,
                    sys.arch.host_count(),
                    &config,
                    setup,
                    &analytic,
                    &mut registry,
                    FLIGHT_RING,
                )
                .map_err(|e| analysis_failure(path, "A004", e.to_string()))?;
                run_span.finish(&mut registry, logrel::obs::names::RUN_SECONDS);
                report
            } else {
                logrel::sim::run_campaign(
                    &sim,
                    &sys.spec,
                    &scenario,
                    sys.arch.host_count(),
                    &config,
                    setup,
                    &analytic,
                )
                .map_err(|e| analysis_failure(path, "A004", e.to_string()))?
            };

            let lane_desc = match lanes.width() {
                1 => "scalar".to_owned(),
                w => format!("bit-sliced x{w}"),
            };
            println!(
                "{reps} replication(s) x {rounds} rounds, seed {seed}, scenario `{scenario_path}`, {lane_desc}\n"
            );
            println!("host availability (scripted):");
            for h in sys.arch.host_ids() {
                println!(
                    "  {:<16} {:>8.4}",
                    sys.arch.host(h).name(),
                    report.host_availability[h.index()]
                );
            }
            println!();
            println!(
                "{:<14} {:>10} {:>10} {:>8} {:>7} {:>7} {:>12} {:>7} {:>5} {:>9}",
                "communicator",
                "empirical",
                "analytic",
                "eps",
                "within",
                "lrc",
                "1st-violation",
                "alarms",
                "viol",
                "pre-alarm"
            );
            for r in &report.comms {
                let c = r.comm;
                println!(
                    "{:<14} {:>10.6} {:>10.6} {:>8.5} {:>7} {:>7} {:>12} {:>7} {:>5} {:>9}",
                    sys.spec.communicator(c).name(),
                    r.empirical,
                    r.analytic.unwrap_or(f64::NAN),
                    r.epsilon,
                    match r.within_epsilon {
                        Some(true) => "yes",
                        Some(false) => "NO",
                        None => "-",
                    },
                    r.lrc.map_or("-".to_owned(), |l| format!("{l}")),
                    r.first_violation
                        .map_or("-".to_owned(), |t| t.as_u64().to_string()),
                    format!("{}/{}", r.alarms_raised, r.alarms_cleared),
                    r.violations,
                    r.alarms_before_violation,
                );
            }
            if let Some(target) = &metrics {
                if target == "-" {
                    println!();
                }
                write_metrics(target, &registry)?;
            }
            Ok(())
        }
        "trace" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let seed_flag: Option<u64> = take_flag_value(&mut rest, "--seed")?
                .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                .transpose()?;
            let path = rest.first().ok_or(usage)?;
            let scenario_path = rest.get(1).ok_or(usage)?;
            let rounds: u64 = rest
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad round count `{s}`")))
                .transpose()?
                .unwrap_or(2_000);
            let seed: u64 = seed_flag.unwrap_or(
                rest.get(3)
                    .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                    .transpose()?
                    .unwrap_or(0xC0FFEE),
            );
            let sys = compile_path(path)?;
            let scenario =
                logrel::sim::Scenario::parse_with(&read(scenario_path)?, &Symbols(&sys))
                    .map_err(|e| Failure::Usage(format!("{scenario_path}: {e}")))?;
            let td = logrel::core::TimeDependentImplementation::from(sys.imp.clone());
            let mut registry = logrel::obs::Registry::with_recorder(FLIGHT_RING);
            registry.set_gauge(logrel::obs::names::CAMPAIGN_SEED, seed as f64);
            let sim =
                logrel::sim::Simulation::try_new_observed(&sys.spec, &sys.arch, &td, &mut registry)
                    .map_err(|e| analysis_failure(path, "A003", format!("{e}")))?;
            let mut injector = logrel::sim::ScenarioInjector::new(
                logrel::sim::ProbabilisticFaults::from_architecture(&sys.arch),
                &scenario,
                sys.arch.host_count(),
                sys.spec.communicator_count(),
            )
            .map_err(|e| Failure::Usage(format!("{scenario_path}: {e}")))?;
            let mut environment = logrel::sim::ScenarioEnvironment::new(
                logrel::sim::ConstantEnvironment::new(logrel::core::Value::Float(1.0)),
                &scenario,
                sys.spec.communicator_count(),
            );
            let mut monitor =
                logrel::sim::LrcMonitor::new(&sys.spec, logrel::sim::MonitorConfig::default());
            let mut behaviors = logrel::sim::BehaviorMap::new();
            let config = logrel::sim::SimConfig { rounds, seed };
            let run_span = logrel::obs::Span::start();
            // If the kernel panics, dump the flight recorder before the
            // unwind escapes — the last recorded events are exactly the
            // context the panic message lacks.
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sim.run_observed(
                    &mut behaviors,
                    &mut environment,
                    &mut injector,
                    &mut monitor,
                    &mut registry,
                    &config,
                )
            }));
            match run {
                Ok(_out) => {
                    run_span.finish(&mut registry, logrel::obs::names::RUN_SECONDS);
                    let horizon = rounds * sys.spec.round_period().as_u64();
                    if let Some(rec) = registry.recorder_mut() {
                        rec.dump_now(horizon);
                    }
                    println!("{rounds} round(s), seed {seed}, scenario `{scenario_path}`\n");
                    println!("counters:");
                    for (name, v) in registry.counters() {
                        println!("  {name:<36} {v:>12}");
                    }
                    println!();
                    print!("{}", format_dumps(&registry, &sys));
                    Ok(())
                }
                Err(payload) => {
                    let at = registry
                        .recorder()
                        .and_then(|r| r.events().last().map(logrel::obs::ObsEvent::at))
                        .unwrap_or(0);
                    if let Some(rec) = registry.recorder_mut() {
                        rec.dump_on_panic(at);
                    }
                    eprint!("{}", format_dumps(&registry, &sys));
                    std::panic::resume_unwind(payload);
                }
            }
        }
        "fuzz" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let iters: u64 = take_flag_value(&mut rest, "--iters")?
                .map(|s| s.parse().map_err(|_| format!("bad iteration count `{s}`")))
                .transpose()?
                .unwrap_or(200);
            let seed: u64 = take_flag_value(&mut rest, "--seed")?
                .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
                .transpose()?
                .unwrap_or(0xF022);
            let corpus_dir = take_flag_value(&mut rest, "--corpus")?;
            let path = rest.first().ok_or(usage)?;
            let sys = compile_path(path)?;
            let td = logrel::core::TimeDependentImplementation::from(sys.imp.clone());
            let sim = logrel::sim::Simulation::try_new(&sys.spec, &sys.arch, &td)
                .map_err(|e| analysis_failure(path, "A003", format!("{e}")))?;
            // One short, fixed campaign evaluates every candidate — the
            // same base seed throughout, so a reproducer replays through
            // `htlc inject` with exactly the parameters echoed below.
            let campaign = logrel::sim::CampaignConfig {
                batch: logrel::sim::montecarlo::BatchConfig {
                    replications: 4,
                    rounds: 400,
                    base_seed: 0xC0FFEE,
                    threads: 0,
                },
                monitor: logrel::sim::MonitorConfig::default(),
                lanes: logrel::sim::LaneMode::Auto,
            };
            let b = campaign.batch;
            let config = logrel::sim::FuzzConfig {
                iters,
                seed,
                campaign,
                echo: vec![
                    format!("spec: {path}"),
                    format!(
                        "replay: htlc inject {path} <this-file> {} {} {}",
                        b.rounds, b.base_seed, b.replications
                    ),
                ],
                ..Default::default()
            };
            let setup = |_rep| logrel::sim::montecarlo::ReplicationContext {
                behaviors: logrel::sim::BehaviorMap::new(),
                environment: Box::new(logrel::sim::ConstantEnvironment::new(
                    logrel::core::Value::Float(1.0),
                )),
                injector: Box::new(logrel::sim::ProbabilisticFaults::from_architecture(
                    &sys.arch,
                )),
            };
            let mut registry = logrel::obs::Registry::new();
            let outcome = logrel::sim::run_fuzz(
                &sim,
                &sys.spec,
                &logrel::sim::Scenario::default(),
                sys.arch.host_count(),
                &config,
                setup,
                &mut registry,
            )
            .map_err(|e| analysis_failure(path, "A004", e.to_string()))?;
            println!(
                "{} iteration(s), fuzz seed {seed}, campaign {} replication(s) x {} rounds (seed {})",
                outcome.iters, b.replications, b.rounds, b.base_seed
            );
            println!(
                "coverage: {} signature(s), {} novel candidate(s) kept, {} invalid mutant(s)",
                outcome.signatures, outcome.novel, outcome.invalid
            );
            println!(
                "monitor misses: {} found, {} unique reproducer(s), {} shrink step(s)",
                outcome.monitor_misses,
                outcome.reproducers.len(),
                outcome.shrink_steps
            );
            if let Some(dir) = &corpus_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| Failure::Io(format!("cannot create `{dir}`: {e}")))?;
                for a in outcome.corpus.iter().chain(&outcome.reproducers) {
                    let file = format!("{dir}/{}", a.name);
                    std::fs::write(&file, &a.contents)
                        .map_err(|e| Failure::Io(format!("cannot write `{file}`: {e}")))?;
                }
                println!(
                    "corpus: {} file(s) written to `{dir}`",
                    outcome.corpus.len() + outcome.reproducers.len()
                );
                for r in &outcome.reproducers {
                    println!("  reproducer {dir}/{}", r.name);
                }
            } else {
                println!("(pass --corpus DIR to write the corpus and reproducer files)");
            }
            Ok(())
        }
        "serve" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let stdin_mode = take_bool_flag(&mut rest, "--stdin");
            let listen = take_flag_value(&mut rest, "--listen")?;
            let workers: usize = take_flag_value(&mut rest, "--workers")?
                .map(|s| s.parse().map_err(|_| format!("bad worker count `{s}`")))
                .transpose()?
                .unwrap_or(0);
            let queue_capacity: usize = take_flag_value(&mut rest, "--queue")?
                .map(|s| s.parse().map_err(|_| format!("bad queue capacity `{s}`")))
                .transpose()?
                .unwrap_or(16);
            let cache_path = take_flag_value(&mut rest, "--cache")?;
            if !rest.is_empty() {
                return Err(Failure::Usage(format!("unexpected argument `{}`", rest[0])));
            }
            if stdin_mode == listen.is_some() {
                return Err(Failure::Usage(
                    "serve wants exactly one of --stdin or --listen ADDR".to_owned(),
                ));
            }
            if queue_capacity == 0 {
                return Err(Failure::Usage("--queue wants at least 1".to_owned()));
            }
            let config = logrel::serve::ServeConfig {
                workers,
                queue_capacity,
                recorder_capacity: FLIGHT_RING,
                cache_path,
            };
            let engine = logrel::serve::Engine::new(config);
            if stdin_mode {
                // CI mode: one request line in, result + status lines
                // out, drain on EOF. A malformed or failing job line
                // yields a structured rejection, never an exit.
                logrel::serve::serve_stdin(&engine)
                    .map_err(|e| Failure::Io(format!("serve: {e}")))?;
                return Ok(());
            }
            let addr = listen.expect("checked above");
            logrel::serve::install_term_hook();
            let server = logrel::serve::Server::start(engine, &addr)
                .map_err(|e| Failure::Io(format!("cannot listen on `{addr}`: {e}")))?;
            eprintln!("htlc serve: listening on {}", server.local_addr());
            while !logrel::serve::term_requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            eprintln!("htlc serve: termination requested, draining in-flight jobs");
            server.shutdown();
            Ok(())
        }
        "refine" => {
            let refining_path = args.get(1).ok_or(usage)?;
            let refined_path = args.get(2).ok_or(usage)?;
            // Keep the refining AST: refinement violations are rendered as
            // spanned R-series diagnostics against the refining source.
            let refining_ast =
                parse(&read(refining_path)?).map_err(|e| lang_failure(refining_path, &e))?;
            let refining = logrel::lang::elaborate(&refining_ast)
                .map_err(|e| lang_failure(refining_path, &e))?;
            let refined = compile_path(refined_path)?;
            let kappa = Kappa::by_name(&refining.spec, &refined.spec);
            match check_refinement(
                SystemRef::new(&refining.spec, &refining.arch, &refining.imp),
                SystemRef::new(&refined.spec, &refined.arch, &refined.imp),
                &kappa,
            ) {
                Ok(()) => {
                    println!("`{refining_path}` refines `{refined_path}`");
                    Ok(())
                }
                Err(e) => {
                    let diags = refine_error_diagnostics(&refining_ast, &e);
                    for d in &diags {
                        eprintln!("{}", d.render(refining_path));
                    }
                    Err(Failure::Diagnostics(diags.len()))
                }
            }
        }
        other => Err(Failure::Usage(format!("unknown command `{other}`\n{usage}"))),
    }
}
