//! End-to-end tests of the observability layer on the 3TS: pinned
//! metric values on a short deterministic run, bit-identical simulation
//! output with and without a sink attached, thread-count-invariant
//! campaign metric aggregation, and flight-recorder dumps on a scripted
//! LRC violation.

use logrel_core::{Tick, TimeDependentImplementation, Value};
use logrel_obs::{
    export, names, DropReason, DumpTrigger, NoopSink, ObsEvent, Registry,
};
use logrel_sim::{
    run_campaign_observed, BatchConfig, BehaviorMap, CampaignConfig, ConstantEnvironment,
    LaneMode, LrcMonitor, MonitorConfig, NoFaults, NoSupervisor, ProbabilisticFaults,
    ReplicationContext, Scenario, ScenarioEnvironment, ScenarioEvent, ScenarioInjector, SimConfig,
    SimOutput, Simulation,
};
use logrel_threetank::{Scenario as Deployment, ThreeTankSystem};

/// Three rounds of the unreplicated Baseline with no faults: every
/// counter is exactly predictable from the Fig. 2 specification — 24
/// communicator updates per round (s1/s2/r1/r2 once, l1/l2/u1/u2 five
/// times), six tasks invoked once per round, every vote a single-replica
/// unanimous delivery.
#[test]
fn pinned_metrics_on_a_three_round_baseline_run() {
    let sys = ThreeTankSystem::new(Deployment::Baseline);
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut reg = Registry::new();
    let out = sim.run_observed(
        &mut BehaviorMap::new(),
        &mut ConstantEnvironment::new(Value::Float(0.2)),
        &mut NoFaults,
        &mut NoSupervisor,
        &mut reg,
        &SimConfig { rounds: 3, seed: 1 },
    );

    assert_eq!(reg.counter(names::ROUNDS), 3);
    assert_eq!(reg.counter(names::UPDATES), 72);
    assert_eq!(reg.counter(names::UPDATES_UNRELIABLE), 0);
    assert_eq!(reg.counter(names::TASK_INVOCATIONS), 18);
    assert_eq!(reg.counter(names::TASK_DELIVERED), 18);
    assert_eq!(reg.counter(names::VOTE_UNANIMOUS), 18);
    assert_eq!(reg.counter(names::VOTE_SILENT), 0);
    assert_eq!(reg.counter(names::REPLICA_OK), 18);
    assert_eq!(reg.counter(names::REPLICA_DROP), 0);
    assert_eq!(reg.counter(names::HOST_DOWN_TRANSITIONS), 0);
    assert_eq!(reg.counter(names::HOST_UP_TRANSITIONS), 0);
    assert_eq!(reg.counter(names::BROADCAST_FAIL), 0);
    assert_eq!(reg.gauge(names::HOSTS_UP), Some(3.0));
    let h = reg.histogram(names::REPLICAS_PER_VOTE).expect("observed");
    assert_eq!(h.count(), 18);

    // The counters agree with the trace the same run recorded.
    let updates: usize = sys
        .spec
        .communicator_ids()
        .map(|c| out.trace.update_count(c))
        .sum();
    assert_eq!(updates as u64, reg.counter(names::UPDATES));
}

/// The sink never influences the simulation: a plain `run`, a
/// `run_observed` with the no-op sink, and a `run_observed` with a live
/// registry produce bit-identical outputs under probabilistic faults.
#[test]
fn observed_runs_are_bit_identical_to_plain_runs() {
    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let config = SimConfig {
        rounds: 300,
        seed: 0xFEED,
    };
    let run = |sink: &mut dyn FnMut(&Simulation, &SimConfig) -> SimOutput| sink(&sim, &config);

    let plain = run(&mut |sim, config| {
        sim.run(
            &mut BehaviorMap::new(),
            &mut ConstantEnvironment::new(Value::Float(0.2)),
            &mut ProbabilisticFaults::from_architecture(&sys.arch),
            config,
        )
    });
    let noop = run(&mut |sim, config| {
        sim.run_observed(
            &mut BehaviorMap::new(),
            &mut ConstantEnvironment::new(Value::Float(0.2)),
            &mut ProbabilisticFaults::from_architecture(&sys.arch),
            &mut NoSupervisor,
            &mut NoopSink,
            config,
        )
    });
    let mut reg = Registry::with_recorder(128);
    let observed = run(&mut |sim, config| {
        sim.run_observed(
            &mut BehaviorMap::new(),
            &mut ConstantEnvironment::new(Value::Float(0.2)),
            &mut ProbabilisticFaults::from_architecture(&sys.arch),
            &mut NoSupervisor,
            &mut reg,
            config,
        )
    });

    assert_eq!(plain, noop);
    assert_eq!(plain, observed);
    // ...and the registry actually recorded the run it rode along with.
    assert_eq!(reg.counter(names::ROUNDS), 300);
    assert!(reg.counter(names::REPLICA_OK) > 0);
}

/// Campaign metric aggregation merges per-replication registries in
/// replication order, so the exported documents are bit-identical at any
/// thread count — and on the bit-sliced path exactly as on the scalar
/// one, since every lane replays the same per-replication draw sequence.
#[test]
fn campaign_metric_aggregation_is_thread_count_invariant() {
    let sys = ThreeTankSystem::with_options(Deployment::Baseline, 0.99, Some(0.9)).unwrap();
    let scenario = Scenario::from_events(vec![
        ScenarioEvent::Crash {
            host: sys.ids.h1,
            at: Tick::new(20_000),
        },
        ScenarioEvent::Rejoin {
            host: sys.ids.h1,
            at: Tick::new(40_000),
        },
    ])
    .unwrap();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);

    let run = |threads: usize, lanes: LaneMode| {
        let config = CampaignConfig {
            batch: BatchConfig {
                replications: 8,
                rounds: 150,
                base_seed: 77,
                threads,
            },
            monitor: MonitorConfig::default(),
            lanes,
        };
        let mut reg = Registry::with_recorder(64);
        let report = run_campaign_observed(
            &sim,
            &sys.spec,
            &scenario,
            sys.arch.host_count(),
            &config,
            |_rep| ReplicationContext {
                behaviors: BehaviorMap::new(),
                environment: Box::new(ConstantEnvironment::new(Value::Float(0.25))),
                injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
            },
            &[],
            &mut reg,
            64,
        )
        .unwrap();
        (report, export::to_prometheus(&reg), export::to_json(&reg))
    };

    let (report_1, prom_1, json_1) = run(1, LaneMode::Auto);
    let (report_8, prom_8, json_8) = run(8, LaneMode::Auto);
    assert_eq!(report_1, report_8);
    assert_eq!(prom_1, prom_8);
    assert_eq!(json_1, json_8);
    // The scalar path agrees byte for byte, again at any thread count.
    let (report_s1, prom_s1, json_s1) = run(1, LaneMode::Off);
    let (report_s8, prom_s8, json_s8) = run(8, LaneMode::Off);
    assert_eq!(report_1, report_s1);
    assert_eq!(prom_1, prom_s1);
    assert_eq!(json_1, json_s1);
    assert_eq!(report_s1, report_s8);
    assert_eq!(prom_s1, prom_s8);
    assert_eq!(json_s1, json_s8);
    // A narrow width chunks the replications differently but lands on
    // the same bytes.
    let (report_w3, prom_w3, json_w3) = run(2, LaneMode::Width(3));
    assert_eq!(report_1, report_w3);
    assert_eq!(prom_1, prom_w3);
    assert_eq!(json_1, json_w3);
    // The scripted outage is actually visible in the merged metrics.
    assert!(prom_1.contains("logrel_replica_drop_host_total"));
}

/// A scripted, unterminated crash of `h1` starves `u1` (t1's output) on
/// the unreplicated Baseline until the LRC monitor raises an alarm; the
/// alarm auto-snapshots the flight recorder, and the dump holds both the
/// alarm and the host-down evidence leading up to it.
#[test]
fn flight_recorder_dumps_on_a_scripted_lrc_violation() {
    let sys = ThreeTankSystem::with_options(Deployment::Baseline, 0.999, Some(0.95)).unwrap();
    let scenario = Scenario::from_events(vec![ScenarioEvent::Crash {
        host: sys.ids.h1,
        at: Tick::new(10_000),
    }])
    .unwrap();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let comms = sys.spec.communicator_count();
    let mut env = ScenarioEnvironment::new(
        ConstantEnvironment::new(Value::Float(0.25)),
        &scenario,
        comms,
    );
    let mut inj = ScenarioInjector::new(NoFaults, &scenario, sys.arch.host_count(), comms).unwrap();
    let mut monitor = LrcMonitor::new(&sys.spec, MonitorConfig::default());
    let mut reg = Registry::with_recorder(4096);

    sim.run_observed(
        &mut BehaviorMap::new(),
        &mut env,
        &mut inj,
        &mut monitor,
        &mut reg,
        &SimConfig {
            rounds: 120,
            seed: 3,
        },
    );

    assert!(reg.counter(names::ALARM_RAISED) >= 1, "the outage must alarm");
    assert!(reg.counter(names::REPLICA_DROP_HOST) > 0);
    let rec = reg.recorder().expect("recorder attached");
    assert!(!rec.dumps().is_empty(), "alarms auto-dump the recorder");
    let dump = &rec.dumps()[0];
    assert!(matches!(dump.trigger, DumpTrigger::AlarmRaised { .. }));
    assert!(dump.events.iter().any(|e| e.kind() == "alarm-raised"));
    assert!(
        dump.events.iter().any(|e| matches!(
            e,
            ObsEvent::ReplicaDrop {
                reason: DropReason::HostDown,
                ..
            } | ObsEvent::HostDown { .. }
        )),
        "the dump must carry the host-down evidence before the alarm"
    );
    // The JSON export carries the dump end to end.
    let json = export::to_json(&reg);
    assert!(json.contains("\"trigger\": \"alarm-raised\""));
    assert!(json.contains("\"reason\": \"host-down\""));
}
