//! Declared refinements in multi-program source files: parse, resolve,
//! check with `logrel-refine`, and inherit validity (Proposition 2) — the
//! incremental design flow driven entirely from source text.

use logrel_lang::{elaborate_file, parse_file};
use logrel_refine::{check_refinement, incremental_validate, validate, Kappa, SystemRef};

const SRC: &str = r#"
// Requirements-level model: generous LET and WCET budget.
program requirements {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.999;
    module m {
        start mode main period 50 {
            invoke control reads s[0] writes u[5];
        }
    }
    architecture {
        host h1 reliability 0.999;
        host h2 reliability 0.999;
        sensor sn reliability 0.9999;
        wcet control on h1 30;  wctt control on h1 2;
        wcet control on h2 30;  wctt control on h2 2;
    }
    map { control -> h1, h2;  bind s -> sn; }
}

// Implementation-level model: tighter timing, renamed task.
program implementation {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.99;
    module m {
        start mode main period 50 {
            invoke pid_control reads s[1] writes u[4];
        }
    }
    architecture {
        host h1 reliability 0.999;
        host h2 reliability 0.999;
        sensor sn reliability 0.9999;
        wcet pid_control on h1 12;  wctt pid_control on h1 2;
        wcet pid_control on h2 12;  wctt pid_control on h2 2;
    }
    map { pid_control -> h1, h2;  bind s -> sn; }
}

implementation refines requirements {
    pid_control -> control;
}
"#;

#[test]
fn file_parses_and_resolves() {
    let file = parse_file(SRC).unwrap();
    assert_eq!(file.programs.len(), 2);
    assert_eq!(file.refinements.len(), 1);
    assert_eq!(file.refinements[0].refining, "implementation");
    assert_eq!(
        file.refinements[0].map,
        vec![("pid_control".to_owned(), "control".to_owned())]
    );
    let elaborated = elaborate_file(&file).unwrap();
    assert_eq!(elaborated.systems.len(), 2);
    assert_eq!(elaborated.refinements[0].refining, 1);
    assert_eq!(elaborated.refinements[0].refined, 0);
}

#[test]
fn declared_refinement_checks_and_inherits_validity() {
    let elaborated = elaborate_file(&parse_file(SRC).unwrap()).unwrap();
    let req = &elaborated.systems[0];
    let imp = &elaborated.systems[1];
    let r = &elaborated.refinements[0];
    let kappa = Kappa::from_pairs(
        &imp.spec,
        &req.spec,
        r.pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .unwrap();
    let refined = SystemRef::new(&req.spec, &req.arch, &req.imp);
    let refining = SystemRef::new(&imp.spec, &imp.arch, &imp.imp);
    check_refinement(refining, refined, &kappa).unwrap();
    let cert = validate(refined).unwrap();
    incremental_validate(refining, refined, &kappa, &cert).unwrap();
    // Cross-check against the direct analysis.
    validate(refining).unwrap();
}

#[test]
fn unknown_program_in_declaration_is_reported() {
    let src = SRC.replace("implementation refines requirements", "implementation refines ghost");
    let err = elaborate_file(&parse_file(&src).unwrap()).unwrap_err();
    assert!(err.to_string().contains("ghost"));
}

#[test]
fn unknown_task_in_pair_is_reported() {
    let src = SRC.replace("pid_control -> control;", "pid_control -> phantom;");
    let err = elaborate_file(&parse_file(&src).unwrap()).unwrap_err();
    assert!(err.to_string().contains("phantom"));
}

#[test]
fn duplicate_program_names_are_reported() {
    let src = SRC.replace("program implementation", "program requirements");
    let err = elaborate_file(&parse_file(&src).unwrap()).unwrap_err();
    assert!(err.to_string().contains("duplicate program name"));
}

#[test]
fn empty_pair_block_falls_back_to_name_matching() {
    // Rename the implementation task to match the abstract one and drop
    // the explicit pair: κ by name must kick in.
    let src = SRC
        .replace("pid_control", "control")
        .replace("control -> control;\n", "");
    let elaborated = elaborate_file(&parse_file(&src).unwrap()).unwrap();
    let r = &elaborated.refinements[0];
    assert!(r.pairs.is_empty());
    let req = &elaborated.systems[0];
    let imp = &elaborated.systems[1];
    let kappa = Kappa::from_pairs(&imp.spec, &req.spec, std::iter::empty()).unwrap();
    check_refinement(
        SystemRef::new(&imp.spec, &imp.arch, &imp.imp),
        SystemRef::new(&req.spec, &req.arch, &req.imp),
        &kappa,
    )
    .unwrap();
}
