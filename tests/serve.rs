//! Integration tests for the campaign job service (`logrel-serve`).
//!
//! The contract under test is the service invariant: a served job's
//! metrics line is byte-identical at any worker count, equal to the
//! library campaign pipeline run standalone, and the compilation cache
//! changes cost (compile counts) but never results.

use std::sync::atomic::{AtomicUsize, Ordering};

use logrel::obs::export::to_json_line;
use logrel::obs::{names, MetricsSink, Registry};
use logrel::serve::{proto, Engine, Job, JobOutcome, ServeConfig};
use logrel::sim::montecarlo::{BatchConfig, ReplicationContext};
use logrel::sim::{
    run_campaign_observed, BehaviorMap, CampaignConfig, ConstantEnvironment, LaneMode,
    MonitorConfig, ProbabilisticFaults, Scenario, ScenarioSymbols, Simulation,
};

const SPEC_PATH: &str = "examples/htl/infusion_pump.htl";
const SCENARIO_PATH: &str = "examples/scenarios/pump_outage.scn";
const ROUNDS: u64 = 300;
const REPS: u64 = 8;
const SEED: u64 = 0xFEED;

fn job() -> Job {
    Job {
        spec_source: std::fs::read_to_string(SPEC_PATH).unwrap(),
        spec_label: SPEC_PATH.to_owned(),
        scenario_source: std::fs::read_to_string(SCENARIO_PATH).unwrap(),
        rounds: ROUNDS,
        replications: REPS,
        seed: SEED,
        lanes: LaneMode::Auto,
    }
}

fn engine(workers: usize, queue_capacity: usize) -> Engine {
    Engine::new(ServeConfig {
        workers,
        queue_capacity,
        recorder_capacity: 256,
        cache_path: None,
    })
}

struct Symbols<'a>(&'a logrel::lang::ElaboratedSystem);

impl ScenarioSymbols for Symbols<'_> {
    fn host(&self, name: &str) -> Option<logrel::core::HostId> {
        self.0.arch.find_host(name)
    }
    fn communicator(&self, name: &str) -> Option<logrel::core::CommunicatorId> {
        self.0.spec.find_communicator(name)
    }
}

/// The same campaign run through the library pipeline the way `htlc
/// inject --metrics` runs it, minus the wall-clock span gauges a
/// service job never records.
fn library_reference_line() -> String {
    let source = std::fs::read_to_string(SPEC_PATH).unwrap();
    let sys = logrel::lang::compile(&source).unwrap();
    let scenario = Scenario::parse_with(
        &std::fs::read_to_string(SCENARIO_PATH).unwrap(),
        &Symbols(&sys),
    )
    .unwrap();
    let analytic_report =
        logrel::reliability::compute_srgs(&sys.spec, &sys.arch, &sys.imp).unwrap();
    let analytic: Vec<Option<f64>> = sys
        .spec
        .communicator_ids()
        .map(|c| Some(analytic_report.communicator(c).get()))
        .collect();
    let td = logrel::core::TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::try_new(&sys.spec, &sys.arch, &td).unwrap();
    let config = CampaignConfig {
        batch: BatchConfig {
            replications: REPS,
            rounds: ROUNDS,
            base_seed: SEED,
            threads: 0,
        },
        monitor: MonitorConfig::default(),
        lanes: LaneMode::Auto,
    };
    let mut registry = Registry::with_recorder(256);
    registry.set_gauge(names::BITSLICE_LANES, LaneMode::Auto.width() as f64);
    registry.set_gauge(names::CAMPAIGN_SEED, SEED as f64);
    let setup = |_rep: u64| ReplicationContext {
        behaviors: BehaviorMap::new(),
        environment: Box::new(ConstantEnvironment::new(logrel::core::Value::Float(1.0))),
        injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
    };
    run_campaign_observed(
        &sim,
        &sys.spec,
        &scenario,
        sys.arch.host_count(),
        &config,
        setup,
        &analytic,
        &mut registry,
        256,
    )
    .unwrap();
    to_json_line(&registry)
}

fn submit_ok(engine: &Engine, job: &Job) -> JobOutcome {
    engine.submit(job).expect("job should succeed")
}

#[test]
fn served_metrics_are_byte_identical_across_worker_counts_and_match_the_library() {
    let reference = library_reference_line();
    for workers in [1, 4] {
        let engine = engine(workers, 4);
        let out = submit_ok(&engine, &job());
        assert_eq!(
            out.metrics_line, reference,
            "served output must be byte-identical to the standalone campaign \
             pipeline at {workers} worker(s)"
        );
        engine.shutdown();
    }
}

#[test]
fn resubmitted_unchanged_spec_performs_zero_recompilations() {
    let engine = engine(2, 4);
    let first = submit_ok(&engine, &job());
    assert!(!first.cache_hit);
    assert_eq!(engine.counter(names::SERVE_CACHE_MISSES), 1);
    assert_eq!(engine.counter(names::SERVE_CACHE_HITS), 0);

    // Same bytes again: the spec must come straight out of the cache —
    // zero recompilations, counter-asserted.
    let second = submit_ok(&engine, &job());
    assert!(second.cache_hit);
    assert_eq!(engine.counter(names::SERVE_CACHE_MISSES), 1);
    assert_eq!(engine.counter(names::SERVE_CACHE_HITS), 1);
    assert_eq!(first.metrics_line, second.metrics_line);

    // A different seed is a different job but the same compiled spec.
    let mut reseeded = job();
    reseeded.seed = SEED + 1;
    let third = submit_ok(&engine, &reseeded);
    assert!(third.cache_hit);
    assert_eq!(engine.counter(names::SERVE_CACHE_MISSES), 1);
    assert_ne!(third.metrics_line, second.metrics_line);

    assert_eq!(engine.counter(names::SERVE_JOBS_COMPLETED), 3);
    assert_eq!(engine.counter(names::SERVE_JOBS_REJECTED), 0);
    engine.shutdown();
}

#[test]
fn overfull_queue_rejects_with_a_structured_s002() {
    // One worker, admission capacity one: while a long job is in
    // flight, the next submission must be rejected, not queued.
    let engine = engine(1, 1);
    let slow = Job {
        rounds: 20_000,
        replications: 32,
        ..job()
    };
    std::thread::scope(|scope| {
        let inflight = {
            let engine = engine.clone();
            scope.spawn(move || engine.submit(&slow).expect("the admitted job succeeds"))
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while engine.gauge(names::SERVE_QUEUE_DEPTH) != Some(1.0) {
            assert!(
                std::time::Instant::now() < deadline,
                "in-flight job never became visible"
            );
            std::thread::yield_now();
        }
        let err = engine.submit(&job()).expect_err("queue is full");
        assert_eq!(err.code, proto::S_QUEUE_FULL);
        assert!(err.message.contains("resubmit"), "{}", err.message);
        assert_eq!(engine.counter(names::SERVE_JOBS_REJECTED), 1);
        inflight.join().unwrap();
    });
    assert_eq!(engine.gauge(names::SERVE_QUEUE_DEPTH), Some(0.0));
    assert_eq!(engine.counter(names::SERVE_JOBS_COMPLETED), 1);
    engine.shutdown();
}

#[test]
fn shutdown_rejects_new_jobs_with_s005() {
    let engine = engine(1, 4);
    engine.begin_shutdown();
    let err = engine.submit(&job()).expect_err("draining service takes no jobs");
    assert_eq!(err.code, proto::S_SHUTDOWN);
    engine.shutdown();
}

#[test]
fn malformed_lines_are_rejected_without_killing_the_service() {
    let engine = engine(1, 4);
    let responses = logrel::serve::process_line(&engine, "this is not json");
    assert_eq!(responses.len(), 1);
    assert!(responses[0].contains("\"code\":\"S001\""), "{}", responses[0]);
    // The next (valid) request on the same service still succeeds.
    let line = format!(
        r#"{{"schema":"logrel-job-v1","id":"ok","spec_path":"{SPEC_PATH}","scenario_path":"{SCENARIO_PATH}","rounds":50,"replications":2,"seed":1}}"#
    );
    let responses = logrel::serve::process_line(&engine, &line);
    assert_eq!(responses.len(), 2);
    assert!(responses[0].starts_with(r#"{"schema":"logrel-metrics-v1""#));
    assert!(responses[1].contains("\"status\":\"done\""));
    // Degenerate campaign parameters get the structured S004, and the
    // service survives that too.
    let line = format!(
        r#"{{"schema":"logrel-job-v1","id":"zero","spec_path":"{SPEC_PATH}","scenario_path":"{SCENARIO_PATH}","replications":0}}"#
    );
    let responses = logrel::serve::process_line(&engine, &line);
    assert_eq!(responses.len(), 1);
    assert!(responses[0].contains("\"code\":\"S004\""), "{}", responses[0]);
    assert!(responses[0].contains("replication"), "{}", responses[0]);
    engine.shutdown();
}

/// A fleet of services sharing one `.logrel-cache` path: concurrent
/// compiles race their atomic cache rewrites, and a reader must never
/// observe a torn file (the temp-file-plus-rename fix under test).
#[test]
fn engines_sharing_a_cache_file_never_tear_it() {
    let dir = std::env::temp_dir().join(format!(
        "logrel-serve-cache-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("fleet.logrel-cache");
    let cache_path = cache_path.to_str().unwrap().to_owned();

    let base_spec = std::fs::read_to_string("examples/htl/infusion_pump.htl").unwrap();
    let scenario = std::fs::read_to_string(SCENARIO_PATH).unwrap();
    let engines: Vec<Engine> = (0..3)
        .map(|_| {
            Engine::new(ServeConfig {
                workers: 2,
                queue_capacity: 8,
                recorder_capacity: 0,
                cache_path: Some(cache_path.clone()),
            })
        })
        .collect();
    let torn_reads = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (e, engine) in engines.iter().enumerate() {
            for i in 0..2 {
                let (base_spec, scenario) = (&base_spec, &scenario);
                scope.spawn(move || {
                    // Distinct program names make distinct content
                    // hashes: every submission compiles (and rewrites
                    // the shared cache file).
                    let spec = base_spec
                        .replace("program infusion_pump", &format!("program pump_{e}_{i}"));
                    let out = engine
                        .submit(&Job {
                            spec_source: spec,
                            spec_label: format!("fleet-{e}-{i}.htl"),
                            scenario_source: scenario.clone(),
                            rounds: 50,
                            replications: 2,
                            seed: 9,
                            lanes: LaneMode::Auto,
                        })
                        .expect("fleet job succeeds");
                    assert!(!out.cache_hit);
                });
            }
        }
        // A concurrent reader hammering the shared path: atomic renames
        // mean it sees either no file or a valid one, never garbage.
        let (cache_path, torn_reads) = (&cache_path, &torn_reads);
        scope.spawn(move || {
            for _ in 0..400 {
                if let logrel::query::LoadOutcome::Invalid(_) = logrel::query::load(cache_path) {
                    torn_reads.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(torn_reads.load(Ordering::Relaxed), 0, "reader saw a torn cache file");
    assert!(
        matches!(logrel::query::load(&cache_path), logrel::query::LoadOutcome::Loaded(_)),
        "final cache file must be valid"
    );
    for engine in engines {
        engine.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
