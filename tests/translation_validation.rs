//! Translation validation: mutation coverage of the V-code catalog.
//!
//! Every test corrupts one compiled artifact — a [`RoundProgram`] field
//! or one host's E-code — and asserts that certification rejects it with
//! the exact V-code family the catalog assigns to that defect, while the
//! unmutated artifact certifies cleanly. A property test generates random
//! race-free pipelines and checks that elaborate → compile → certify
//! always succeeds, and the CLI tests pin `htlc verify` behaviour on the
//! clean corpus.

use logrel_core::prelude::*;
use logrel_core::roundprog::UpdateOp;
use logrel_core::{Calendar, RoundProgram};
use logrel_emachine::{generate, Addr, ECode, Instruction};
use logrel_threetank::{Scenario, ThreeTankSystem};
use logrel_validate::{certify_ecode, certify_kernel, certify_system};
use proptest::prelude::*;

/// Compiles the round program of a 3TS scenario.
fn compiled(scenario: Scenario) -> (ThreeTankSystem, TimeDependentImplementation, RoundProgram) {
    let sys = ThreeTankSystem::new(scenario);
    let td = TimeDependentImplementation::from(sys.imp.clone());
    let prog = RoundProgram::compile(&sys.spec, &td, &Calendar::new(&sys.spec));
    (sys, td, prog)
}

/// Asserts that certification rejects `prog` and that the diagnostic set
/// contains `code` (mutations may cascade into secondary findings; the
/// primary code must be present and stable).
fn assert_rejected(
    sys: &ThreeTankSystem,
    td: &TimeDependentImplementation,
    prog: &RoundProgram,
    code: &str,
) {
    let diags = certify_kernel(&sys.spec, td, prog).expect_err("mutant must be rejected");
    assert!(!diags.is_empty());
    assert!(
        diags.iter().any(|d| d.code == code),
        "expected {code}, got: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
}

#[test]
fn clean_kernel_certifies() {
    for scenario in [
        Scenario::Baseline,
        Scenario::ReplicatedControllers,
        Scenario::ReplicatedSensors,
    ] {
        let (sys, td, prog) = compiled(scenario);
        let cert = certify_kernel(&sys.spec, &td, &prog).expect("clean program certifies");
        assert_eq!(cert.round, sys.spec.round_period().as_u64());
        assert_eq!(cert.artifacts, vec!["round-program"]);
        // Deterministic: recompiling yields the identical certificate.
        let again = RoundProgram::compile(&sys.spec, &td, &Calendar::new(&sys.spec));
        assert_eq!(certify_kernel(&sys.spec, &td, &again).unwrap(), cert);
    }
}

#[test]
fn v001_missing_latch_edge() {
    let (sys, td, mut prog) = compiled(Scenario::Baseline);
    let slot = prog
        .slots
        .iter_mut()
        .find(|s| !s.latches.is_empty())
        .expect("some slot latches");
    slot.latches.remove(0);
    assert_rejected(&sys, &td, &prog, "V001");
}

#[test]
fn v002_extra_latch_edge() {
    let (sys, td, mut prog) = compiled(Scenario::Baseline);
    let slot = prog
        .slots
        .iter_mut()
        .find(|s| !s.latches.is_empty())
        .expect("some slot latches");
    let dup = slot.latches[0];
    slot.latches.push(dup);
    assert_rejected(&sys, &td, &prog, "V002");
}

#[test]
fn v003_wrong_instance_index() {
    let (sys, td, mut prog) = compiled(Scenario::Baseline);
    let total = prog.total_outputs as u32;
    let op = prog
        .slots
        .iter_mut()
        .flat_map(|s| s.updates.iter_mut())
        .find(|op| matches!(op, UpdateOp::Landed { .. }))
        .expect("some landing");
    if let UpdateOp::Landed { out_slot, .. } = op {
        *out_slot = (*out_slot + 1) % total;
    }
    assert_rejected(&sys, &td, &prog, "V003");
}

#[test]
fn v004_vote_arity_mismatch() {
    let (sys, td, mut prog) = compiled(Scenario::ReplicatedControllers);
    let hosts = &mut prog.phases[0].hosts[sys.ids.t1.index()];
    assert!(hosts.len() >= 2, "t1 is replicated in this scenario");
    hosts.pop();
    assert_rejected(&sys, &td, &prog, "V004");
}

#[test]
fn v005_replica_set_divergence() {
    let (sys, td, mut prog) = compiled(Scenario::ReplicatedControllers);
    let hosts = &mut prog.phases[0].hosts[sys.ids.t1.index()];
    assert_eq!(hosts, &vec![sys.ids.h1, sys.ids.h2]);
    // Same arity, different members: h2 replaced by h3.
    *hosts = vec![sys.ids.h1, sys.ids.h3];
    assert_rejected(&sys, &td, &prog, "V005");
}

#[test]
fn v006_update_instant_skew() {
    let (sys, td, mut prog) = compiled(Scenario::Baseline);
    prog.slots[0].updates.remove(0);
    assert_rejected(&sys, &td, &prog, "V006");
}

#[test]
fn v008_non_canonical_double_update() {
    let (sys, td, mut prog) = compiled(Scenario::Baseline);
    let dup = prog.slots[0].updates[0];
    prog.slots[0].updates.push(dup);
    assert_rejected(&sys, &td, &prog, "V008");
}

#[test]
fn v009_dead_replica_output() {
    let (sys, td, mut prog) = compiled(Scenario::Baseline);
    let op = prog
        .slots
        .iter_mut()
        .flat_map(|s| s.updates.iter_mut())
        .find(|op| matches!(op, UpdateOp::Landed { .. }))
        .expect("some landing");
    if let UpdateOp::Landed { comm, .. } = *op {
        *op = UpdateOp::Persist { comm };
    }
    assert_rejected(&sys, &td, &prog, "V009");
}

#[test]
fn v010_failure_model_divergence() {
    let (sys, td, mut prog) = compiled(Scenario::Baseline);
    let table = &mut prog.tasks[sys.ids.t1.index()];
    table.model = match table.model {
        FailureModel::Series => FailureModel::Parallel,
        _ => FailureModel::Series,
    };
    assert_rejected(&sys, &td, &prog, "V010");
}

// ---------------------------------------------------------------------
// E-code mutations
// ---------------------------------------------------------------------

/// Generates the per-host E-code of a 3TS scenario.
fn ecodes(sys: &ThreeTankSystem) -> Vec<(HostId, ECode)> {
    sys.arch
        .host_ids()
        .map(|h| (h, generate(&sys.spec, &sys.imp, h)))
        .collect()
}

/// Rewrites one instruction of one host's program. Replacement with
/// `Jump` to the next address deletes an instruction without shifting
/// any jump target.
fn rewrite(
    programs: &mut [(HostId, ECode)],
    host: HostId,
    f: impl Fn(usize, Instruction) -> Option<Instruction>,
) {
    let code = &mut programs
        .iter_mut()
        .find(|(h, _)| *h == host)
        .expect("host exists")
        .1;
    let mut ins: Vec<Instruction> = code.instructions().to_vec();
    let mut changed = 0usize;
    for (i, slot) in ins.iter_mut().enumerate() {
        if let Some(new) = f(i, *slot) {
            *slot = new;
            changed += 1;
        }
    }
    assert!(changed > 0, "mutation site not found");
    *code = ECode::new(ins, code.entry());
}

#[test]
fn clean_ecode_composition_certifies() {
    let sys = ThreeTankSystem::new(Scenario::ReplicatedControllers);
    let programs = ecodes(&sys);
    let cert = certify_ecode(&sys.spec, &sys.imp, &programs).expect("clean E-code certifies");
    assert_eq!(cert.artifacts, vec!["e-code"]);
    // The E-code denotation must match the kernel's reference exactly, so
    // both artifact checks share one digest.
    let td = TimeDependentImplementation::from(sys.imp.clone());
    let prog = RoundProgram::compile(&sys.spec, &td, &Calendar::new(&sys.spec));
    assert_eq!(certify_kernel(&sys.spec, &td, &prog).unwrap().digest, cert.digest);
}

#[test]
fn ecode_v001_dropped_latch() {
    let sys = ThreeTankSystem::new(Scenario::Baseline);
    let mut programs = ecodes(&sys);
    let host = sys.imp.hosts_of(sys.ids.t1).iter().next().copied().unwrap();
    rewrite(&mut programs, host, |i, ins| match ins {
        Instruction::Call(logrel_emachine::DriverOp::LatchInput { task, .. })
            if task == sys.ids.t1 =>
        {
            Some(Instruction::Jump(Addr(i + 1)))
        }
        _ => None,
    });
    let diags = certify_ecode(&sys.spec, &sys.imp, &programs).expect_err("mutant rejected");
    assert!(diags.iter().any(|d| d.code == "V001"), "{diags:?}");
}

#[test]
fn ecode_v003_wrong_update_instance() {
    let sys = ThreeTankSystem::new(Scenario::Baseline);
    let mut programs = ecodes(&sys);
    let host = sys.ids.h1;
    rewrite(&mut programs, host, |_, ins| match ins {
        Instruction::Call(logrel_emachine::DriverOp::UpdateCommunicator { comm, instance })
            if instance > 0 =>
        {
            Some(Instruction::Call(
                logrel_emachine::DriverOp::UpdateCommunicator {
                    comm,
                    instance: instance + 1,
                },
            ))
        }
        _ => None,
    });
    let diags = certify_ecode(&sys.spec, &sys.imp, &programs).expect_err("mutant rejected");
    assert!(diags.iter().any(|d| d.code == "V003"), "{diags:?}");
}

#[test]
fn ecode_v004_dropped_replica_release() {
    let sys = ThreeTankSystem::new(Scenario::ReplicatedControllers);
    let mut programs = ecodes(&sys);
    // Delete t1 entirely (release and latches) on one of its two replica
    // hosts, so the replica silently disappears from the vote.
    rewrite(&mut programs, sys.ids.h2, |i, ins| match ins {
        Instruction::Release { task }
        | Instruction::Call(logrel_emachine::DriverOp::LatchInput { task, .. })
            if task == sys.ids.t1 =>
        {
            Some(Instruction::Jump(Addr(i + 1)))
        }
        _ => None,
    });
    let diags = certify_ecode(&sys.spec, &sys.imp, &programs).expect_err("mutant rejected");
    assert!(diags.iter().any(|d| d.code == "V004"), "{diags:?}");
}

#[test]
fn ecode_v007_zero_delta_future() {
    let sys = ThreeTankSystem::new(Scenario::Baseline);
    let mut programs = ecodes(&sys);
    rewrite(&mut programs, sys.ids.h1, |_, ins| match ins {
        Instruction::Future { delta, target } if delta > 0 => {
            Some(Instruction::Future { delta: 0, target })
        }
        _ => None,
    });
    let diags = certify_ecode(&sys.spec, &sys.imp, &programs).expect_err("mutant rejected");
    assert!(diags.iter().any(|d| d.code == "V007"), "{diags:?}");
}

// ---------------------------------------------------------------------
// Whole-system certification and properties
// ---------------------------------------------------------------------

#[test]
fn certify_system_covers_both_artifacts() {
    for scenario in [
        Scenario::Baseline,
        Scenario::ReplicatedControllers,
        Scenario::ReplicatedSensors,
    ] {
        let sys = ThreeTankSystem::new(scenario);
        let td = TimeDependentImplementation::from(sys.imp.clone());
        let cert = certify_system(&sys.spec, &sys.arch, &td).expect("3TS certifies");
        assert_eq!(cert.artifacts, vec!["round-program", "e-code"]);
    }
}

#[test]
fn certify_steer_by_wire() {
    use logrel_steerbywire::{SteerScenario, SteerSystem};
    for scenario in [SteerScenario::SingleEcu, SteerScenario::ReplicatedEcus] {
        let sys = SteerSystem::new(scenario, None).unwrap();
        let td = TimeDependentImplementation::from(sys.imp.clone());
        let cert = certify_system(&sys.spec, &sys.arch, &td).expect("steer-by-wire certifies");
        assert_eq!(cert.round, sys.spec.round_period().as_u64());
    }
}

/// Random race-free linear pipelines (mirrors `model_properties.rs`).
fn build_pipeline(stages: usize) -> (Specification, Architecture, Implementation) {
    let mut sb = Specification::builder();
    let mut comms = vec![sb
        .communicator(
            CommunicatorDecl::new("c0", ValueType::Float, 10)
                .unwrap()
                .from_sensor(),
        )
        .unwrap()];
    for i in 1..=stages {
        comms.push(
            sb.communicator(CommunicatorDecl::new(format!("c{i}"), ValueType::Float, 10).unwrap())
                .unwrap(),
        );
    }
    let mut tasks = Vec::new();
    for i in 0..stages {
        tasks.push(
            sb.task(
                TaskDecl::new(format!("t{i}"))
                    .reads(comms[i], i as u64)
                    .writes(comms[i + 1], i as u64 + 1),
            )
            .unwrap(),
        );
    }
    let spec = sb.build().unwrap();
    let mut ab = Architecture::builder();
    let mut hosts = Vec::new();
    for i in 0..stages {
        hosts.push(
            ab.host(HostDecl::new(format!("h{i}"), Reliability::new(0.9).unwrap()))
                .unwrap(),
        );
    }
    let sen = ab
        .sensor(SensorDecl::new("sen", Reliability::new(0.9).unwrap()))
        .unwrap();
    for &t in &tasks {
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
    }
    let arch = ab.build();
    let mut ib = Implementation::builder().bind_sensor(comms[0], sen);
    for (i, &t) in tasks.iter().enumerate() {
        ib = ib.assign(t, [hosts[i]]);
    }
    let imp = ib.build(&spec, &arch).unwrap();
    (spec, arch, imp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every elaborated race-free pipeline compiles to artifacts that
    /// certify cleanly, whatever the stage count.
    #[test]
    fn random_pipelines_certify(stages in 1usize..6) {
        let (spec, arch, imp) = build_pipeline(stages);
        let td = TimeDependentImplementation::from(imp);
        let cert = certify_system(&spec, &arch, &td);
        prop_assert!(cert.is_ok(), "certification failed: {:?}", cert.err());
        prop_assert_eq!(cert.unwrap().executions, stages);
    }
}

// ---------------------------------------------------------------------
// CLI: `htlc verify` on the clean corpus
// ---------------------------------------------------------------------

#[test]
fn htlc_verify_clean_corpus() {
    for file in [
        "assets/three_tank.htl",
        "assets/steer_by_wire.htl",
        "examples/htl/infusion_pump.htl",
    ] {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_htlc"))
            .args(["verify", file])
            .output()
            .expect("htlc runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "`htlc verify {file}` failed: {stdout}");
        assert!(stdout.contains("certificate round="), "{stdout}");
        assert!(stdout.contains("VERIFIED"), "{stdout}");
    }
}

#[test]
fn htlc_verify_missing_file_is_usage_error() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_htlc"))
        .args(["verify", "no/such/file.htl"])
        .output()
        .expect("htlc runs");
    assert_eq!(out.status.code(), Some(1));
}
