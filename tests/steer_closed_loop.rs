//! Closed-loop steer-by-wire: the replicated deployment survives an ECU
//! unplug during a lane change; the single-ECU deployment loses steering.

use logrel_core::{Tick, TimeDependentImplementation};
use logrel_sim::{BehaviorMap, NoFaults, SimConfig, Simulation, UnplugAt};
use logrel_steerbywire::behaviors::build_behaviors;
use logrel_steerbywire::env::LaneChange;
use logrel_steerbywire::{SteerEnvironment, SteerScenario, SteerSystem, VehicleParams};

const SPEED: f64 = 25.0;
/// Lane change at t = 10 s for 3 s, unplug (when requested) at t = 8 s.
const LANE_CHANGE: LaneChange = LaneChange {
    start: 10.0,
    duration: 3.0,
    amplitude: 1.2,
};

fn run(scenario: SteerScenario, unplug: bool) -> (f64, f64) {
    let sys = SteerSystem::new(scenario, None).expect("valid");
    let params = VehicleParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors: BehaviorMap = build_behaviors(&sys, &params);
    let mut env = SteerEnvironment::new(
        params,
        sys.ids,
        0.001,
        SPEED,
        LANE_CHANGE,
        sys.gains.steering_ratio,
    );
    // 16 s = 320 rounds of 50 ms.
    let config = SimConfig {
        rounds: 320,
        seed: 6,
    };
    if unplug {
        let mut inj = UnplugAt::new(NoFaults, sys.ids.ecu_a, Tick::new(8_000));
        sim.run(&mut behaviors, &mut env, &mut inj, &config);
    } else {
        sim.run(&mut behaviors, &mut env, &mut NoFaults, &config);
    }
    // Mean |yaw error| over the manoeuvre window [10 s, 13.5 s].
    let window: Vec<f64> = env
        .error_log()
        .iter()
        .filter(|(t, _)| (10_000..13_500).contains(&t.as_u64()))
        .map(|&(_, e)| e)
        .collect();
    let err = window.iter().sum::<f64>() / window.len() as f64;
    let lateral = env.plant().state().lateral_position;
    (err, lateral)
}

#[test]
fn nominal_lane_change_tracks_and_moves_the_car() {
    let (err, lateral) = run(SteerScenario::ReplicatedEcus, false);
    // The zero-lag steady-state reference peaks at ~0.41 rad/s; the 50 ms
    // sample-and-hold, actuator lag and vehicle dynamics leave ~20% phase
    // error against it.
    assert!(err < 0.1, "tracking error {err} rad/s");
    // A full sine returns roughly to straight but displaced laterally.
    assert!(lateral.abs() > 0.1, "the car must have moved: {lateral} m");
}

#[test]
fn replicated_ecus_survive_the_unplug() {
    let (nominal, lat_nom) = run(SteerScenario::ReplicatedEcus, false);
    let (unplugged, lat_unp) = run(SteerScenario::ReplicatedEcus, true);
    assert!(
        (nominal - unplugged).abs() < 1e-12,
        "unplug must be invisible: {nominal} vs {unplugged}"
    );
    assert!((lat_nom - lat_unp).abs() < 1e-9);
}

#[test]
fn single_ecu_loses_steering_after_the_unplug() {
    let (nominal, _) = run(SteerScenario::SingleEcu, false);
    let (unplugged, lat_unp) = run(SteerScenario::SingleEcu, true);
    // ecu_a dies before the manoeuvre: the rack never receives the lane
    // change, the car drives straight, and the yaw reference is missed.
    assert!(
        unplugged > nominal * 2.5,
        "expected clear degradation: nominal {nominal}, unplugged {unplugged}"
    );
    assert!(
        lat_unp.abs() < 0.05,
        "without steering the car keeps straight: {lat_unp} m"
    );
}
