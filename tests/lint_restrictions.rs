//! Negative elaboration tests: one defective program per race-freedom
//! restriction of §2 (plus the environment-write rule), asserting both the
//! span-less core rejection and the spanned lint diagnostic the CLI shows
//! instead.

use logrel::core::CoreError;
use logrel::lang::{elaborate, parse, LangError};
use logrel::lint::{lint_program, lint_source, Severity};
use std::fs;
use std::path::Path;

fn corpus(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/assets")
        .join(name);
    fs::read_to_string(path).unwrap()
}

/// The single diagnostic with `code`, or a panic listing what was found.
fn only_diag(source: &str, code: &str) -> logrel::lint::Diagnostic {
    let diags = lint_source(source);
    let matching: Vec<_> = diags.iter().filter(|d| d.code == code).cloned().collect();
    assert_eq!(matching.len(), 1, "expected one {code}, got {diags:?}");
    matching.into_iter().next().unwrap()
}

#[test]
fn restriction_1_task_without_access() {
    // The grammar requires both access lists, so restriction 1 can only be
    // violated through the AST: strip the reads of a valid invocation.
    let mut program = parse(&corpus("lint_dead_comm.htl")).unwrap();
    let invocation = &mut program.modules[0].modes[0].invocations[0];
    invocation.reads.clear();
    invocation.defaults.clear();
    let span = invocation.span;
    assert!(matches!(
        elaborate(&program),
        Err(LangError::Core(CoreError::TaskWithoutAccess { .. }))
    ));
    let diags = lint_program(&program);
    let d = diags.iter().find(|d| d.code == "L011").expect("L011");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!((d.span.line, d.span.col), (span.line, span.col));
}

#[test]
fn restriction_2_read_not_before_write() {
    let source = corpus("restriction_read_after_write.htl");
    assert!(matches!(
        elaborate(&parse(&source).unwrap()),
        Err(LangError::Core(CoreError::ReadNotBeforeWrite { .. }))
    ));
    let d = only_diag(&source, "L012");
    assert_eq!(d.severity, Severity::Error);
    // The invocation sits on line 6; labels point at the offending
    // accesses within it.
    assert_eq!(d.span.line, 6);
    assert_eq!(d.labels.len(), 2);
    assert!(d.labels.iter().all(|l| l.span.line == 6));
}

#[test]
fn restriction_3_two_writers() {
    let source = corpus("restriction_two_writers.htl");
    assert!(matches!(
        elaborate(&parse(&source).unwrap()),
        Err(LangError::Core(CoreError::MultipleWriters { .. }))
    ));
    let d = only_diag(&source, "L013");
    assert_eq!(d.severity, Severity::Error);
    // Reported on the second writer (line 7), labelled at the first
    // (line 6).
    assert_eq!(d.span.line, 7);
    assert_eq!(d.labels[0].span.line, 6);
}

#[test]
fn restriction_4_duplicate_instance_write() {
    let source = corpus("restriction_dup_write.htl");
    assert!(matches!(
        elaborate(&parse(&source).unwrap()),
        Err(LangError::Core(CoreError::DuplicateInstanceWrite { .. }))
    ));
    let d = only_diag(&source, "L014");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.line, 6);
}

#[test]
fn environment_write_is_rejected_with_span() {
    let source = corpus("restriction_env_write.htl");
    assert!(matches!(
        elaborate(&parse(&source).unwrap()),
        Err(LangError::Core(CoreError::WriteToEnvironment { .. }))
    ));
    let d = only_diag(&source, "L015");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.line, 6);
}
