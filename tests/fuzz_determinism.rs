//! End-to-end tests of the coverage-guided scenario fuzzer: a fixed seed
//! gives byte-identical corpora and reproducers across runs, every
//! shrunk reproducer replays as a genuine monitor miss through the plain
//! campaign API, and the fuzz counters land in the metric registry (and
//! export deterministically).

use logrel_core::TimeDependentImplementation;
use logrel_obs::{export, names, Registry};
use logrel_sim::{
    run_campaign, run_fuzz, BatchConfig, BehaviorMap, CampaignConfig, ConstantEnvironment,
    FuzzConfig, FuzzOutcome, LaneMode, MonitorConfig, ProbabilisticFaults, ReplicationContext,
    Scenario,
};
use logrel_core::Value;
use logrel_threetank::{Scenario as Deployment, ThreeTankSystem};

fn fuzz_once(sys: &ThreeTankSystem, config: &FuzzConfig) -> (FuzzOutcome, Registry) {
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = logrel_sim::Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut registry = Registry::new();
    let outcome = run_fuzz(
        &sim,
        &sys.spec,
        &Scenario::default(),
        sys.arch.host_count(),
        config,
        |_rep| ReplicationContext {
            behaviors: BehaviorMap::new(),
            environment: Box::new(ConstantEnvironment::new(Value::Float(0.25))),
            injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
        },
        &mut registry,
    )
    .unwrap();
    (outcome, registry)
}

fn config() -> FuzzConfig {
    FuzzConfig {
        iters: 120,
        seed: 7,
        campaign: CampaignConfig {
            batch: BatchConfig {
                replications: 2,
                rounds: 300,
                base_seed: 0xC0FFEE,
                threads: 0,
            },
            monitor: MonitorConfig::default(),
            lanes: LaneMode::Auto,
        },
        ..FuzzConfig::default()
    }
}

/// Same seed, same spec → the whole outcome (corpus bytes, reproducer
/// bytes, counters) is identical run to run, and the emitted metrics
/// export to byte-identical documents.
#[test]
fn fixed_seed_fuzzing_is_byte_identical_across_runs() {
    let sys = ThreeTankSystem::with_options(Deployment::Baseline, 0.999, Some(0.999)).unwrap();
    let config = config();
    let (a, reg_a) = fuzz_once(&sys, &config);
    let (b, reg_b) = fuzz_once(&sys, &config);
    assert_eq!(a, b, "fuzzing must be a pure function of the seed");
    assert_eq!(export::to_prometheus(&reg_a), export::to_prometheus(&reg_b));
    assert_eq!(export::to_json(&reg_a), export::to_json(&reg_b));

    // The campaign actually explored: the corpus grew beyond the seed
    // scenario and every artifact parses back as a valid timeline.
    assert_eq!(a.iters, config.iters);
    assert!(a.novel > 0, "no novel signatures in {} iters", a.iters);
    assert!(a.corpus.len() as u64 == a.novel + 1);
    assert_eq!(a.corpus[0].name, "cov-0000.scn");
    for artifact in a.corpus.iter().chain(&a.reproducers) {
        Scenario::parse(&artifact.contents).unwrap_or_else(|e| {
            panic!("{} does not re-parse: {e}", artifact.name)
        });
    }

    // The sink got the catalog counters, matching the outcome's fields.
    assert_eq!(reg_a.counter(names::FUZZ_ITERS), a.iters);
    assert_eq!(reg_a.counter(names::FUZZ_NOVEL), a.novel);
    assert_eq!(reg_a.counter(names::FUZZ_MONITOR_MISS), a.monitor_misses);
    assert_eq!(reg_a.counter(names::FUZZ_SHRINK_STEPS), a.shrink_steps);
    assert_eq!(reg_a.gauge(names::FUZZ_SIGNATURES), Some(a.signatures as f64));
    let prom = export::to_prometheus(&reg_a);
    for metric in [
        "logrel_fuzz_iters_total",
        "logrel_fuzz_novel_total",
        "logrel_fuzz_monitor_miss_total",
        "logrel_fuzz_shrink_steps_total",
        "logrel_fuzz_signatures",
    ] {
        assert!(prom.contains(&format!("# HELP {metric} ")), "{metric} HELP");
        assert!(prom.contains(&format!("# TYPE {metric} ")), "{metric} TYPE");
    }
}

/// Every reproducer the fuzzer ships replays as a monitor miss through
/// the plain campaign API: some constrained communicator dips below its
/// LRC with statistical ground truth, and no alarm catches it.
#[test]
fn reproducers_replay_as_monitor_misses() {
    let sys = ThreeTankSystem::with_options(Deployment::Baseline, 0.999, Some(0.999)).unwrap();
    let config = config();
    let (outcome, _) = fuzz_once(&sys, &config);
    assert!(
        !outcome.reproducers.is_empty(),
        "the pinned campaign must find at least one miss (found {} in {} iters)",
        outcome.monitor_misses,
        outcome.iters,
    );
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = logrel_sim::Simulation::new(&sys.spec, &sys.arch, &imp);
    for artifact in &outcome.reproducers {
        let scn = Scenario::parse(&artifact.contents).unwrap();
        let report = run_campaign(
            &sim,
            &sys.spec,
            &scn,
            sys.arch.host_count(),
            &config.campaign,
            |_rep| ReplicationContext {
                behaviors: BehaviorMap::new(),
                environment: Box::new(ConstantEnvironment::new(Value::Float(0.25))),
                injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
            },
            &[],
        )
        .unwrap();
        let missed = report
            .comms
            .iter()
            .any(|c| c.violations > 0 && c.alarms_before_violation == 0);
        assert!(missed, "{} does not replay as a miss", artifact.name);
    }
}
