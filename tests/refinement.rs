//! Proposition 2 end-to-end: a design flow that analyses an abstract 3TS
//! once and carries the certificate through refinements.

use logrel_core::{
    Architecture, CommunicatorDecl, FailureModel, Implementation, Reliability, Specification,
    TaskDecl, Value, ValueType,
};
use logrel_refine::{check_refinement, incremental_validate, validate, Kappa, SystemRef};
use logrel_threetank::{Scenario, ThreeTankSystem};

/// An "abstract" 3TS: same structure, but generous WCETs and wide LETs —
/// the requirements-level model a designer would write first.
fn abstract_three_tank(lrc_u: f64) -> (Specification, Architecture, Implementation) {
    let sys = ThreeTankSystem::with_options(Scenario::ReplicatedControllers, 0.999, None)
        .unwrap();
    // Rebuild the spec with wider LETs: controllers write u[4] (instant
    // 400) instead of u[3] (300), estimators read u[2] (instant 200), earlier than the concrete read time.
    let mut sb = Specification::builder();
    let comm = |n: &str, p: u64| CommunicatorDecl::new(n, ValueType::Float, p).unwrap();
    let s1 = sb.communicator(comm("s1", 500).from_sensor()).unwrap();
    let s2 = sb.communicator(comm("s2", 500).from_sensor()).unwrap();
    let l1 = sb.communicator(comm("l1", 100)).unwrap();
    let l2 = sb.communicator(comm("l2", 100)).unwrap();
    let u1 = sb
        .communicator(comm("u1", 100).with_lrc(Reliability::new(lrc_u).unwrap()))
        .unwrap();
    let u2 = sb
        .communicator(comm("u2", 100).with_lrc(Reliability::new(lrc_u).unwrap()))
        .unwrap();
    let r1 = sb.communicator(comm("r1", 500)).unwrap();
    let r2 = sb.communicator(comm("r2", 500)).unwrap();
    let read = |n: &str, s, l| {
        TaskDecl::new(n)
            .reads(s, 0)
            .writes(l, 1)
            .model(FailureModel::Parallel)
            .default_value(Value::Float(0.0))
    };
    let read1 = sb.task(read("read1", s1, l1)).unwrap();
    let read2 = sb.task(read("read2", s2, l2)).unwrap();
    let t1 = sb.task(TaskDecl::new("t1").reads(l1, 1).writes(u1, 4)).unwrap();
    let t2 = sb.task(TaskDecl::new("t2").reads(l2, 1).writes(u2, 4)).unwrap();
    let e1 = sb
        .task(TaskDecl::new("estimate1").reads(l1, 1).reads(u1, 2).writes(r1, 1))
        .unwrap();
    let e2 = sb
        .task(TaskDecl::new("estimate2").reads(l2, 1).reads(u2, 2).writes(r2, 1))
        .unwrap();
    let spec = sb.build().unwrap();

    // Same hosts; larger WCETs (the abstract budget).
    let mut ab = Architecture::builder();
    for name in ["h1", "h2", "h3"] {
        ab.host(logrel_core::HostDecl::new(
            name,
            Reliability::new(0.999).unwrap(),
        ))
        .unwrap();
    }
    for name in ["sen1a", "sen1b", "sen2a", "sen2b"] {
        ab.sensor(logrel_core::SensorDecl::new(
            name,
            Reliability::new(0.999).unwrap(),
        ))
        .unwrap();
    }
    for t in [read1, read2] {
        ab.wcet_all(t, 20).unwrap();
        ab.wctt_all(t, 5).unwrap();
    }
    for t in [t1, t2, e1, e2] {
        ab.wcet_all(t, 40).unwrap();
        ab.wctt_all(t, 5).unwrap();
    }
    let arch = ab.build();

    // Mirror the scenario-1 mapping by task name.
    let mut ib = Implementation::builder();
    for t in spec.task_ids() {
        let name = spec.task(t).name();
        let orig = sys.spec.find_task(name).unwrap();
        ib = ib.assign(t, sys.imp.hosts_of(orig).iter().copied());
    }
    ib = ib
        .bind_sensor(s1, sys.ids.sen1a)
        .bind_sensor(s2, sys.ids.sen2a);
    let imp = ib.build(&spec, &arch).unwrap();
    (spec, arch, imp)
}

#[test]
fn concrete_three_tank_refines_the_abstract_one() {
    let (aspec, aarch, aimp) = abstract_three_tank(0.998);
    let refined = SystemRef::new(&aspec, &aarch, &aimp);
    // The concrete system: tighter write time (u[3]) and smaller WCETs,
    // weaker-or-equal LRCs.
    let concrete =
        ThreeTankSystem::with_options(Scenario::ReplicatedControllers, 0.999, Some(0.99))
            .unwrap();
    let refining = SystemRef::new(&concrete.spec, &concrete.arch, &concrete.imp);
    let kappa = Kappa::by_name(&concrete.spec, &aspec);
    check_refinement(refining, refined, &kappa).unwrap();

    // Prop 2: validate the abstract system once, inherit for the concrete.
    let cert = validate(refined).unwrap();
    let inherited = incremental_validate(refining, refined, &kappa, &cert).unwrap();
    assert!(inherited.verdict.is_reliable());

    // Cross-check: the direct analysis of the concrete system agrees.
    assert!(validate(refining).is_ok());
}

#[test]
fn strengthening_the_lrc_breaks_the_refinement() {
    let (aspec, aarch, aimp) = abstract_three_tank(0.99);
    let refined = SystemRef::new(&aspec, &aarch, &aimp);
    // Concrete demands MORE reliability (0.998 > 0.99): not a refinement.
    let concrete =
        ThreeTankSystem::with_options(Scenario::ReplicatedControllers, 0.999, Some(0.998))
            .unwrap();
    let refining = SystemRef::new(&concrete.spec, &concrete.arch, &concrete.imp);
    let kappa = Kappa::by_name(&concrete.spec, &aspec);
    let err = check_refinement(refining, refined, &kappa).unwrap_err();
    assert!(err.to_string().contains("LRC") || err.to_string().contains("requires"));
}

#[test]
fn changing_the_mapping_breaks_the_refinement() {
    let (aspec, aarch, aimp) = abstract_three_tank(0.998);
    let refined = SystemRef::new(&aspec, &aarch, &aimp);
    // Baseline mapping differs from the abstract scenario-1 mapping.
    let concrete =
        ThreeTankSystem::with_options(Scenario::Baseline, 0.999, Some(0.99)).unwrap();
    let refining = SystemRef::new(&concrete.spec, &concrete.arch, &concrete.imp);
    let kappa = Kappa::by_name(&concrete.spec, &aspec);
    let err = check_refinement(refining, refined, &kappa).unwrap_err();
    assert!(err.to_string().contains("mapped to different hosts"));
}

#[test]
fn refinement_is_reflexive_on_the_three_tank_system() {
    let sys = ThreeTankSystem::new(Scenario::Baseline);
    let sref = SystemRef::new(&sys.spec, &sys.arch, &sys.imp);
    let kappa = Kappa::identity(&sys.spec);
    check_refinement(sref, sref, &kappa).unwrap();
}
