//! Semantic validation: Monte-Carlo simulation agrees with the analytic
//! SRGs (Proposition 1 / SLLN), the §3 memory pathology reproduces, and
//! time-dependent implementations achieve their long-run averages.

use logrel_core::prelude::*;
use logrel_reliability::{compute_srgs, empirical_check, LongRunVerdict};
use logrel_sim::{
    BehaviorMap, ConstantEnvironment, NoFaults, ProbabilisticFaults, SimConfig, Simulation,
};
use logrel_threetank::{Scenario, ThreeTankSystem};

/// E7 core: empirical limit averages of the 3TS communicators converge to
/// the analytic SRGs. Reliabilities are lowered to 0.9 so failures are
/// frequent enough for tight statistics.
#[test]
fn three_tank_simulation_matches_analysis() {
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, 0.9, None).unwrap();
    let report = compute_srgs(&sys.spec, &sys.arch, &sys.imp).unwrap();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors = BehaviorMap::new(); // zero fallbacks suffice
    let mut env = ConstantEnvironment::new(Value::Float(0.3));
    let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
    let out = sim.run(
        &mut behaviors,
        &mut env,
        &mut inj,
        &SimConfig {
            rounds: 30_000,
            seed: 2024,
        },
    );
    let empirical = |comm| {
        // Skip the first round: initial values are reliable by fiat.
        let bits: Vec<bool> = out.trace.abstraction(comm).into_iter().skip(5).collect();
        bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
    };
    // Tree-shaped dependencies (s1, l1, u1): the induction is exact.
    for comm in [sys.ids.s1, sys.ids.l1, sys.ids.u1] {
        let analytic = report.communicator(comm).get();
        let mean = empirical(comm);
        let name = sys.spec.communicator(comm).name();
        assert!(
            (mean - analytic).abs() < 0.01,
            "{name}: empirical {mean} vs analytic {analytic}"
        );
    }
    // Diamond dependency (estimate1 reads l1 AND u1, and u1 depends on
    // l1): the paper's induction multiplies the input SRGs as if
    // independent (0.9 · 0.81 · 0.729 = 0.531441), while the exact
    // correlated probability is λ_e · P(u1 ok) = 0.9 · 0.729 = 0.6561
    // (u1 ok implies l1 ok). The simulation exposes the approximation,
    // which errs on the safe side here.
    let analytic_r1 = report.communicator(sys.ids.r1).get();
    let mean_r1 = empirical(sys.ids.r1);
    assert!((analytic_r1 - 0.531441).abs() < 1e-9);
    assert!((mean_r1 - 0.6561).abs() < 0.01, "r1 empirical {mean_r1}");
    assert!(
        analytic_r1 <= mean_r1,
        "the independence approximation must be conservative for diamonds"
    );
}

/// Persistence subtlety: `u1`/`l1` have period 100 inside a 500-round, so
/// four of five updates persist the single written instance — their
/// reliability abstraction equals the written one, which is exactly what
/// the SRG predicts per *update*. The test above covers it; here we check
/// the update counts line up.
#[test]
fn update_counts_follow_periods() {
    let sys = ThreeTankSystem::new(Scenario::Baseline);
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let out = sim.run(
        &mut BehaviorMap::new(),
        &mut ConstantEnvironment::new(Value::Float(0.0)),
        &mut NoFaults,
        &SimConfig {
            rounds: 10,
            seed: 1,
        },
    );
    assert_eq!(out.trace.update_count(sys.ids.s1), 10); // period 500
    assert_eq!(out.trace.update_count(sys.ids.l1), 50); // period 100
    assert_eq!(out.trace.update_count(sys.ids.u1), 50);
}

/// §3 "Specification with memory": a series-model task reading and writing
/// the same communicator degrades to limit-average 0 — "once ⊥ is written,
/// the value of c is always ⊥ from that instant on".
#[test]
fn memory_cycle_with_series_model_collapses_to_zero() {
    let mut sb = Specification::builder();
    let c = sb
        .communicator(CommunicatorDecl::new("c", ValueType::Float, 10).unwrap())
        .unwrap();
    let t = sb.task(TaskDecl::new("t").reads(c, 0).writes(c, 1)).unwrap();
    let spec = sb.build().unwrap();
    let mut ab = Architecture::builder();
    let h = ab
        .host(HostDecl::new("h", Reliability::new(0.95).unwrap()))
        .unwrap();
    ab.wcet_all(t, 1).unwrap();
    ab.wctt_all(t, 1).unwrap();
    let arch = ab.build();
    let imp: TimeDependentImplementation = Implementation::builder()
        .assign(t, [h])
        .build(&spec, &arch)
        .unwrap()
        .into();

    // The static analysis refuses the cycle...
    assert!(compute_srgs(&spec, &arch, imp.at_iteration(0)).is_err());

    // ...and the simulation shows why: after the first host failure the
    // communicator stays ⊥ forever.
    let sim = Simulation::new(&spec, &arch, &imp);
    let mut behaviors = BehaviorMap::new();
    behaviors.register(t, |i: &[Value]| {
        vec![Value::Float(i[0].as_float().unwrap_or(0.0) + 1.0)]
    });
    let mut inj = ProbabilisticFaults::from_architecture(&arch);
    let out = sim.run(
        &mut behaviors,
        &mut ConstantEnvironment::new(Value::Float(0.0)),
        &mut inj,
        &SimConfig {
            rounds: 5_000,
            seed: 11,
        },
    );
    let bits = out.trace.abstraction(c);
    // Find the first failure; everything after must be false.
    let first_false = bits.iter().position(|&b| !b).expect("some failure occurs");
    assert!(bits[first_false..].iter().all(|&b| !b));
    // The long-run average over a long run is far below the per-step 0.95.
    let tail_mean = logrel_reliability::limit_average(&bits);
    assert!(tail_mean < 0.1, "mean {tail_mean}");
}

/// §3 remedy: with the independent failure model in the cycle, the task
/// recovers using defaults and the long-run average equals λ_t.
#[test]
fn memory_cycle_with_independent_model_recovers() {
    let mut sb = Specification::builder();
    let c = sb
        .communicator(CommunicatorDecl::new("c", ValueType::Float, 10).unwrap())
        .unwrap();
    let t = sb
        .task(
            TaskDecl::new("t")
                .reads(c, 0)
                .writes(c, 1)
                .model(FailureModel::Independent)
                .default_value(Value::Float(0.0)),
        )
        .unwrap();
    let spec = sb.build().unwrap();
    let mut ab = Architecture::builder();
    let h = ab
        .host(HostDecl::new("h", Reliability::new(0.95).unwrap()))
        .unwrap();
    ab.wcet_all(t, 1).unwrap();
    ab.wctt_all(t, 1).unwrap();
    let arch = ab.build();
    let static_imp = Implementation::builder()
        .assign(t, [h])
        .build(&spec, &arch)
        .unwrap();
    // The analysis now succeeds and predicts λ_c = λ_t = 0.95.
    let report = compute_srgs(&spec, &arch, &static_imp).unwrap();
    assert!((report.communicator(c).get() - 0.95).abs() < 1e-12);

    let imp: TimeDependentImplementation = static_imp.into();
    let sim = Simulation::new(&spec, &arch, &imp);
    let mut behaviors = BehaviorMap::new();
    behaviors.register(t, |i: &[Value]| {
        vec![Value::Float(i[0].as_float().unwrap_or(0.0) + 1.0)]
    });
    let mut inj = ProbabilisticFaults::from_architecture(&arch);
    let out = sim.run(
        &mut behaviors,
        &mut ConstantEnvironment::new(Value::Float(0.0)),
        &mut inj,
        &SimConfig {
            rounds: 30_000,
            seed: 5,
        },
    );
    let bits: Vec<bool> = out.trace.abstraction(c).into_iter().skip(1).collect();
    let verdict = empirical_check(&bits, Reliability::new(0.93).unwrap(), 0.999);
    assert_eq!(verdict, LongRunVerdict::Meets);
    let mean = logrel_reliability::limit_average(&bits);
    assert!((mean - 0.95).abs() < 0.01, "mean {mean}");
}

/// §3 "General implementation" (E9): hosts at 0.95/0.85 with LRC 0.9 —
/// both static mappings fail, the alternating time-dependent mapping
/// achieves exactly 0.9 in the long run, confirmed analytically AND by
/// simulation.
#[test]
fn time_dependent_alternation_achieves_the_long_run_average() {
    let mut sb = Specification::builder();
    let s = sb
        .communicator(
            CommunicatorDecl::new("s", ValueType::Float, 10)
                .unwrap()
                .from_sensor(),
        )
        .unwrap();
    let lrc = Reliability::new(0.9).unwrap();
    let c1 = sb
        .communicator(
            CommunicatorDecl::new("c1", ValueType::Float, 10)
                .unwrap()
                .with_lrc(lrc),
        )
        .unwrap();
    let c2 = sb
        .communicator(
            CommunicatorDecl::new("c2", ValueType::Float, 10)
                .unwrap()
                .with_lrc(lrc),
        )
        .unwrap();
    let t1 = sb.task(TaskDecl::new("t1").reads(s, 0).writes(c1, 1)).unwrap();
    let t2 = sb.task(TaskDecl::new("t2").reads(s, 0).writes(c2, 1)).unwrap();
    let spec = sb.build().unwrap();
    let mut ab = Architecture::builder();
    let h1 = ab
        .host(HostDecl::new("h1", Reliability::new(0.95).unwrap()))
        .unwrap();
    let h2 = ab
        .host(HostDecl::new("h2", Reliability::new(0.85).unwrap()))
        .unwrap();
    let sen = ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
    for t in [t1, t2] {
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
    }
    let arch = ab.build();
    let phase_a = Implementation::builder()
        .assign(t1, [h1])
        .assign(t2, [h2])
        .bind_sensor(s, sen)
        .build(&spec, &arch)
        .unwrap();
    let phase_b = phase_a
        .with_assignment(t1, [h2])
        .with_assignment(t2, [h1]);

    // Both static mappings violate one LRC each.
    assert!(!logrel_reliability::check(&spec, &arch, &phase_a)
        .unwrap()
        .is_reliable());
    assert!(!logrel_reliability::check(&spec, &arch, &phase_b)
        .unwrap()
        .is_reliable());

    // The alternating mapping is reliable (long-run 0.9 each).
    let td = TimeDependentImplementation::new(vec![phase_a, phase_b]).unwrap();
    let verdict = logrel_reliability::check_time_dependent(&spec, &arch, &td).unwrap();
    assert!(verdict.is_reliable());

    // Simulation agrees.
    let sim = Simulation::new(&spec, &arch, &td);
    let mut inj = ProbabilisticFaults::from_architecture(&arch);
    let out = sim.run(
        &mut BehaviorMap::new(),
        &mut ConstantEnvironment::new(Value::Float(1.0)),
        &mut inj,
        &SimConfig {
            rounds: 40_000,
            seed: 77,
        },
    );
    for c in [c1, c2] {
        let bits: Vec<bool> = out.trace.abstraction(c).into_iter().skip(1).collect();
        let mean = logrel_reliability::limit_average(&bits);
        assert!((mean - 0.9).abs() < 0.01, "mean {mean}");
    }
}
