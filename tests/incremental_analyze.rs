//! Property suite for the incremental analysis engine's differential
//! guarantee: warm (`--against` a prior database) analysis output is
//! byte-identical to cold analysis after *every* step of a random edit
//! chain — renames, period changes, replica additions/removals and LRC
//! tightening/loosening — plus pinned refinement-reuse behaviour for
//! reliability-weakening edits.

use logrel_obs::NoopSink;
use logrel_query::{analyze_source, QueryDb};
use proptest::prelude::*;

/// The parameter space the edit chain walks. Specs are *rendered* from
/// this configuration rather than patched textually, so every mutation is
/// well-formed by construction and mutations compose in any order.
#[derive(Debug, Clone, PartialEq)]
struct SpecCfg {
    /// Rename target: the controller task is `ctrl{task_tag}`.
    task_tag: u32,
    /// Shared communicator/mode period.
    period: u64,
    /// Replication degree of the controller (1..=3 hosts).
    replicas: usize,
    /// Index into [`LRC_TABLE`] for communicator `u`.
    lrc_idx: usize,
}

/// Loosest to tightest; tighten/loosen move along this table.
const LRC_TABLE: [&str; 4] = ["0.8", "0.9", "0.95", "0.99"];
const PERIOD_TABLE: [u64; 3] = [5, 10, 20];
const HOSTS: [&str; 3] = ["h1", "h2", "h3"];

impl Default for SpecCfg {
    fn default() -> Self {
        SpecCfg { task_tag: 0, period: 10, replicas: 2, lrc_idx: 1 }
    }
}

fn render(cfg: &SpecCfg) -> String {
    let task = format!("ctrl{}", cfg.task_tag);
    let lrc = LRC_TABLE[cfg.lrc_idx];
    let p = cfg.period;
    let mut out = String::new();
    out.push_str(&format!(
        "program demo {{\n    communicator s : float period {p} sensor;\n    communicator u : float period {p} lrc {lrc};\n"
    ));
    out.push_str(&format!(
        "    module m {{\n        start mode main period {p} {{\n            invoke {task} reads s[0] writes u[1];\n        }}\n    }}\n"
    ));
    out.push_str("    architecture {\n");
    for (i, h) in HOSTS.iter().enumerate() {
        out.push_str(&format!("        host {h} reliability 0.9{};\n", 9 - i));
    }
    out.push_str("        sensor sn reliability 0.999;\n");
    for h in HOSTS {
        out.push_str(&format!("        wcet {task} on {h} 2;\n"));
        out.push_str(&format!("        wctt {task} on {h} 1;\n"));
    }
    out.push_str("    }\n    map {\n");
    let assigned: Vec<&str> = HOSTS[..cfg.replicas].to_vec();
    out.push_str(&format!("        {task} -> {};\n", assigned.join(", ")));
    out.push_str("        bind s -> sn;\n    }\n}\n");
    out
}

/// The mutation kinds named in the edit-sequence requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mutation {
    Rename,
    PeriodChange,
    AddReplica,
    RemoveReplica,
    LrcTighten,
    LrcLoosen,
}

impl Mutation {
    /// Applies the mutation; saturates at the parameter-space edges (a
    /// saturated step regenerates the same source, which exercises the
    /// fully-green path).
    fn apply(self, cfg: &mut SpecCfg) {
        match self {
            Mutation::Rename => cfg.task_tag += 1,
            Mutation::PeriodChange => {
                let i = PERIOD_TABLE.iter().position(|&p| p == cfg.period).unwrap();
                cfg.period = PERIOD_TABLE[(i + 1) % PERIOD_TABLE.len()];
            }
            Mutation::AddReplica => cfg.replicas = (cfg.replicas + 1).min(HOSTS.len()),
            Mutation::RemoveReplica => cfg.replicas = (cfg.replicas - 1).max(1),
            Mutation::LrcTighten => cfg.lrc_idx = (cfg.lrc_idx + 1).min(LRC_TABLE.len() - 1),
            Mutation::LrcLoosen => cfg.lrc_idx = cfg.lrc_idx.saturating_sub(1),
        }
    }
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    (0usize..6).prop_map(|i| {
        [
            Mutation::Rename,
            Mutation::PeriodChange,
            Mutation::AddReplica,
            Mutation::RemoveReplica,
            Mutation::LrcTighten,
            Mutation::LrcLoosen,
        ][i]
    })
}

/// Runs one analysis warm against `db` and once cold, asserting the
/// differential guarantee, and returns the refreshed database.
fn step(source: &str, db: Option<&QueryDb>) -> Result<QueryDb, TestCaseError> {
    let warm = analyze_source(source, "chain.htl", db, &mut NoopSink);
    let cold = analyze_source(source, "chain.htl", None, &mut NoopSink);
    prop_assert_eq!(&warm.stdout, &cold.stdout, "stdout diverged");
    prop_assert_eq!(&warm.stderr, &cold.stderr, "stderr diverged");
    prop_assert_eq!(warm.errors, cold.errors, "error count diverged");
    Ok(warm.db.expect("rendered specs always parse"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random chains of up to 12 mutations: after every step, warm
    /// analysis against the previous step's database is byte-identical
    /// to a cold run on the same source.
    #[test]
    fn edit_chains_preserve_differential_guarantee(
        chain in proptest::collection::vec(mutation_strategy(), 1..13),
    ) {
        let mut cfg = SpecCfg::default();
        let mut db = step(&render(&cfg), None)?;
        for m in chain {
            m.apply(&mut cfg);
            db = step(&render(&cfg), Some(&db))?;
        }
    }
}

/// Removing a replica weakens the delivered reliability, so the edited
/// spec cannot refine the cached parent (its mapping differs): refinement
/// reuse must be refused and the schedulability cone recomputed — while
/// untouched queries still hit.
#[test]
fn replica_removal_fails_refinement_reuse_and_recomputes() {
    let parent = SpecCfg::default();
    let cold = analyze_source(&render(&parent), "chain.htl", None, &mut NoopSink);
    let db = cold.db.unwrap();

    let mut weakened = parent;
    Mutation::RemoveReplica.apply(&mut weakened);
    let src = render(&weakened);
    let warm = analyze_source(&src, "chain.htl", Some(&db), &mut NoopSink);
    let fresh = analyze_source(&src, "chain.htl", None, &mut NoopSink);
    assert_eq!(warm.stdout, fresh.stdout);
    assert_eq!(warm.stderr, fresh.stderr);
    assert_eq!(warm.stats.refine_reuses, 0, "weakened spec must not reuse by refinement");
    assert!(warm.stats.recomputes >= 1);
    assert!(warm.stats.hits > 0, "untouched queries should stay green");
    assert!(warm.stats.recomputes < warm.stats.queries);
}

/// The acceptance-criterion counter shape for a single-task metric edit:
/// the dirtied cone is exactly the schedulability query, answered by
/// refinement reuse (a WCET decrease refines the parent), so the warm run
/// recomputes nothing.
#[test]
fn single_task_wcet_edit_reruns_only_dirty_cone() {
    let base = render(&SpecCfg::default());
    let cold = analyze_source(&base, "chain.htl", None, &mut NoopSink);
    let db = cold.db.unwrap();

    let edited = base.replace("wcet ctrl0 on h1 2;", "wcet ctrl0 on h1 1;");
    assert_ne!(edited, base);
    let warm = analyze_source(&edited, "chain.htl", Some(&db), &mut NoopSink);
    let fresh = analyze_source(&edited, "chain.htl", None, &mut NoopSink);
    assert_eq!(warm.stdout, fresh.stdout);
    assert_eq!(warm.stderr, fresh.stderr);
    assert!(warm.stats.hits > 0);
    assert!(warm.stats.recomputes < warm.stats.queries);
    assert_eq!(warm.stats.refine_reuses, 1);
    assert_eq!(warm.stats.recomputes, 0);
}
