//! Graceful degradation end to end: a value-corrupting (non-fail-silent)
//! replica poisons a majority vote, the online monitor raises the LRC
//! alarm, and the scripted [`Degrader`] response restores service —
//! either by dropping the bad replica from the vote (3TS and
//! steer-by-wire) or by switching a modal E-machine program into a
//! degraded-rate mode.

use logrel_core::{HostId, SensorId, Tick, TimeDependentImplementation, Value};
use logrel_emachine::{generate_modal, DriverOp, EMachine, ModalMode, ModeSwitch, Platform};
use logrel_lang::{elaborate_modes, parse};
use logrel_sim::{
    AlarmKind, BehaviorMap, ConstantEnvironment, DegradationRule, Degrader, FaultInjector,
    LrcMonitor, MonitorConfig, NoFaults, Response, Scenario, ScenarioInjector, SimConfig,
    SimOutput, Simulation, Supervisor, VotingStrategy,
};
use logrel_steerbywire::behaviors::build_behaviors as build_steer_behaviors;
use logrel_steerbywire::{SteerScenario, SteerSystem, VehicleParams};
use logrel_threetank::behaviors::build_behaviors as build_tank_behaviors;
use logrel_threetank::{PlantParams, Scenario as Deployment, ThreeTankSystem};
use rand::rngs::StdRng;

const GARBAGE: f64 = 1.0e9;

/// A non-fail-silent host: always up, always delivering, but replacing
/// every output with garbage — the failure mode the paper's fail-silence
/// assumption (its ref [2]) rules out, and [`VotingStrategy::Majority`]
/// plus replica-dropping tolerates.
struct BadHost {
    host: HostId,
}

impl FaultInjector for BadHost {
    fn host_ok(&mut self, _host: HostId, _now: Tick, _rng: &mut StdRng) -> bool {
        true
    }
    fn sensor_ok(&mut self, _sensor: SensorId, _now: Tick, _rng: &mut StdRng) -> bool {
        true
    }
    fn broadcast_ok(&mut self, _host: HostId, _now: Tick, _rng: &mut StdRng) -> bool {
        true
    }
    fn corrupt(&mut self, host: HostId, _now: Tick, outputs: &mut [Value], _rng: &mut StdRng) {
        if host == self.host {
            for o in outputs {
                *o = Value::Float(GARBAGE);
            }
        }
    }
}

/// Reliable updates of `comm` strictly after `from`, as (total, reliable).
fn reliability_after(out: &SimOutput, comm: logrel_core::CommunicatorId, from: u64) -> (u64, u64) {
    let mut total = 0;
    let mut reliable = 0;
    for &(t, v) in out.trace.values(comm) {
        if t.as_u64() >= from {
            total += 1;
            reliable += u64::from(v.is_reliable());
        }
    }
    (total, reliable)
}

/// 3TS with replicated controllers and a garbage-emitting h1: majority
/// voting blanks u1/u2 until the degrader drops h1's replicas, after
/// which h2 alone carries both controllers and the alarms clear.
#[test]
fn three_tank_drops_the_corrupting_replica() {
    let sys =
        ThreeTankSystem::with_options(Deployment::ReplicatedControllers, 1.0, Some(0.999))
            .unwrap();
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let mut sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    sim.set_voting(VotingStrategy::Majority);
    let config = SimConfig {
        rounds: 100,
        seed: 21,
    };

    let run = |supervisor: &mut dyn Supervisor| -> SimOutput {
        let mut behaviors: BehaviorMap = build_tank_behaviors(&sys, &params);
        let mut env = ConstantEnvironment::new(Value::Float(0.25));
        let mut inj = BadHost { host: sys.ids.h1 };
        sim.run_supervised(&mut behaviors, &mut env, &mut inj, supervisor, &config)
    };

    // Counterfactual: without a response the vote never recovers.
    let mut monitor = LrcMonitor::new(&sys.spec, MonitorConfig::default());
    let poisoned = run(&mut monitor);
    let (total, reliable) = reliability_after(&poisoned, sys.ids.u1, 1_000);
    assert_eq!(reliable, 0, "2-replica majority with one liar is ⊥: {total}");
    assert!(monitor.active(sys.ids.u1), "the alarm never clears");

    // With the degrader: both controllers drop their h1 replica at the
    // first confident alarm and service resumes on h2 alone.
    let mut degrader = Degrader::new(
        LrcMonitor::new(&sys.spec, MonitorConfig::default()),
        vec![
            DegradationRule {
                comm: sys.ids.u1,
                response: Response::DropReplica {
                    task: sys.ids.t1,
                    host: sys.ids.h1,
                },
            },
            DegradationRule {
                comm: sys.ids.u2,
                response: Response::DropReplica {
                    task: sys.ids.t2,
                    host: sys.ids.h1,
                },
            },
        ],
    );
    let recovered = run(&mut degrader);
    let engaged = degrader.engaged_at(0).expect("u1 rule engaged").as_u64();
    assert!(engaged < 2_000, "engagement is prompt: {engaged}");
    assert!(degrader.engaged_at(1).is_some());
    let (total, reliable) = reliability_after(&recovered, sys.ids.u1, 2_000);
    assert_eq!(reliable, total, "u1 is fully reliable after the drop");
    // ...and carries h2's genuine value, not the garbage.
    for &(t, v) in recovered.trace.values(sys.ids.u1) {
        if t.as_u64() >= 2_000 {
            assert!(v.as_float().unwrap().abs() < GARBAGE / 2.0);
        }
    }
    let u1_alarms: Vec<AlarmKind> = degrader
        .monitor()
        .alarms()
        .iter()
        .filter(|a| a.comm == sys.ids.u1)
        .map(|a| a.kind)
        .collect();
    assert_eq!(u1_alarms, vec![AlarmKind::Raised, AlarmKind::Cleared]);
    assert!(!degrader.monitor().active(sys.ids.u1));
}

/// Steer-by-wire: a garbage-emitting ecu_a poisons `filtered` and `cmd`
/// under majority voting; dropping its `filter` and `steer` replicas
/// restores the steering command LRC.
#[test]
fn steer_by_wire_drops_the_corrupting_ecu() {
    let sys = SteerSystem::new(SteerScenario::ReplicatedEcus, Some(0.99)).unwrap();
    let params = VehicleParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let mut sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    sim.set_voting(VotingStrategy::Majority);
    let config = SimConfig {
        rounds: 200,
        seed: 33,
    };

    let run = |supervisor: &mut dyn Supervisor| -> SimOutput {
        let mut behaviors: BehaviorMap = build_steer_behaviors(&sys, &params);
        let mut env = ConstantEnvironment::new(Value::Float(0.1));
        let mut inj = BadHost { host: sys.ids.ecu_a };
        sim.run_supervised(&mut behaviors, &mut env, &mut inj, supervisor, &config)
    };

    let mut monitor = LrcMonitor::new(&sys.spec, MonitorConfig::default());
    let poisoned = run(&mut monitor);
    let (_, reliable) = reliability_after(&poisoned, sys.ids.cmd, 100);
    assert_eq!(reliable, 0, "cmd is ⊥ while ecu_a lies");
    assert!(monitor.active(sys.ids.cmd));

    let rules = vec![
        DegradationRule {
            comm: sys.ids.cmd,
            response: Response::DropReplica {
                task: sys.ids.filter,
                host: sys.ids.ecu_a,
            },
        },
        DegradationRule {
            comm: sys.ids.cmd,
            response: Response::DropReplica {
                task: sys.ids.steer,
                host: sys.ids.ecu_a,
            },
        },
    ];
    let mut degrader =
        Degrader::new(LrcMonitor::new(&sys.spec, MonitorConfig::default()), rules);
    let recovered = run(&mut degrader);
    let engaged = degrader.engaged_at(0).expect("rules engaged").as_u64();
    assert_eq!(degrader.engaged_at(1), degrader.engaged_at(0));
    assert!(engaged < 500, "a 0.99 LRC alarm fires within a few updates");
    let (total, reliable) = reliability_after(&recovered, sys.ids.cmd, 1_000);
    assert!(total > 0 && reliable == total, "cmd recovered: {reliable}/{total}");
    let kinds: Vec<AlarmKind> = degrader
        .monitor()
        .alarms()
        .iter()
        .filter(|a| a.comm == sys.ids.cmd)
        .map(|a| a.kind)
        .collect();
    assert_eq!(kinds, vec![AlarmKind::Raised, AlarmKind::Cleared]);
}

/// A two-mode HTL program whose degraded mode consolidates the two
/// normal-rate tasks into one degraded-rate task (same written set, as
/// modal elaboration requires).
const MODAL_SRC: &str = r#"
program degradable {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    communicator d : float period 10;
    module m {
        start mode normal period 10 {
            invoke fast reads s[0] writes u[1];
            invoke aux reads s[0] writes d[1];
            switch overload -> degraded;
        }
        mode degraded period 10 {
            invoke slow reads s[0] writes u[1], d[1];
            switch recovered -> normal;
        }
    }
    architecture {
        host h1 reliability 0.999;
        sensor sn reliability 0.999;
        wcet fast on h1 2;
        wctt fast on h1 1;
        wcet aux on h1 2;
        wctt aux on h1 1;
        wcet slow on h1 4;
        wctt slow on h1 1;
    }
    map {
        fast -> h1;
        aux -> h1;
        slow -> h1;
        bind s -> sn;
    }
}
"#;

/// Replays the degrader's recorded mode events into a modal E-machine.
struct RecordedEvents {
    events: Vec<(Tick, u32)>,
    releases: Vec<(Tick, logrel_core::TaskId)>,
}

impl Platform for RecordedEvents {
    fn call(&mut self, _h: HostId, _op: DriverOp, _now: Tick) {}
    fn release(&mut self, _h: HostId, task: logrel_core::TaskId, now: Tick) {
        self.releases.push((now, task));
    }
    fn event(&mut self, event: u32, now: Tick) -> bool {
        self.events
            .iter()
            .any(|&(at, ev)| ev == event && now >= at)
    }
}

/// End to end: a burst-loss outage violates the LRC of `u`, the degrader
/// emits the `overload` mode event, and feeding that event to the modal
/// E-machine switches the program into its degraded-rate mode at the next
/// round boundary (observable as one release per round instead of two).
#[test]
fn lrc_alarm_switches_the_modal_program_to_the_degraded_mode() {
    let modal = elaborate_modes(&parse(MODAL_SRC).unwrap()).unwrap();
    assert_eq!(modal.modes[0].name, "normal");
    let spec = &modal.modes[0].spec;
    let u = spec.find_communicator("u").unwrap();

    // --- detection: simulate the normal mode through a broadcast burst.
    let scn = Scenario::parse("burst from=200 until=400 enter=1 exit=0 loss=1").unwrap();
    let imp = TimeDependentImplementation::from(modal.modes[0].imp.clone());
    let sim = Simulation::new(spec, &modal.arch, &imp);
    let mut inj =
        ScenarioInjector::new(NoFaults, &scn, modal.arch.host_count(), spec.communicator_count())
            .unwrap();
    // `overload` is switch 0 in declaration order.
    let mut degrader = Degrader::new(
        LrcMonitor::new(spec, MonitorConfig::default()),
        vec![DegradationRule {
            comm: u,
            response: Response::ModeSwitch { event: 0 },
        }],
    );
    sim.run_supervised(
        &mut BehaviorMap::new(),
        &mut ConstantEnvironment::new(Value::Float(1.0)),
        &mut inj,
        &mut degrader,
        &SimConfig {
            rounds: 60,
            seed: 3,
        },
    );
    let events = degrader.mode_events().to_vec();
    assert_eq!(events.len(), 1, "one mode switch event: {events:?}");
    assert_eq!(events[0].1, 0);
    let alarm_at = events[0].0.as_u64();
    assert!(
        (200..400).contains(&alarm_at),
        "the alarm fires inside the burst window: {alarm_at}"
    );

    // --- response: replay the event into the modal E-machine.
    let modes: Vec<ModalMode<'_>> = modal
        .modes
        .iter()
        .map(|m| ModalMode {
            name: &m.name,
            spec: &m.spec,
            imp: &m.imp,
        })
        .collect();
    let switches: Vec<ModeSwitch> = modal
        .switches
        .iter()
        .enumerate()
        .map(|(i, (from, _event, to))| ModeSwitch {
            from: *from,
            event: i as u32,
            to: *to,
        })
        .collect();
    let host = HostId::new(0);
    let code = generate_modal(&modes, &switches, host).unwrap();
    let mut platform = RecordedEvents {
        events,
        releases: Vec::new(),
    };
    let mut machine = EMachine::new(code, host);
    machine.run_until(Tick::new(599), &mut platform);

    // Releases per round boundary: 2 (fast + aux) before the switch,
    // 1 (slow) from the first boundary at/after the alarm.
    let switch_boundary = alarm_at.div_ceil(10) * 10;
    for round in 0..60u64 {
        let t = Tick::new(round * 10);
        let n = platform.releases.iter().filter(|&&(at, _)| at == t).count();
        let expected = if t.as_u64() < switch_boundary { 2 } else { 1 };
        assert_eq!(n, expected, "releases at round boundary {t:?}");
    }
}
