//! Golden-file tests for the lint pass: every defective HTL program in
//! `tests/assets/*.htl` is linted and the rendered diagnostics are compared
//! byte-for-byte against the sibling `*.expected` file.
//!
//! Regenerate the expectations after an intentional change with
//! `UPDATE_EXPECT=1 cargo test --test lint_golden`.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/assets")
}

fn rendered(path: &Path) -> String {
    let source = fs::read_to_string(path).unwrap();
    let name = path.file_name().unwrap().to_str().unwrap();
    let mut out = String::new();
    for d in logrel::lint::lint_source(&source) {
        out.push_str(&d.render(name));
        out.push('\n');
    }
    out
}

fn corpus() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("htl"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_matches_expected_diagnostics() {
    let update = std::env::var_os("UPDATE_EXPECT").is_some();
    let files = corpus();
    assert!(files.len() >= 10, "corpus too small: {} files", files.len());
    for path in &files {
        let got = rendered(path);
        assert!(
            !got.is_empty(),
            "{} is part of the defect corpus but lints clean",
            path.display()
        );
        let expected_path = path.with_extension("expected");
        if update {
            fs::write(&expected_path, &got).unwrap();
        } else {
            let expected = fs::read_to_string(&expected_path)
                .unwrap_or_else(|_| panic!("missing {}", expected_path.display()));
            assert_eq!(
                got,
                expected,
                "diagnostics changed for {} (set UPDATE_EXPECT=1 to regenerate)",
                path.display()
            );
        }
    }
}

#[test]
fn corpus_exercises_many_distinct_codes() {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for path in corpus() {
        for line in rendered(&path).lines() {
            let code = line.split(':').next().unwrap_or("");
            if code.len() == 4 && (code.starts_with('L') || code.starts_with('E')) {
                seen.insert(code.to_owned());
            }
        }
    }
    assert!(
        seen.len() >= 7,
        "expected at least 7 distinct diagnostic codes, got {seen:?}"
    );
}

#[test]
fn shipped_assets_lint_without_errors() {
    // The shipped example specifications must stay free of error-severity
    // findings (warnings such as an unbound backup sensor are fine).
    for name in ["three_tank.htl", "steer_by_wire.htl"] {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("assets").join(name);
        let source = fs::read_to_string(&path).unwrap();
        let errors: Vec<_> = logrel::lint::lint_source(&source)
            .into_iter()
            .filter(|d| d.severity == logrel::lint::Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{name}: {errors:?}");
    }
}
