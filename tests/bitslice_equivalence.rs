//! Differential tests of the bit-sliced kernel: every lane of
//! `Simulation::run_bitsliced` must be bit-identical to the scalar
//! `Simulation::run` of the same seed, injector and environment — under
//! every scenario event kind (crash/rejoin, flaky windows, GE bursts,
//! stuck sensors, unplug, common-cause groups, partitions, Weibull
//! wear-out, adaptive adversaries), under value corruption (the slow
//! voting path), on the 3TS and steer-by-wire systems, and on randomly
//! generated pipeline systems.

use logrel_core::prelude::*;
use logrel_core::TimeDependentImplementation;
use logrel_sim::bitslice::LaneContext;
use logrel_sim::{
    BehaviorMap, ConstantEnvironment, CorruptingFaults, HostSet, ProbabilisticFaults, Scenario,
    ScenarioEnvironment, ScenarioEvent, ScenarioInjector, SimConfig, SimOutput, Simulation,
    UnplugAt, VotingStrategy,
};
use logrel_steerbywire::{SteerScenario, SteerSystem};
use logrel_threetank::behaviors::build_behaviors;
use logrel_threetank::{PlantParams, Scenario as Deployment, ThreeTankSystem};
use proptest::prelude::*;

/// A scenario exercising every event kind at once (3TS ids): crash and
/// rejoin, a flaky window, a stuck sensor, a Gilbert–Elliott burst, a
/// common-cause group, a partition, Weibull wear-out and an adaptive
/// adversary.
fn full_scenario(sys: &ThreeTankSystem) -> Scenario {
    Scenario::from_events(vec![
        ScenarioEvent::Crash {
            host: sys.ids.h1,
            at: Tick::new(20_000),
        },
        ScenarioEvent::Rejoin {
            host: sys.ids.h1,
            at: Tick::new(30_000),
        },
        ScenarioEvent::Flaky {
            host: sys.ids.h2,
            from: Tick::new(0),
            until: Tick::new(40_000),
            up: 0.8,
        },
        ScenarioEvent::StuckSensor {
            comm: sys.ids.s1,
            from: Tick::new(10_000),
            until: Tick::new(15_000),
        },
        ScenarioEvent::Burst {
            from: Tick::new(50_000),
            until: Tick::new(80_000),
            p_enter: 0.05,
            p_exit: 0.2,
            loss: 0.9,
        },
        ScenarioEvent::CommonCause {
            hosts: HostSet::from_hosts([sys.ids.h1, sys.ids.h3]).unwrap(),
            from: Tick::new(45_000),
            until: Tick::new(90_000),
            p: 0.1,
        },
        ScenarioEvent::Partition {
            hosts: HostSet::from_hosts([sys.ids.h2]).unwrap(),
            from: Tick::new(32_000),
            until: Tick::new(44_000),
        },
        ScenarioEvent::Wearout {
            host: sys.ids.h3,
            from: Tick::new(60_000),
            until: Tick::new(100_000),
            shape: 2.0,
            scale: 25_000.0,
        },
        ScenarioEvent::Adversary {
            from: Tick::new(0),
            until: Tick::new(100_000),
            hold: 25,
        },
    ])
    .unwrap()
}

/// 3TS under every scenario event kind and probabilistic inner faults:
/// each extracted lane equals the scalar run of the same seed.
#[test]
fn threetank_lanes_match_scalar_under_full_scenario() {
    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let comms = sys.spec.communicator_count();
    let scn = full_scenario(&sys);
    let rounds = 200;
    let seeds: Vec<u64> = (0..9).map(|i| 0xBEEF + 31 * i).collect();

    let fresh_inj = || {
        ScenarioInjector::new(
            ProbabilisticFaults::from_architecture(&sys.arch),
            &scn,
            sys.arch.host_count(),
            comms,
        )
        .unwrap()
    };
    let fresh_env = || {
        ScenarioEnvironment::new(ConstantEnvironment::new(Value::Float(0.25)), &scn, comms)
    };

    let scalar: Vec<SimOutput> = seeds
        .iter()
        .map(|&seed| {
            let mut behaviors = build_behaviors(&sys, &params);
            sim.run(
                &mut behaviors,
                &mut fresh_env(),
                &mut fresh_inj(),
                &SimConfig { rounds, seed },
            )
        })
        .collect();

    let mut behaviors = build_behaviors(&sys, &params);
    let mut lanes: Vec<_> = seeds
        .iter()
        .map(|&seed| LaneContext::plain(seed, fresh_inj(), fresh_env()))
        .collect();
    let packed = sim.run_bitsliced(&mut behaviors, &mut lanes, rounds);

    for (i, expected) in scalar.iter().enumerate() {
        assert_eq!(
            &packed.extract_lane(&sys.spec, i),
            expected,
            "lane {i} diverged from scalar run"
        );
    }
}

/// Steer-by-wire with an ECU unplug (the fifth fault kind): lanes match
/// scalar runs, including the warm-up bookkeeping of the stateful tasks.
#[test]
fn steerbywire_lanes_match_scalar_with_unplug() {
    let sys = SteerSystem::new(SteerScenario::ReplicatedEcus, None).unwrap();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let rounds = 150;
    let seeds: Vec<u64> = (0..7).map(|i| 0x51EE + 17 * i).collect();

    let fresh_inj = || {
        UnplugAt::new(
            ProbabilisticFaults::from_architecture(&sys.arch),
            sys.ids.ecu_a,
            Tick::new(4_000),
        )
    };

    let scalar: Vec<SimOutput> = seeds
        .iter()
        .map(|&seed| {
            let mut behaviors = BehaviorMap::default();
            sim.run(
                &mut behaviors,
                &mut ConstantEnvironment::new(Value::Float(0.1)),
                &mut fresh_inj(),
                &SimConfig { rounds, seed },
            )
        })
        .collect();

    let mut behaviors = BehaviorMap::default();
    let mut lanes: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            LaneContext::plain(seed, fresh_inj(), ConstantEnvironment::new(Value::Float(0.1)))
        })
        .collect();
    let packed = sim.run_bitsliced(&mut behaviors, &mut lanes, rounds);

    for (i, expected) in scalar.iter().enumerate() {
        assert_eq!(
            &packed.extract_lane(&sys.spec, i),
            expected,
            "lane {i} diverged from scalar run"
        );
    }
}

/// Value corruption forces the slow (materialized-replicas) voting path;
/// with `Majority` voting each lane must still replay its scalar run.
#[test]
fn corrupting_majority_voting_matches_scalar() {
    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let mut sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    sim.set_voting(VotingStrategy::Majority);
    let rounds = 120;
    let seeds: Vec<u64> = (0..6).map(|i| 0xC0DE + 7 * i).collect();
    let fresh_inj = || CorruptingFaults::new(0.2, 9_999.0);

    let scalar: Vec<SimOutput> = seeds
        .iter()
        .map(|&seed| {
            let mut behaviors = build_behaviors(&sys, &params);
            sim.run(
                &mut behaviors,
                &mut ConstantEnvironment::new(Value::Float(0.25)),
                &mut fresh_inj(),
                &SimConfig { rounds, seed },
            )
        })
        .collect();

    let mut behaviors = build_behaviors(&sys, &params);
    let mut lanes: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            LaneContext::plain(
                seed,
                fresh_inj(),
                ConstantEnvironment::new(Value::Float(0.25)),
            )
        })
        .collect();
    let packed = sim.run_bitsliced(&mut behaviors, &mut lanes, rounds);

    for (i, expected) in scalar.iter().enumerate() {
        assert_eq!(
            &packed.extract_lane(&sys.spec, i),
            expected,
            "lane {i} diverged from scalar run under corruption"
        );
    }
}

/// A full 64-lane pack (the widest mask, exercising the `u64::MAX`
/// all-lanes mask) matches scalar lane by lane.
#[test]
fn full_64_lane_pack_matches_scalar() {
    let sys = ThreeTankSystem::new(Deployment::Baseline);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let rounds = 40;
    let seeds: Vec<u64> = (0..64).map(|i| 0xACE + i).collect();
    let fresh_inj = || ProbabilisticFaults::from_architecture(&sys.arch);

    let mut behaviors = build_behaviors(&sys, &params);
    let mut lanes: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            LaneContext::plain(
                seed,
                fresh_inj(),
                ConstantEnvironment::new(Value::Float(0.25)),
            )
        })
        .collect();
    let packed = sim.run_bitsliced(&mut behaviors, &mut lanes, rounds);

    for (i, &seed) in seeds.iter().enumerate() {
        let mut behaviors = build_behaviors(&sys, &params);
        let expected = sim.run(
            &mut behaviors,
            &mut ConstantEnvironment::new(Value::Float(0.25)),
            &mut fresh_inj(),
            &SimConfig { rounds, seed },
        );
        assert_eq!(
            packed.extract_lane(&sys.spec, i),
            expected,
            "lane {i} diverged at full width"
        );
    }
}

/// A randomly parameterised linear pipeline (as in `model_properties`).
#[derive(Debug, Clone)]
struct Pipeline {
    stage_rels: Vec<f64>,
    sensor_rel: f64,
}

fn pipeline_strategy() -> impl Strategy<Value = Pipeline> {
    (proptest::collection::vec(0.5f64..1.0, 1..5), 0.5f64..1.0).prop_map(
        |(stage_rels, sensor_rel)| Pipeline {
            stage_rels,
            sensor_rel,
        },
    )
}

fn build(p: &Pipeline) -> (Specification, Architecture, Implementation) {
    let n = p.stage_rels.len();
    let mut sb = Specification::builder();
    let mut comms = Vec::new();
    comms.push(
        sb.communicator(
            CommunicatorDecl::new("c0", ValueType::Float, 10)
                .unwrap()
                .from_sensor(),
        )
        .unwrap(),
    );
    for i in 1..=n {
        comms.push(
            sb.communicator(CommunicatorDecl::new(format!("c{i}"), ValueType::Float, 10).unwrap())
                .unwrap(),
        );
    }
    let mut tasks = Vec::new();
    for i in 0..n {
        tasks.push(
            sb.task(
                TaskDecl::new(format!("t{i}"))
                    .reads(comms[i], i as u64)
                    .writes(comms[i + 1], i as u64 + 1),
            )
            .unwrap(),
        );
    }
    let spec = sb.build().unwrap();

    let mut ab = Architecture::builder();
    let mut hosts = Vec::new();
    for (i, &rel) in p.stage_rels.iter().enumerate() {
        hosts.push(
            ab.host(HostDecl::new(
                format!("h{i}"),
                Reliability::new(rel).unwrap(),
            ))
            .unwrap(),
        );
    }
    let sen = ab
        .sensor(SensorDecl::new(
            "sen",
            Reliability::new(p.sensor_rel).unwrap(),
        ))
        .unwrap();
    for &t in &tasks {
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
    }
    let arch = ab.build();

    let mut ib = Implementation::builder().bind_sensor(comms[0], sen);
    for (i, &t) in tasks.iter().enumerate() {
        ib = ib.assign(t, [hosts[i]]);
    }
    let imp = ib.build(&spec, &arch).unwrap();
    (spec, arch, imp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random pipelines, seeds and lane counts: every lane equals its
    /// scalar run (default behaviors — type-zero outputs).
    #[test]
    fn random_pipelines_match_scalar(
        p in pipeline_strategy(),
        base_seed in 0u64..u64::MAX / 2,
        width in 1usize..11,
    ) {
        let (spec, arch, imp) = build(&p);
        let tdi = TimeDependentImplementation::from(imp);
        let sim = Simulation::new(&spec, &arch, &tdi);
        let rounds = 30;
        let fresh_inj = || ProbabilisticFaults::from_architecture(&arch);

        let mut behaviors = BehaviorMap::default();
        let mut lanes: Vec<_> = (0..width)
            .map(|i| {
                LaneContext::plain(
                    base_seed + i as u64,
                    fresh_inj(),
                    ConstantEnvironment::new(Value::Float(1.5)),
                )
            })
            .collect();
        let packed = sim.run_bitsliced(&mut behaviors, &mut lanes, rounds);

        for i in 0..width {
            let mut behaviors = BehaviorMap::default();
            let expected = sim.run(
                &mut behaviors,
                &mut ConstantEnvironment::new(Value::Float(1.5)),
                &mut fresh_inj(),
                &SimConfig { rounds, seed: base_seed + i as u64 },
            );
            prop_assert_eq!(
                packed.extract_lane(&spec, i),
                expected,
                "lane {} diverged",
                i
            );
        }
    }
}

/// Campaign-level equivalence with a replication count that is not a
/// multiple of the lane width: 70 replications pack into one full
/// 64-lane word plus a 6-lane tail (and, at width 16, four full words
/// plus the same tail). Every packing must produce the byte-identical
/// report the scalar path does, at any thread count.
#[test]
fn campaign_tail_packing_matches_scalar() {
    use logrel_sim::{
        run_campaign, BatchConfig, CampaignConfig, LaneMode, MonitorConfig, ReplicationContext,
    };

    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let scn = Scenario::from_events(vec![
        ScenarioEvent::Crash {
            host: sys.ids.h1,
            at: Tick::new(5_000),
        },
        ScenarioEvent::Rejoin {
            host: sys.ids.h1,
            at: Tick::new(10_000),
        },
    ])
    .unwrap();

    let run = |threads: usize, lanes: LaneMode| {
        let config = CampaignConfig {
            batch: BatchConfig {
                replications: 70,
                rounds: 60,
                base_seed: 0x7A11,
                threads,
            },
            monitor: MonitorConfig::default(),
            lanes,
        };
        run_campaign(
            &sim,
            &sys.spec,
            &scn,
            sys.arch.host_count(),
            &config,
            |_rep| ReplicationContext {
                behaviors: BehaviorMap::default(),
                environment: Box::new(ConstantEnvironment::new(Value::Float(0.25))),
                injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
            },
            &[],
        )
        .unwrap()
    };

    let scalar = run(1, LaneMode::Off);
    assert_eq!(scalar, run(1, LaneMode::Auto));
    assert_eq!(scalar, run(4, LaneMode::Auto));
    assert_eq!(scalar, run(2, LaneMode::Width(16)));
    assert_eq!(scalar, run(3, LaneMode::Off));
}
