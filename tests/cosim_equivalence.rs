//! The strongest code-generator check: executing the *generated E-code*
//! (one E-machine per host, independent platform implementation)
//! reproduces the direct kernel's trace **bit for bit**, including under
//! random fault injection with the same seed — on the full three-tank
//! system.

use logrel_core::{TimeDependentImplementation, Value};
use logrel_sim::cosim::{run_cosim, CosimParams};
use logrel_sim::{
    BehaviorMap, ConstantEnvironment, NoFaults, ProbabilisticFaults, SimConfig, Simulation,
    VotingStrategy,
};
use logrel_threetank::{Scenario, ThreeTankSystem};

fn compare(scenario: Scenario, host_rel: f64, rounds: u64, seed: u64, faults: bool) {
    let sys = ThreeTankSystem::with_options(scenario, host_rel, None).expect("valid");
    let td = TimeDependentImplementation::from(sys.imp.clone());

    // Kernel run.
    let sim = Simulation::new(&sys.spec, &sys.arch, &td);
    let mut behaviors = BehaviorMap::new();
    let mut env = ConstantEnvironment::new(Value::Float(0.3));
    let kernel_trace = if faults {
        let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
        sim.run(
            &mut behaviors,
            &mut env,
            &mut inj,
            &SimConfig { rounds, seed },
        )
        .trace
    } else {
        sim.run(
            &mut behaviors,
            &mut env,
            &mut NoFaults,
            &SimConfig { rounds, seed },
        )
        .trace
    };

    // E-code-driven run with identical inputs.
    let mut behaviors = BehaviorMap::new();
    let mut env = ConstantEnvironment::new(Value::Float(0.3));
    let cosim_trace = if faults {
        let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
        run_cosim(
            &sys.spec,
            &sys.imp,
            &mut behaviors,
            &mut env,
            &mut inj,
            sys.arch.host_ids(),
            CosimParams {
                rounds,
                seed,
                voting: VotingStrategy::AnyReliable,
            },
        )
    } else {
        run_cosim(
            &sys.spec,
            &sys.imp,
            &mut behaviors,
            &mut env,
            &mut NoFaults,
            sys.arch.host_ids(),
            CosimParams {
                rounds,
                seed,
                voting: VotingStrategy::AnyReliable,
            },
        )
    };

    for c in sys.spec.communicator_ids() {
        assert_eq!(
            kernel_trace.values(c),
            cosim_trace.values(c),
            "{scenario:?} faults={faults}: divergence on `{}`",
            sys.spec.communicator(c).name()
        );
    }
}

#[test]
fn fault_free_traces_are_identical() {
    compare(Scenario::Baseline, 0.999, 20, 7, false);
    compare(Scenario::ReplicatedControllers, 0.999, 20, 7, false);
    compare(Scenario::ReplicatedSensors, 0.999, 20, 7, false);
}

#[test]
fn fault_injected_traces_are_bit_identical_for_equal_seeds() {
    // Low reliability so faults actually occur within the horizon.
    for seed in [1u64, 2, 3, 99] {
        compare(Scenario::Baseline, 0.8, 400, seed, true);
    }
    compare(Scenario::ReplicatedControllers, 0.8, 400, 11, true);
    compare(Scenario::ReplicatedSensors, 0.8, 400, 12, true);
}
