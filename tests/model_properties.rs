//! Property-based tests over randomly generated pipeline systems:
//!
//! * the SRG induction agrees with the equivalent RBD evaluation;
//! * replication is monotone (more replicas never lower any SRG);
//! * greedy synthesis output is reliable whenever it returns;
//! * simulation limit averages converge to the analytic SRGs;
//! * every generated system refines itself.

use logrel_core::prelude::*;
use logrel_refine::{check_refinement, Kappa, SystemRef};
use logrel_reliability::{
    communicator_block, compute_srgs, synthesize, SynthesisOptions,
};
use proptest::prelude::*;

/// A randomly parameterised linear pipeline:
/// `sensor -> c0 -> t1 -> c1 -> … -> tn -> cn` with per-stage host
/// reliabilities.
#[derive(Debug, Clone)]
struct Pipeline {
    stage_rels: Vec<f64>,
    sensor_rel: f64,
}

fn pipeline_strategy() -> impl Strategy<Value = Pipeline> {
    (
        proptest::collection::vec(0.5f64..1.0, 1..5),
        0.5f64..1.0,
    )
        .prop_map(|(stage_rels, sensor_rel)| Pipeline {
            stage_rels,
            sensor_rel,
        })
}

fn build(p: &Pipeline) -> (Specification, Architecture, Implementation) {
    let n = p.stage_rels.len();
    let mut sb = Specification::builder();
    let mut comms = Vec::new();
    comms.push(
        sb.communicator(
            CommunicatorDecl::new("c0", ValueType::Float, 10)
                .unwrap()
                .from_sensor(),
        )
        .unwrap(),
    );
    for i in 1..=n {
        comms.push(
            sb.communicator(CommunicatorDecl::new(format!("c{i}"), ValueType::Float, 10).unwrap())
                .unwrap(),
        );
    }
    let mut tasks = Vec::new();
    for i in 0..n {
        tasks.push(
            sb.task(
                TaskDecl::new(format!("t{i}"))
                    .reads(comms[i], i as u64)
                    .writes(comms[i + 1], i as u64 + 1),
            )
            .unwrap(),
        );
    }
    let spec = sb.build().unwrap();

    let mut ab = Architecture::builder();
    let mut hosts = Vec::new();
    for (i, &rel) in p.stage_rels.iter().enumerate() {
        hosts.push(
            ab.host(HostDecl::new(
                format!("h{i}"),
                Reliability::new(rel).unwrap(),
            ))
            .unwrap(),
        );
    }
    // One spare, very reliable host for synthesis to use.
    let spare = ab
        .host(HostDecl::new("spare", Reliability::new(0.999).unwrap()))
        .unwrap();
    let sen = ab
        .sensor(SensorDecl::new(
            "sen",
            Reliability::new(p.sensor_rel).unwrap(),
        ))
        .unwrap();
    for &t in &tasks {
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
    }
    let arch = ab.build();
    let _ = spare;

    let mut ib = Implementation::builder().bind_sensor(comms[0], sen);
    for (i, &t) in tasks.iter().enumerate() {
        ib = ib.assign(t, [hosts[i]]);
    }
    let imp = ib.build(&spec, &arch).unwrap();
    (spec, arch, imp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn srg_matches_rbd(p in pipeline_strategy()) {
        let (spec, arch, imp) = build(&p);
        let report = compute_srgs(&spec, &arch, &imp).unwrap();
        for c in spec.communicator_ids() {
            let block = communicator_block(&spec, &arch, &imp, c).unwrap();
            prop_assert!(
                (block.reliability().unwrap().get() - report.communicator(c).get()).abs()
                    < 1e-9
            );
        }
        // The final SRG is the product of all stage and sensor
        // reliabilities (series chain).
        let last = CommunicatorId::new(spec.communicator_count() as u32 - 1);
        let expected: f64 = p.stage_rels.iter().product::<f64>() * p.sensor_rel;
        prop_assert!((report.communicator(last).get() - expected).abs() < 1e-9);
    }

    #[test]
    fn replication_is_monotone(p in pipeline_strategy(), stage in 0usize..5) {
        let (spec, arch, imp) = build(&p);
        let stage = stage % p.stage_rels.len();
        let t = TaskId::new(stage as u32);
        let before = compute_srgs(&spec, &arch, &imp).unwrap();
        let mut hosts: Vec<HostId> = imp.hosts_of(t).iter().copied().collect();
        hosts.push(arch.find_host("spare").unwrap());
        let more = imp.with_assignment(t, hosts);
        let after = compute_srgs(&spec, &arch, &more).unwrap();
        for c in spec.communicator_ids() {
            prop_assert!(
                after.communicator(c).get() + 1e-12 >= before.communicator(c).get()
            );
        }
    }

    #[test]
    fn synthesis_output_is_reliable(p in pipeline_strategy(), lrc in 0.5f64..0.95) {
        // Attach the LRC to the last communicator and try to synthesise.
        let n = p.stage_rels.len();
        let mut sb = Specification::builder();
        let c0 = sb
            .communicator(
                CommunicatorDecl::new("c0", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let mut comms = vec![c0];
        for i in 1..=n {
            let mut d = CommunicatorDecl::new(format!("c{i}"), ValueType::Float, 10).unwrap();
            if i == n {
                d = d.with_lrc(Reliability::new(lrc).unwrap());
            }
            comms.push(sb.communicator(d).unwrap());
        }
        let mut tasks = Vec::new();
        for i in 0..n {
            tasks.push(
                sb.task(
                    TaskDecl::new(format!("t{i}"))
                        .reads(comms[i], i as u64)
                        .writes(comms[i + 1], i as u64 + 1),
                )
                .unwrap(),
            );
        }
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let mut hosts = Vec::new();
        for (i, &rel) in p.stage_rels.iter().enumerate() {
            hosts.push(
                ab.host(HostDecl::new(format!("h{i}"), Reliability::new(rel).unwrap()))
                    .unwrap(),
            );
        }
        ab.host(HostDecl::new("spare", Reliability::new(0.999).unwrap()))
            .unwrap();
        let sen = ab
            .sensor(SensorDecl::new("sen", Reliability::new(0.99).unwrap()))
            .unwrap();
        for &t in &tasks {
            ab.wcet_all(t, 1).unwrap();
            ab.wctt_all(t, 1).unwrap();
        }
        let arch = ab.build();
        let mut ib = Implementation::builder().bind_sensor(comms[0], sen);
        for (i, &t) in tasks.iter().enumerate() {
            ib = ib.assign(t, [hosts[i]]);
        }
        let base = ib.build(&spec, &arch).unwrap();
        if let Ok(found) = synthesize(&spec, &arch, &base, &SynthesisOptions::default(), |_| true)
        {
            let verdict = logrel_reliability::check(&spec, &arch, &found).unwrap();
            prop_assert!(verdict.is_reliable());
        }
    }

    #[test]
    fn every_system_refines_itself(p in pipeline_strategy()) {
        let (spec, arch, imp) = build(&p);
        let s = SystemRef::new(&spec, &arch, &imp);
        let kappa = Kappa::identity(&spec);
        prop_assert!(check_refinement(s, s, &kappa).is_ok());
    }

    #[test]
    fn simulation_tracks_analysis(p in pipeline_strategy()) {
        use logrel_sim::{BehaviorMap, ConstantEnvironment, ProbabilisticFaults, SimConfig, Simulation};
        let (spec, arch, imp) = build(&p);
        let report = compute_srgs(&spec, &arch, &imp).unwrap();
        let td = TimeDependentImplementation::from(imp);
        let sim = Simulation::new(&spec, &arch, &td);
        let mut inj = ProbabilisticFaults::from_architecture(&arch);
        let out = sim.run(
            &mut BehaviorMap::new(),
            &mut ConstantEnvironment::new(Value::Float(1.0)),
            &mut inj,
            &SimConfig { rounds: 6000, seed: 99 },
        );
        let last = CommunicatorId::new(spec.communicator_count() as u32 - 1);
        let bits: Vec<bool> = out.trace.abstraction(last).into_iter().skip(2).collect();
        let mean = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        // Linear chains are tree-shaped, so the analysis is exact; 6000
        // samples of a Bernoulli in [0.06, 1] stay within ~0.03 w.h.p.
        prop_assert!(
            (mean - report.communicator(last).get()).abs() < 0.035,
            "mean {} vs analytic {}", mean, report.communicator(last).get()
        );
    }
}
