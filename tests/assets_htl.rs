//! The repository's HTL assets compile, validate, and exercise the modal
//! pipeline.

use logrel_core::HostId;
use logrel_emachine::{generate_modal, ModalMode, ModeSwitch};
use logrel_lang::{compile, elaborate_modes, parse};
use logrel_refine::{validate, SystemRef};

const STEER: &str = include_str!("../assets/steer_by_wire.htl");

#[test]
fn steer_by_wire_compiles_and_validates() {
    let sys = compile(STEER).unwrap();
    assert_eq!(sys.name, "steer_by_wire");
    assert_eq!(sys.spec.task_count(), 3); // start mode only
    let cert = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)).unwrap();
    assert!(cert.verdict.is_reliable());
    // The replicated torque path meets the strict LRC with margin.
    let cmd = sys.spec.find_communicator("cmd").unwrap();
    let lambda = cert.verdict.long_run_srg(cmd);
    assert!(lambda >= 0.9995, "λ(cmd) = {lambda}");
    // End-to-end LET latency of the actuation command: filter [0,10] +
    // torque [10,30] = 30 ms.
    let ages = logrel_sched::data_ages(&sys.spec);
    assert_eq!(ages.age(cmd), Some(30));
}

#[test]
fn steer_by_wire_degraded_mode_is_also_valid() {
    let modal = elaborate_modes(&parse(STEER).unwrap()).unwrap();
    assert_eq!(modal.modes.len(), 2);
    for m in &modal.modes {
        let cert = validate(SystemRef::new(&m.spec, &modal.arch, &m.imp))
            .unwrap_or_else(|e| panic!("mode `{}`: {e}", m.name));
        assert!(cert.verdict.is_reliable(), "mode `{}`", m.name);
    }
    // Both modes write identical communicator sets (checked at
    // elaboration), so modal E-code can be generated for every host.
    let modes: Vec<ModalMode<'_>> = modal
        .modes
        .iter()
        .map(|m| ModalMode {
            name: &m.name,
            spec: &m.spec,
            imp: &m.imp,
        })
        .collect();
    let switches: Vec<ModeSwitch> = modal
        .switches
        .iter()
        .enumerate()
        .map(|(i, (from, _, to))| ModeSwitch {
            from: *from,
            event: i as u32,
            to: *to,
        })
        .collect();
    for h in 0..modal.arch.host_count() as u32 {
        let code = generate_modal(&modes, &switches, HostId::new(h)).unwrap();
        assert!(!code.is_empty());
    }
}
