//! Golden-file test: `assets/three_tank.htl` stays in sync with the
//! programmatic generator and compiles to the validated scenario-1
//! system. Regenerate with:
//! `cargo run -p logrel-bench --bin export_htl -- scenario1 0.998 > assets/three_tank.htl`

use logrel_lang::compile;
use logrel_refine::{validate, SystemRef};
use logrel_threetank::htl::three_tank_source;
use logrel_threetank::Scenario;

const GOLDEN: &str = include_str!("../assets/three_tank.htl");

#[test]
fn golden_file_matches_the_generator() {
    let generated = three_tank_source(Scenario::ReplicatedControllers, 0.999, Some(0.998));
    assert_eq!(
        GOLDEN, generated,
        "assets/three_tank.htl is stale; regenerate it with \
         `cargo run -p logrel-bench --bin export_htl -- scenario1 0.998`"
    );
}

#[test]
fn golden_file_compiles_and_validates() {
    let sys = compile(GOLDEN).unwrap();
    let cert = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)).unwrap();
    assert!(cert.verdict.is_reliable());
    let u1 = sys.spec.find_communicator("u1").unwrap();
    let lambda = cert.verdict.long_run_srg(u1);
    assert!((lambda - 0.998000002).abs() < 1e-8, "λ(u1) = {lambda}");
}
