//! E6 (compact form): the closed-loop 3TS survives unplugging one host
//! when the controllers are replicated, and degrades when they are not.
//!
//! The full experiment (longer horizon, printed series) lives in
//! `cargo run -p logrel-bench --bin exp_unplug`.

use logrel_core::{Tick, TimeDependentImplementation};
use logrel_sim::{BehaviorMap, NoFaults, SimConfig, Simulation, UnplugAt};
use logrel_threetank::behaviors::build_behaviors;
use logrel_threetank::{PlantParams, Scenario, ThreeTankEnvironment, ThreeTankSystem};

/// Runs the closed loop for `rounds` rounds; optionally unplugs h1 at
/// `unplug_at`; opens a perturbation tap on tank 1 at `perturb_at`.
/// Returns the mean tracking error after the perturbation.
fn run(scenario: Scenario, rounds: u64, unplug_at: Option<Tick>, perturb_at: Tick) -> f64 {
    let sys = ThreeTankSystem::new(scenario);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors: BehaviorMap = build_behaviors(&sys, &params);
    let mut env = ThreeTankEnvironment::new(
        params,
        sys.ids,
        0.001,
        sys.gains.ref1,
        sys.gains.ref2,
    );
    env.perturb_at(perturb_at, 0, 0.3);
    let config = SimConfig { rounds, seed: 42 };
    
    match unplug_at {
        Some(at) => {
            let mut inj = UnplugAt::new(NoFaults, sys.ids.h1, at);
            sim.run(&mut behaviors, &mut env, &mut inj, &config);
            env.mean_error_since(perturb_at)
        }
        None => {
            sim.run(&mut behaviors, &mut env, &mut NoFaults, &config);
            env.mean_error_since(perturb_at)
        }
    }
}

#[test]
fn controller_reaches_the_references() {
    let sys = ThreeTankSystem::new(Scenario::Baseline);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors = build_behaviors(&sys, &params);
    let mut env =
        ThreeTankEnvironment::new(params, sys.ids, 0.001, sys.gains.ref1, sys.gains.ref2);
    // 600 rounds = 300 s of plant time.
    sim.run(
        &mut behaviors,
        &mut env,
        &mut NoFaults,
        &SimConfig {
            rounds: 600,
            seed: 1,
        },
    );
    let tail_error = env.mean_error_since(Tick::new(250 * 500));
    assert!(
        tail_error < 0.02,
        "controller should settle near the references, error {tail_error}"
    );
    let s = env.plant().state();
    assert!((s.h1 - sys.gains.ref1).abs() < 0.03, "h1 = {}", s.h1);
    assert!((s.h2 - sys.gains.ref2).abs() < 0.03, "h2 = {}", s.h2);
}

#[test]
fn perturbation_estimator_reacts_to_the_tap() {
    // After the tank-1 tap opens, the controller pumps harder to hold the
    // level; estimate1 = pump inflow − nominal outflow must rise.
    let sys = ThreeTankSystem::new(Scenario::Baseline);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors = build_behaviors(&sys, &params);
    let mut env =
        ThreeTankEnvironment::new(params, sys.ids, 0.001, sys.gains.ref1, sys.gains.ref2);
    let perturb = Tick::new(400 * 500);
    env.perturb_at(perturb, 0, 0.3);
    let out = sim.run(
        &mut behaviors,
        &mut env,
        &mut NoFaults,
        &SimConfig {
            rounds: 800,
            seed: 4,
        },
    );
    let r1 = out.trace.values(sys.ids.r1);
    let avg = |range: std::ops::Range<u64>| {
        let vals: Vec<f64> = r1
            .iter()
            .filter(|(t, _)| range.contains(&t.as_u64()))
            .filter_map(|(_, v)| v.as_float())
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let before = avg(150_000..200_000);
    let after = avg(350_000..400_000);
    assert!(
        after > before + 1.0e-6,
        "estimate must rise after the tap opens: before {before:e}, after {after:e}"
    );
}

#[test]
fn unplugging_a_host_has_no_effect_with_replication() {
    // "We unplugged one of the two hosts from the network and verified
    // that there was no change in the control performance."
    let rounds = 700;
    let unplug = Tick::new(200 * 500);
    let perturb = Tick::new(350 * 500);
    let nominal = run(Scenario::ReplicatedControllers, rounds, None, perturb);
    let unplugged = run(Scenario::ReplicatedControllers, rounds, Some(unplug), perturb);
    // Replicated controllers: unplugging h1 changes nothing measurable.
    assert!(
        (nominal - unplugged).abs() < 1e-9,
        "nominal {nominal} vs unplugged {unplugged}"
    );
}

#[test]
fn unplugging_degrades_the_unreplicated_baseline() {
    let rounds = 700;
    let unplug = Tick::new(200 * 500);
    let perturb = Tick::new(350 * 500);
    let nominal = run(Scenario::Baseline, rounds, None, perturb);
    let unplugged = run(Scenario::Baseline, rounds, Some(unplug), perturb);
    // t1 lived on h1 alone: after the unplug the pump current freezes and
    // the tap perturbation cannot be rejected.
    assert!(
        unplugged > nominal * 2.0,
        "expected clear degradation: nominal {nominal}, unplugged {unplugged}"
    );
}
