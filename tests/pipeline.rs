//! The full compiler pipeline: HTL-style source → elaboration → joint
//! schedulability/reliability analysis → E-code generation → runtime
//! cross-validation → simulation.

use logrel_core::{TimeDependentImplementation, Value};
use logrel_lang::compile;
use logrel_refine::{validate, SystemRef};
use logrel_threetank::htl::three_tank_source;
use logrel_threetank::Scenario;

#[test]
fn source_to_valid_system() {
    let src = three_tank_source(Scenario::ReplicatedControllers, 0.999, Some(0.998));
    let sys = compile(&src).unwrap();
    let cert = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)).unwrap();
    assert!(cert.verdict.is_reliable());
    assert_eq!(cert.schedule.round().as_u64(), 500);
}

#[test]
fn source_to_ecode_validation() {
    let src = three_tank_source(Scenario::Baseline, 0.999, None);
    let sys = compile(&src).unwrap();
    logrel_sim::emrun::validate_ecode(&sys.spec, &sys.imp, sys.arch.host_ids(), 3).unwrap();
}

#[test]
fn source_to_simulation() {
    let src = three_tank_source(Scenario::Baseline, 0.999, None);
    let sys = compile(&src).unwrap();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = logrel_sim::Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors = logrel_sim::BehaviorMap::new();
    let mut env = logrel_sim::ConstantEnvironment::new(Value::Float(0.25));
    let out = sim.run(
        &mut behaviors,
        &mut env,
        &mut logrel_sim::NoFaults,
        &logrel_sim::SimConfig {
            rounds: 20,
            seed: 1,
        },
    );
    let u1 = sys.spec.find_communicator("u1").unwrap();
    // Fault-free run: every update after the first is reliable.
    let bits = out.trace.abstraction(u1);
    assert!(bits[5..].iter().all(|&b| b));
}

#[test]
fn compile_errors_carry_positions() {
    let src = "program p {\n  communicator c : float period 0;\n}";
    let err = compile(src).unwrap_err();
    // period 0 is a core validation error surfaced through the front-end.
    assert!(err.to_string().contains("period"));
}
