//! E2–E5: the §4 reliability numbers of the paper, reproduced exactly.
//!
//! Host/sensor reliability r = 0.999 (reconstructed; see EXPERIMENTS.md):
//!
//! * baseline: λ_l = r² = 0.998001, λ_u = r³ = 0.997002999;
//!   LRC 0.99 → reliable, LRC 0.998 → NOT reliable;
//! * scenario 1 (controllers on {h1, h2}): λ_t = 1 − 10⁻⁶ = 0.999999,
//!   λ_u = λ_l · λ_t ≈ 0.998000002 → reliable at 0.998;
//! * scenario 2 (two sensors): λ_l = r · (1 − (1 − r)²) = 0.998999001,
//!   λ_u ≈ 0.998000012 → reliable at 0.998.

use logrel_refine::{validate, SystemRef, ValidityError};
use logrel_reliability::compute_srgs;
use logrel_threetank::{Scenario, ThreeTankSystem};

const EPS: f64 = 1e-12;

#[test]
fn e2_baseline_srgs_match_the_paper() {
    let sys = ThreeTankSystem::new(Scenario::Baseline);
    let report = compute_srgs(&sys.spec, &sys.arch, &sys.imp).unwrap();
    assert!((report.communicator(sys.ids.s1).get() - 0.999).abs() < EPS);
    assert!((report.communicator(sys.ids.l1).get() - 0.998001).abs() < EPS);
    assert!((report.communicator(sys.ids.l2).get() - 0.998001).abs() < EPS);
    assert!((report.communicator(sys.ids.u1).get() - 0.997002999).abs() < EPS);
    assert!((report.communicator(sys.ids.u2).get() - 0.997002999).abs() < EPS);
    // Task reliabilities equal their single host's reliability.
    assert!((report.task(sys.ids.t1).get() - 0.999).abs() < EPS);
}

#[test]
fn e2_baseline_is_valid_for_lrc_099() {
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, 0.999, Some(0.99)).unwrap();
    let cert = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)).unwrap();
    assert!(cert.verdict.is_reliable());
}

#[test]
fn e3_baseline_violates_lrc_0998() {
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, 0.999, Some(0.998)).unwrap();
    let err = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)).unwrap_err();
    let ValidityError::NotReliable { verdict } = err else {
        panic!("expected a reliability violation, got: {err}");
    };
    assert_eq!(verdict.violations.len(), 2); // u1 and u2
    assert!((verdict.violations[0].achieved - 0.997002999).abs() < EPS);
}

#[test]
fn e4_scenario1_controller_replication_meets_0998() {
    let sys =
        ThreeTankSystem::with_options(Scenario::ReplicatedControllers, 0.999, Some(0.998))
            .unwrap();
    let report = compute_srgs(&sys.spec, &sys.arch, &sys.imp).unwrap();
    // λ_t1 = 1 - (1 - 0.999)^2 = 0.999999.
    assert!((report.task(sys.ids.t1).get() - 0.999999).abs() < EPS);
    // λ_u1 = 0.998001 * 0.999999 = 0.998000002...
    assert!((report.communicator(sys.ids.u1).get() - 0.998001 * 0.999999).abs() < EPS);
    let cert = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)).unwrap();
    assert!(cert.verdict.is_reliable());
}

#[test]
fn e5_scenario2_sensor_replication_meets_0998() {
    let sys =
        ThreeTankSystem::with_options(Scenario::ReplicatedSensors, 0.999, Some(0.998)).unwrap();
    let report = compute_srgs(&sys.spec, &sys.arch, &sys.imp).unwrap();
    // λ_s1 = 1 - (1 - 0.999)^2 = 0.999999; λ_l1 = 0.999 * 0.999999.
    let lambda_l = 0.999 * 0.999999;
    assert!((report.communicator(sys.ids.l1).get() - lambda_l).abs() < EPS);
    // λ_u1 = λ_l1 * 0.999 ≈ 0.998 (the paper's rounded value).
    let lambda_u = report.communicator(sys.ids.u1).get();
    assert!((lambda_u - lambda_l * 0.999).abs() < EPS);
    assert!((lambda_u - 0.998).abs() < 1e-6, "λ_u = {lambda_u}");
    let cert = validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)).unwrap();
    assert!(cert.verdict.is_reliable());
}

#[test]
fn all_three_scenarios_are_schedulable() {
    for scenario in [
        Scenario::Baseline,
        Scenario::ReplicatedControllers,
        Scenario::ReplicatedSensors,
    ] {
        let sys = ThreeTankSystem::new(scenario);
        let schedule = logrel_sched::analyze(&sys.spec, &sys.arch, &sys.imp)
            .unwrap_or_else(|e| panic!("{scenario:?}: {e}"));
        assert_eq!(schedule.round().as_u64(), 500);
        // Controller replicas must finish CPU work by write − wctt.
        for (t, h) in sys.imp.replications() {
            let done = schedule.completion(t, h).unwrap();
            assert!(done <= sys.spec.write_time(t));
        }
    }
}

#[test]
fn intro_example_two_hosts_at_08_reach_09() {
    // §1: "To achieve LRCs of 0.9 with hosts that guarantee only SRGs of
    // 0.8, all tasks ... need to be replicated on two hosts ...
    // 1 - 0.2*0.2 = 0.96".
    use logrel_core::prelude::*;
    let mut sb = Specification::builder();
    let s = sb
        .communicator(
            CommunicatorDecl::new("s", ValueType::Float, 10)
                .unwrap()
                .from_sensor(),
        )
        .unwrap();
    let c = sb
        .communicator(
            CommunicatorDecl::new("c", ValueType::Float, 10)
                .unwrap()
                .with_lrc(Reliability::new(0.9).unwrap()),
        )
        .unwrap();
    let t = sb.task(TaskDecl::new("t").reads(s, 0).writes(c, 1)).unwrap();
    let spec = sb.build().unwrap();
    let mut ab = Architecture::builder();
    let h1 = ab
        .host(HostDecl::new("h1", Reliability::new(0.8).unwrap()))
        .unwrap();
    let h2 = ab
        .host(HostDecl::new("h2", Reliability::new(0.8).unwrap()))
        .unwrap();
    let sen = ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
    ab.wcet_all(t, 2).unwrap();
    ab.wctt_all(t, 1).unwrap();
    let arch = ab.build();
    let single = Implementation::builder()
        .assign(t, [h1])
        .bind_sensor(s, sen)
        .build(&spec, &arch)
        .unwrap();
    assert!(!logrel_reliability::check(&spec, &arch, &single)
        .unwrap()
        .is_reliable());
    let replicated = single.with_assignment(t, [h1, h2]);
    let verdict = logrel_reliability::check(&spec, &arch, &replicated).unwrap();
    assert!(verdict.is_reliable());
    assert!((verdict.long_run_srg(c) - 0.96).abs() < EPS);
}
