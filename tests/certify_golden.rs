//! Golden-file tests for the certification pass: every defective HTL
//! program in `tests/assets/certify/*.htl` is certified (with a
//! reliability box of δ = 1e-3) and both the rendered certificate and the
//! `logrel-certificate-v1` JSON document are compared byte-for-byte
//! against the sibling `*.expected` / `*.json.expected` files. A lint
//! `logrel-diagnostics-v1` golden rides along so both machine formats
//! stay pinned.
//!
//! Regenerate the expectations after an intentional change with
//! `UPDATE_EXPECT=1 cargo test --test certify_golden`.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use logrel::lint;
use logrel::reliability::Certificate;

/// The box radius every corpus file is certified under; wide enough to
/// break `certify_box_fragile.htl` while leaving the refuted and
/// indeterminate cases classified by their point enclosure.
const BOX_DELTA: f64 = 1e-3;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/assets/certify")
}

fn corpus() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("htl"))
        .collect();
    files.sort();
    files
}

/// Runs the full certify pipeline on one corpus file, mirroring
/// `htlc certify --box 1e-3`.
fn certified(path: &Path) -> (String, Certificate, Vec<lint::Diagnostic>) {
    let source = fs::read_to_string(path).unwrap();
    let program = logrel::lang::parse(&source).unwrap();
    let sys = logrel::lang::elaborate(&program).unwrap();
    let cert = logrel::reliability::certify(&sys.spec, &sys.arch, &sys.imp, Some(BOX_DELTA))
        .unwrap();
    let diags = lint::certify_diagnostics(&program, &cert);
    (sys.name, cert, diags)
}

/// Rendered text output: the certificate table followed by the spanned
/// diagnostics, exactly what `htlc certify` prints to stdout + stderr.
fn rendered(path: &Path) -> String {
    let name = path.file_name().unwrap().to_str().unwrap();
    let (sys_name, cert, diags) = certified(path);
    let mut out = lint::render_certificate(&sys_name, &cert);
    for d in &diags {
        out.push_str(&d.render(name));
        out.push('\n');
    }
    out
}

fn check_expected(path: &Path, got: &str, expected_path: &Path, update: bool) {
    if update {
        fs::write(expected_path, got).unwrap();
    } else {
        let expected = fs::read_to_string(expected_path)
            .unwrap_or_else(|_| panic!("missing {}", expected_path.display()));
        assert_eq!(
            got,
            expected,
            "output changed for {} (set UPDATE_EXPECT=1 to regenerate)",
            path.display()
        );
    }
}

#[test]
fn corpus_matches_expected_certificates() {
    let update = std::env::var_os("UPDATE_EXPECT").is_some();
    let files = corpus();
    assert!(files.len() >= 3, "corpus too small: {} files", files.len());
    for path in &files {
        let got = rendered(path);
        let (_, _, diags) = certified(path);
        assert!(
            !diags.is_empty(),
            "{} is part of the defect corpus but certifies clean",
            path.display()
        );
        check_expected(path, &got, &path.with_extension("expected"), update);
    }
}

#[test]
fn corpus_matches_expected_json_certificates() {
    let update = std::env::var_os("UPDATE_EXPECT").is_some();
    for path in &corpus() {
        let name = path.file_name().unwrap().to_str().unwrap();
        let (sys_name, cert, diags) = certified(path);
        let got = lint::certificate_json(name, &sys_name, &cert, &diags);
        check_expected(path, &got, &path.with_extension("json.expected"), update);
    }
}

#[test]
fn corpus_exercises_distinct_certify_codes() {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for path in corpus() {
        for d in &certified(&path).2 {
            seen.insert(d.code.to_string());
        }
    }
    for code in ["C001", "C002", "C003", "C004"] {
        assert!(seen.contains(code), "corpus never emits {code}: {seen:?}");
    }
}

#[test]
fn lint_json_matches_expected() {
    // Pin the `logrel-diagnostics-v1` document (`htlc lint --format json`)
    // for one representative lint-corpus file alongside the certify JSON.
    let update = std::env::var_os("UPDATE_EXPECT").is_some();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/assets/lint_dead_comm.htl");
    let source = fs::read_to_string(&path).unwrap();
    let diags = lint::lint_source(&source);
    let got = lint::diagnostics_json("lint_dead_comm.htl", &diags);
    let expected_path = corpus_dir().join("lint_dead_comm.json.expected");
    check_expected(&path, &got, &expected_path, update);
}
