//! End-to-end fault-scenario tests on the 3TS: crash-then-rejoin with the
//! warm-up rule, online LRC monitoring, campaign reports against the
//! analytic SRGs, serialized-scenario replay, thread-count determinism,
//! the compiled-vs-reference differential under the scenario layer, and
//! the correlated-failure ecology (common-cause groups that break the
//! ε-band with unchanged marginals, plus thread/lane determinism for
//! every new event kind).

use logrel_core::{Tick, TimeDependentImplementation, Value};
use logrel_reliability::compute_srgs;
use logrel_sim::{
    run_campaign, run_replications, AlarmKind, BatchConfig, BehaviorMap, CampaignConfig,
    ConstantEnvironment, FaultInjector, HostSet, LaneMode, LrcMonitor, MonitorConfig, NoFaults,
    ProbabilisticFaults, ReplicationContext, Scenario, ScenarioEnvironment, ScenarioEvent,
    ScenarioInjector, SimConfig, SimOutput, Simulation,
};
use logrel_threetank::behaviors::build_behaviors;
use logrel_threetank::{PlantParams, Scenario as Deployment, ThreeTankEnvironment, ThreeTankSystem};

const CRASH_AT: u64 = 50_000;
const REJOIN_AT: u64 = 60_000;
/// h1's stateful replicas warm up until the full round after the rejoin's
/// round boundary (60_500); the last unreliable `u1` instant is 60_700 and
/// the write landing at 60_800 is reliable again — 61_000 is safely past.
const RECOVERED_AT: u64 = 61_000;

fn crash_rejoin(sys: &ThreeTankSystem) -> Scenario {
    Scenario::from_events(vec![
        ScenarioEvent::Crash {
            host: sys.ids.h1,
            at: Tick::new(CRASH_AT),
        },
        ScenarioEvent::Rejoin {
            host: sys.ids.h1,
            at: Tick::new(REJOIN_AT),
        },
    ])
    .unwrap()
}

/// Open-loop run (constant sensor feed, no inner faults) under `scn`.
fn open_loop(sys: &ThreeTankSystem, scn: &Scenario, rounds: u64) -> SimOutput {
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors: BehaviorMap = build_behaviors(sys, &params);
    let comms = sys.spec.communicator_count();
    let mut env =
        ScenarioEnvironment::new(ConstantEnvironment::new(Value::Float(0.25)), scn, comms);
    let mut inj =
        ScenarioInjector::new(NoFaults, scn, sys.arch.host_count(), comms).unwrap();
    sim.run(
        &mut behaviors,
        &mut env,
        &mut inj,
        &SimConfig { rounds, seed: 11 },
    )
}

/// The acceptance scenario: on the unreplicated Baseline, a crash of h1
/// blanks `u1` (t1's output) for exactly the outage-plus-warm-up window
/// and is bit-identical to the fault-free run everywhere else.
#[test]
fn crash_then_rejoin_matches_fault_free_outside_the_outage() {
    let sys = ThreeTankSystem::new(Deployment::Baseline);
    let nominal = open_loop(&sys, &Scenario::new(), 200);
    let faulted = open_loop(&sys, &crash_rejoin(&sys), 200);

    let nom = nominal.trace.values(sys.ids.u1);
    let out = faulted.trace.values(sys.ids.u1);
    assert_eq!(nom.len(), out.len());
    let mut dipped = 0u32;
    for (&(t, a), &(_, b)) in nom.iter().zip(out) {
        let tt = t.as_u64();
        if !(CRASH_AT..RECOVERED_AT).contains(&tt) {
            assert_eq!(a, b, "u1 must match the fault-free run at t={tt}");
        } else if a != b {
            assert!(!b.is_reliable(), "outage values are ⊥, not garbage");
            dipped += 1;
        }
    }
    assert!(dipped > 50, "the outage must actually blank u1: {dipped}");

    // l1 is produced on h3 and never touched by h1's outage.
    assert_eq!(
        nominal.trace.values(sys.ids.l1),
        faulted.trace.values(sys.ids.l1)
    );
    // u2 is produced on h2 and equally untouched.
    assert_eq!(
        nominal.trace.values(sys.ids.u2),
        faulted.trace.values(sys.ids.u2)
    );
}

/// Closed-loop counterpart of the paper's §4 unplug experiment, now with
/// a rejoin: with replicated controllers the crash *and* the warm-up
/// re-entry are completely invisible — the whole simulation output is
/// bit-identical to the fault-free run (and to a run without the scenario
/// layer at all).
#[test]
fn replicated_controllers_ride_through_crash_and_rejoin() {
    let closed_loop = |scn: Option<&Scenario>| -> SimOutput {
        let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
        let params = PlantParams::default();
        let imp = TimeDependentImplementation::from(sys.imp.clone());
        let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
        let mut behaviors = build_behaviors(&sys, &params);
        let mut env =
            ThreeTankEnvironment::new(params, sys.ids, 0.001, sys.gains.ref1, sys.gains.ref2);
        env.perturb_at(Tick::new(350 * 500), 0, 0.3);
        let config = SimConfig {
            rounds: 700,
            seed: 42,
        };
        match scn {
            None => sim.run(&mut behaviors, &mut env, &mut NoFaults, &config),
            Some(scn) => {
                let comms = sys.spec.communicator_count();
                let mut env = ScenarioEnvironment::new(env, scn, comms);
                let mut inj =
                    ScenarioInjector::new(NoFaults, scn, sys.arch.host_count(), comms).unwrap();
                sim.run(&mut behaviors, &mut env, &mut inj, &config)
            }
        }
    };

    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let plain = closed_loop(None);
    let empty = closed_loop(Some(&Scenario::new()));
    let faulted = closed_loop(Some(&crash_rejoin(&sys)));
    // The scenario layer is a bit-exact pass-through...
    assert_eq!(plain, empty);
    // ...and the outage itself is invisible behind the h2 replica.
    assert_eq!(plain, faulted);
}

/// The online monitor raises a confident alarm during the outage and
/// clears it once the window refills with reliable updates.
#[test]
fn monitor_raises_and_clears_across_the_outage() {
    let sys = ThreeTankSystem::with_options(Deployment::Baseline, 1.0, Some(0.999)).unwrap();
    let scn = crash_rejoin(&sys);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors = build_behaviors(&sys, &params);
    let comms = sys.spec.communicator_count();
    let mut env = ConstantEnvironment::new(Value::Float(0.25));
    let mut inj =
        ScenarioInjector::new(NoFaults, &scn, sys.arch.host_count(), comms).unwrap();
    let mut monitor = LrcMonitor::new(&sys.spec, MonitorConfig::default());
    sim.run_supervised(
        &mut behaviors,
        &mut env,
        &mut inj,
        &mut monitor,
        &SimConfig {
            rounds: 200,
            seed: 5,
        },
    );

    let u1 = sys.ids.u1;
    let alarms: Vec<_> = monitor.alarms().iter().filter(|a| a.comm == u1).collect();
    assert_eq!(alarms.len(), 2, "exactly one raise + clear: {alarms:?}");
    assert_eq!(alarms[0].kind, AlarmKind::Raised);
    // The raise needs ~24 unreliable updates in the 200-window to become
    // statistically confident, so it lands a few thousand ticks in.
    let raised = alarms[0].at.as_u64();
    assert!(
        (CRASH_AT..CRASH_AT + 5_000).contains(&raised),
        "raised at {raised}"
    );
    assert!(alarms[0].mean + alarms[0].epsilon < alarms[0].lrc);
    assert_eq!(alarms[1].kind, AlarmKind::Cleared);
    let cleared = alarms[1].at.as_u64();
    assert!(
        (REJOIN_AT..REJOIN_AT + 25_000).contains(&cleared),
        "cleared at {cleared}"
    );
    assert!(!monitor.active(u1));
    assert_eq!(monitor.first_violation(u1), Some(alarms[0].at));
    // u2 (on the healthy h2) never alarms.
    assert!(monitor.alarms().iter().all(|a| a.comm == u1));
}

/// The campaign acceptance check: empirical λ̂ stays within the Hoeffding
/// radius of the analytic SRG for every communicator despite the scripted
/// outage, the monitor flags the violation in every replication, and the
/// whole report is bit-identical across thread counts *and* when replayed
/// from the report's own serialized scenario.
#[test]
fn campaign_lambda_within_epsilon_and_replays_bit_identically() {
    let sys = ThreeTankSystem::with_options(Deployment::Baseline, 0.999, Some(0.999)).unwrap();
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);

    // A short outage: 5 rounds down + 1 warm-up round ≈ 35 of the 10 000
    // u1 updates per replication, well inside ε(40 000, 0.99) ≈ 0.008.
    let scn = Scenario::from_events(vec![
        ScenarioEvent::Crash {
            host: sys.ids.h1,
            at: Tick::new(250_000),
        },
        ScenarioEvent::Rejoin {
            host: sys.ids.h1,
            at: Tick::new(252_500),
        },
    ])
    .unwrap();

    let srgs = compute_srgs(&sys.spec, &sys.arch, &sys.imp).unwrap();
    let analytic: Vec<Option<f64>> = sys
        .spec
        .communicator_ids()
        .map(|c| Some(srgs.communicator(c).get()))
        .collect();

    let run = |scn: &Scenario, threads: usize| {
        let config = CampaignConfig {
            batch: BatchConfig {
                replications: 4,
                rounds: 2_000,
                base_seed: 0xFA57,
                threads,
            },
            monitor: MonitorConfig::default(),
            lanes: LaneMode::default(),
        };
        run_campaign(
            &sim,
            &sys.spec,
            scn,
            sys.arch.host_count(),
            &config,
            |_rep| ReplicationContext {
                behaviors: build_behaviors(&sys, &params),
                environment: Box::new(ConstantEnvironment::new(Value::Float(0.25))),
                injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
            },
            &analytic,
        )
        .unwrap()
    };

    let report = run(&scn, 1);
    for cr in &report.comms {
        assert_eq!(
            cr.within_epsilon,
            Some(true),
            "λ̂ vs λ for communicator {:?}: {} vs {:?} (ε {})",
            cr.comm,
            cr.empirical,
            cr.analytic,
            cr.epsilon
        );
    }
    let u1 = &report.comms[sys.ids.u1.index()];
    assert!(u1.empirical < u1.analytic.unwrap(), "the outage costs λ̂");
    assert_eq!(u1.violated_reps, 4, "every replication sees the outage");
    assert!(u1.alarms_raised >= 4 && u1.alarms_cleared >= 4);
    let first = u1.first_violation.unwrap().as_u64();
    assert!((250_000..260_000).contains(&first), "first violation {first}");

    // Scripted availability: h1 down 2 500 of 1 000 000 ticks.
    assert!((report.host_availability[sys.ids.h1.index()] - 0.9975).abs() < 1e-12);
    assert_eq!(report.host_availability[sys.ids.h2.index()], 1.0);

    // Thread-count determinism of the whole report.
    assert_eq!(report, run(&scn, 8));

    // Replay from the serialized form is bit-identical.
    let reparsed = Scenario::parse(&report.scenario).unwrap();
    assert_eq!(reparsed, scn);
    assert_eq!(report, run(&reparsed, 1));
}

/// The compiled kernel and the map-driven reference interpreter agree
/// bit-exactly under a scenario exercising every event type at once.
#[test]
fn compiled_and_reference_kernels_agree_under_scenarios() {
    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let comms = sys.spec.communicator_count();
    let scn = Scenario::from_events(vec![
        ScenarioEvent::Crash {
            host: sys.ids.h1,
            at: Tick::new(20_000),
        },
        ScenarioEvent::Rejoin {
            host: sys.ids.h1,
            at: Tick::new(30_000),
        },
        ScenarioEvent::Flaky {
            host: sys.ids.h2,
            from: Tick::new(0),
            until: Tick::new(40_000),
            up: 0.8,
        },
        ScenarioEvent::StuckSensor {
            comm: sys.ids.s1,
            from: Tick::new(10_000),
            until: Tick::new(15_000),
        },
        ScenarioEvent::Burst {
            from: Tick::new(50_000),
            until: Tick::new(80_000),
            p_enter: 0.05,
            p_exit: 0.2,
            loss: 0.9,
        },
        ScenarioEvent::CommonCause {
            hosts: HostSet::from_hosts([sys.ids.h1, sys.ids.h3]).unwrap(),
            from: Tick::new(45_000),
            until: Tick::new(90_000),
            p: 0.1,
        },
        ScenarioEvent::Partition {
            hosts: HostSet::from_hosts([sys.ids.h2]).unwrap(),
            from: Tick::new(25_000),
            until: Tick::new(42_000),
        },
        ScenarioEvent::Wearout {
            host: sys.ids.h3,
            from: Tick::new(60_000),
            until: Tick::new(100_000),
            shape: 2.0,
            scale: 25_000.0,
        },
        ScenarioEvent::Adversary {
            from: Tick::new(0),
            until: Tick::new(100_000),
            hold: 25,
        },
    ])
    .unwrap();

    let config = SimConfig {
        rounds: 200,
        seed: 909,
    };
    let fresh = || {
        let behaviors = build_behaviors(&sys, &params);
        let env = ScenarioEnvironment::new(
            ConstantEnvironment::new(Value::Float(0.25)),
            &scn,
            comms,
        );
        let inj = ScenarioInjector::new(
            ProbabilisticFaults::from_architecture(&sys.arch),
            &scn,
            sys.arch.host_count(),
            comms,
        )
        .unwrap();
        (behaviors, env, inj)
    };

    let (mut b1, mut e1, mut i1) = fresh();
    let compiled = sim.run(&mut b1, &mut e1, &mut i1, &config);
    let (mut b2, mut e2, mut i2) = fresh();
    let reference = sim.run_reference(&mut b2, &mut e2, &mut i2, &config);
    assert_eq!(compiled, reference);
}

/// Monte-Carlo batches stay byte-identical across thread counts with the
/// scenario layer in the loop.
#[test]
fn scenario_batches_are_bit_identical_across_thread_counts() {
    let sys = ThreeTankSystem::new(Deployment::Baseline);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let comms = sys.spec.communicator_count();
    let scn = crash_rejoin(&sys);

    let batch = |threads: usize| -> Vec<SimOutput> {
        let config = BatchConfig {
            replications: 8,
            rounds: 150,
            base_seed: 77,
            threads,
        };
        run_replications(
            &sim,
            &config,
            |_rep| ReplicationContext {
                behaviors: build_behaviors(&sys, &params),
                environment: Box::new(ScenarioEnvironment::new(
                    ConstantEnvironment::new(Value::Float(0.25)),
                    &scn,
                    comms,
                )),
                injector: Box::new(
                    ScenarioInjector::new(
                        ProbabilisticFaults::from_architecture(&sys.arch),
                        &scn,
                        sys.arch.host_count(),
                        comms,
                    )
                    .unwrap(),
                ),
            },
            |_rep, out| out,
        )
    };

    let one = batch(1);
    assert_eq!(one, batch(8));
}

/// Seed-stability pin of the E6 unplug experiment (`exp_unplug`): the
/// exact headline numbers for seed 42 over 900 rounds. A change in RNG
/// draw order, seed derivation, or kernel scheduling shows up here first.
#[test]
fn exp_unplug_output_is_seed_stable() {
    let run = |deployment: Deployment, unplug: bool| -> f64 {
        let sys = ThreeTankSystem::new(deployment);
        let params = PlantParams::default();
        let imp = TimeDependentImplementation::from(sys.imp.clone());
        let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
        let mut behaviors = build_behaviors(&sys, &params);
        let mut env =
            ThreeTankEnvironment::new(params, sys.ids, 0.001, sys.gains.ref1, sys.gains.ref2);
        env.perturb_at(Tick::new(450 * 500), 0, 0.3);
        let config = SimConfig {
            rounds: 900,
            seed: 42,
        };
        if unplug {
            let mut inj = logrel_sim::UnplugAt::new(NoFaults, sys.ids.h1, Tick::new(250 * 500));
            sim.run(&mut behaviors, &mut env, &mut inj, &config);
        } else {
            sim.run(&mut behaviors, &mut env, &mut NoFaults, &config);
        }
        env.mean_error_since(Tick::new(450 * 500))
    };

    // Replication makes the unplug invisible, and with NoFaults the
    // nominal baseline coincides with the replicated run bit-for-bit;
    // only the unplugged baseline degrades.
    let pins = [
        (Deployment::ReplicatedControllers, false, "5.196855481694e-3"),
        (Deployment::ReplicatedControllers, true, "5.196855481694e-3"),
        (Deployment::Baseline, false, "5.196855481694e-3"),
        (Deployment::Baseline, true, "3.702974699377e-2"),
    ];
    for (deployment, unplug, expected) in pins {
        let got = format!("{:.12e}", run(deployment, unplug));
        assert_eq!(got, expected, "{deployment:?} unplug={unplug}");
    }
}

/// The correlated-failure acceptance check: a common-cause group over
/// both controller hosts and an *independent* flaky baseline give each
/// host the same marginal availability (0.95 per instant), yet only the
/// correlated scenario defeats replication — its empirical λ̂ for the
/// replicated controller output falls below the analytic SRG's ε-band,
/// while the independent baseline stays inside it. This is Proposition
/// 1's independence assumption made falsifiable.
#[test]
fn common_cause_breaks_the_epsilon_band_with_matching_marginals() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let comms = sys.spec.communicator_count();
    const HORIZON: u64 = 1_000_000; // 2 000 rounds × 500 ticks

    let correlated = Scenario::from_events(vec![ScenarioEvent::CommonCause {
        hosts: HostSet::from_hosts([sys.ids.h1, sys.ids.h2]).unwrap(),
        from: Tick::new(0),
        until: Tick::new(HORIZON),
        p: 0.05,
    }])
    .unwrap();
    let independent = Scenario::from_events(vec![
        ScenarioEvent::Flaky {
            host: sys.ids.h1,
            from: Tick::new(0),
            until: Tick::new(HORIZON),
            up: 0.95,
        },
        ScenarioEvent::Flaky {
            host: sys.ids.h2,
            from: Tick::new(0),
            until: Tick::new(HORIZON),
            up: 0.95,
        },
    ])
    .unwrap();

    // Both scenarios give h1 and h2 the same per-instant marginal
    // availability; only the joint distribution differs.
    let marginals = |scn: &Scenario| -> [f64; 2] {
        let mut inj = ScenarioInjector::new(NoFaults, scn, sys.arch.host_count(), comms).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut up = [0u32; 2];
        const SAMPLES: u64 = 20_000;
        for t in 0..SAMPLES {
            for (i, h) in [sys.ids.h1, sys.ids.h2].into_iter().enumerate() {
                up[i] += u32::from(inj.host_ok(h, Tick::new(t), &mut rng));
            }
        }
        up.map(|u| f64::from(u) / SAMPLES as f64)
    };
    let corr_marginal = marginals(&correlated);
    let indep_marginal = marginals(&independent);
    for i in 0..2 {
        assert!(
            (corr_marginal[i] - indep_marginal[i]).abs() < 0.01,
            "host {i} marginals diverge: {corr_marginal:?} vs {indep_marginal:?}"
        );
        assert!((corr_marginal[i] - 0.95).abs() < 0.01);
    }

    let srgs = compute_srgs(&sys.spec, &sys.arch, &sys.imp).unwrap();
    let analytic: Vec<Option<f64>> = sys
        .spec
        .communicator_ids()
        .map(|c| Some(srgs.communicator(c).get()))
        .collect();
    let run = |scn: &Scenario| {
        let config = CampaignConfig {
            batch: BatchConfig {
                replications: 4,
                rounds: 2_000,
                base_seed: 0xCC0,
                threads: 0,
            },
            monitor: MonitorConfig::default(),
            lanes: LaneMode::default(),
        };
        run_campaign(
            &sim,
            &sys.spec,
            scn,
            sys.arch.host_count(),
            &config,
            |_rep| ReplicationContext {
                behaviors: build_behaviors(&sys, &params),
                environment: Box::new(ConstantEnvironment::new(Value::Float(0.25))),
                injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
            },
            &analytic,
        )
        .unwrap()
    };

    let corr = &run(&correlated).comms[sys.ids.u1.index()].clone();
    let indep = &run(&independent).comms[sys.ids.u1.index()].clone();

    // Replication absorbs independent flakiness: both replicas must fail
    // in the same instant (p ≈ 0.0025), well inside ε ≈ 0.008.
    assert_eq!(
        indep.within_epsilon,
        Some(true),
        "independent λ̂ {} vs {:?} (ε {})",
        indep.empirical,
        indep.analytic,
        indep.epsilon
    );
    // The same marginals, perfectly correlated, take the whole replica
    // set down at once (p = 0.05) and blow through the band.
    assert_eq!(
        corr.within_epsilon,
        Some(false),
        "correlated λ̂ {} vs {:?} (ε {})",
        corr.empirical,
        corr.analytic,
        corr.epsilon
    );
    assert!(corr.empirical < corr.analytic.unwrap() - corr.epsilon);
    assert!(corr.empirical < indep.empirical - 0.02, "correlation costs λ̂");
}

/// Every new event kind replays bit-identically across thread counts and
/// lane modes: the campaign report is a pure function of the scenario and
/// the seed, whether replications run on 1 or 8 threads, scalar or
/// bit-sliced.
#[test]
fn new_event_kinds_replay_bit_identically_across_threads_and_lanes() {
    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    const HORIZON: u64 = 40_000; // 80 rounds × 500 ticks

    let scenarios = [
        (
            "common",
            Scenario::from_events(vec![ScenarioEvent::CommonCause {
                hosts: HostSet::from_hosts([sys.ids.h1, sys.ids.h2]).unwrap(),
                from: Tick::new(0),
                until: Tick::new(HORIZON),
                p: 0.2,
            }])
            .unwrap(),
        ),
        (
            "partition",
            Scenario::from_events(vec![ScenarioEvent::Partition {
                hosts: HostSet::from_hosts([sys.ids.h1]).unwrap(),
                from: Tick::new(5_000),
                until: Tick::new(30_000),
            }])
            .unwrap(),
        ),
        (
            "wearout",
            Scenario::from_events(vec![ScenarioEvent::Wearout {
                host: sys.ids.h2,
                from: Tick::new(0),
                until: Tick::new(HORIZON),
                shape: 2.0,
                scale: 15_000.0,
            }])
            .unwrap(),
        ),
        (
            "adversary",
            Scenario::from_events(vec![ScenarioEvent::Adversary {
                from: Tick::new(0),
                until: Tick::new(HORIZON),
                hold: 100,
            }])
            .unwrap(),
        ),
    ];

    for (name, scn) in &scenarios {
        let run = |threads: usize, lanes: LaneMode| {
            let config = CampaignConfig {
                batch: BatchConfig {
                    replications: 66,
                    rounds: 80,
                    base_seed: 0xEC0,
                    threads,
                },
                monitor: MonitorConfig::default(),
                lanes,
            };
            run_campaign(
                &sim,
                &sys.spec,
                scn,
                sys.arch.host_count(),
                &config,
                |_rep| ReplicationContext {
                    behaviors: BehaviorMap::default(),
                    environment: Box::new(ConstantEnvironment::new(Value::Float(0.25))),
                    injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
                },
                &[],
            )
            .unwrap()
        };
        let scalar = run(1, LaneMode::Off);
        assert_eq!(scalar, run(8, LaneMode::Off), "{name}: threads under Off");
        assert_eq!(scalar, run(1, LaneMode::Auto), "{name}: scalar vs lanes");
        assert_eq!(scalar, run(8, LaneMode::Auto), "{name}: threads under Auto");
    }
}
