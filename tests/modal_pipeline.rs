//! Mode switching end to end: a two-mode program compiled from source to
//! modal E-code, executed with a platform that fires the switch event —
//! reproducing §4's "mode switches between tasks … with identical
//! reliability constraints".

use logrel_core::{HostId, TaskId, Tick};
use logrel_emachine::{generate_modal, DriverOp, EMachine, ModalMode, ModeSwitch, Platform};
use logrel_lang::{elaborate_modes, parse};
use logrel_reliability::compute_srgs;

const SRC: &str = r#"
program modal {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    module m {
        start mode normal period 10 {
            invoke fast reads s[0] writes u[1];
            switch overload -> degraded;
        }
        mode degraded period 10 {
            invoke slow reads s[0] writes u[1];
            switch recovered -> normal;
        }
    }
    architecture {
        host h1 reliability 0.999;
        sensor sn reliability 0.999;
        wcet fast on h1 2;
        wctt fast on h1 1;
        wcet slow on h1 4;
        wctt slow on h1 1;
    }
    map {
        fast -> h1;
        slow -> h1;
        bind s -> sn;
    }
}
"#;

struct EventAt {
    event: u32,
    at: Tick,
    releases: Vec<(Tick, TaskId)>,
    updates: Vec<Tick>,
}

impl Platform for EventAt {
    fn call(&mut self, _h: HostId, op: DriverOp, now: Tick) {
        if matches!(op, DriverOp::UpdateCommunicator { .. }) {
            self.updates.push(now);
        }
    }
    fn release(&mut self, _h: HostId, task: TaskId, now: Tick) {
        self.releases.push((now, task));
    }
    fn event(&mut self, event: u32, now: Tick) -> bool {
        event == self.event && now == self.at
    }
}

#[test]
fn source_to_modal_ecode_switches_modes() {
    let modal = elaborate_modes(&parse(SRC).unwrap()).unwrap();
    assert_eq!(modal.start, 0);

    // Event names to dense ids, in switch order.
    let modes: Vec<ModalMode<'_>> = modal
        .modes
        .iter()
        .map(|m| ModalMode {
            name: &m.name,
            spec: &m.spec,
            imp: &m.imp,
        })
        .collect();
    let switches: Vec<ModeSwitch> = modal
        .switches
        .iter()
        .enumerate()
        .map(|(i, (from, _event, to))| ModeSwitch {
            from: *from,
            event: i as u32,
            to: *to,
        })
        .collect();
    let host = HostId::new(0);
    let code = generate_modal(&modes, &switches, host).unwrap();

    // Fire "overload" (event 0) at the t=30 round boundary.
    let mut platform = EventAt {
        event: 0,
        at: Tick::new(30),
        releases: Vec::new(),
        updates: Vec::new(),
    };
    let mut machine = EMachine::new(code, host);
    machine.run_until(Tick::new(59), &mut platform);

    // 6 rounds of releases total; all at multiples of 10.
    assert_eq!(platform.releases.len(), 6);
    assert!(platform
        .releases
        .iter()
        .all(|(t, _)| t.as_u64() % 10 == 0));
    // Communicator updates never miss a beat across the switch.
    let mut distinct = platform.updates.clone();
    distinct.dedup();
    assert_eq!(
        distinct,
        (0..=5).map(|k| Tick::new(k * 10)).collect::<Vec<_>>()
    );
}

#[test]
fn both_modes_have_identical_reliability_constraints() {
    // §4's condition: "the switch is always to tasks with identical
    // reliability constraints, and the reliability analysis applies".
    let modal = elaborate_modes(&parse(SRC).unwrap()).unwrap();
    let srgs: Vec<f64> = modal
        .modes
        .iter()
        .map(|m| {
            let report = compute_srgs(&m.spec, &modal.arch, &m.imp).unwrap();
            let u = m.spec.find_communicator("u").unwrap();
            report.communicator(u).get()
        })
        .collect();
    // Same mapping and host reliabilities: identical SRGs per mode.
    assert!((srgs[0] - srgs[1]).abs() < 1e-12);
    // And both modes individually satisfy the LRC.
    for m in &modal.modes {
        let verdict = logrel_reliability::check(&m.spec, &modal.arch, &m.imp).unwrap();
        assert!(verdict.is_reliable());
    }
}

#[test]
fn each_mode_is_individually_schedulable() {
    let modal = elaborate_modes(&parse(SRC).unwrap()).unwrap();
    for m in &modal.modes {
        logrel_sched::analyze(&m.spec, &modal.arch, &m.imp)
            .unwrap_or_else(|e| panic!("mode `{}`: {e}", m.name));
    }
}
