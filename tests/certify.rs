//! Soundness and cross-validation suite for the static certification
//! engine: the point SRG of every shipped and corpus spec lies inside its
//! certified enclosure, the symbolic Birnbaum partials agree with the
//! RBD-pinning `importance` analysis on both case studies, random specs
//! keep the enclosure property (proptest), a Monte-Carlo fault-injection
//! campaign's ε-band overlaps the certified interval, and the query
//! layer's certify refinement reuse is exercised in both directions
//! (LRC weakening reuses, tightening recomputes, warm ≡ cold always).

use logrel_core::{TimeDependentImplementation, Value};
use logrel_obs::NoopSink;
use logrel_query::analyze_source;
use logrel_reliability::{
    architecture_importance, certify, compute_srgs, compute_symbolic_srgs, pinned_birnbaum,
    standard_assignment, CertStatus,
};
use logrel_sim::{
    run_campaign, BatchConfig, CampaignConfig, ConstantEnvironment, LaneMode, MonitorConfig,
    ProbabilisticFaults, ReplicationContext, Scenario, Simulation,
};
use logrel_threetank::behaviors::build_behaviors;
use logrel_threetank::{PlantParams, Scenario as Deployment, ThreeTankSystem};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

/// Every HTL specification shipped with the repository plus the certify
/// defect corpus.
fn all_specs() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in ["assets", "examples/htl", "tests/assets/certify"] {
        for entry in fs::read_dir(root.join(dir)).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) == Some("htl") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(files.len() >= 6, "spec sweep too small: {files:?}");
    files
}

/// Checks the certification invariants of one elaborated system: the
/// point SRG lies inside the certified enclosure for every communicator,
/// verdicts are exactly what the enclosure dictates, and the degradation
/// box only ever widens the enclosure.
fn assert_sound(sys: &logrel::lang::ElaboratedSystem, ctx: &str) {
    let srgs = compute_srgs(&sys.spec, &sys.arch, &sys.imp).unwrap();
    let cert = certify(&sys.spec, &sys.arch, &sys.imp, Some(1e-3)).unwrap();
    assert_eq!(cert.comms.len(), sys.spec.communicator_count(), "{ctx}");
    for row in &cert.comms {
        let point = srgs.communicator(row.comm).get();
        assert_eq!(row.point, point, "{ctx}: `{}` point mismatch", row.name);
        assert!(
            row.interval.contains(point),
            "{ctx}: `{}` point {point} outside [{}, {}]",
            row.name,
            row.interval.lo(),
            row.interval.hi()
        );
        let boxed = row.box_interval.unwrap();
        assert!(
            boxed.lo() <= row.interval.lo() && row.interval.hi() <= boxed.hi(),
            "{ctx}: `{}` box must enclose the point-architecture interval",
            row.name
        );
        match (row.lrc, row.status) {
            (None, None) => {}
            (Some(mu), Some(status)) => {
                let expect = if row.interval.lo() >= mu {
                    CertStatus::Certified
                } else if row.interval.hi() < mu {
                    CertStatus::Refuted
                } else {
                    CertStatus::Indeterminate
                };
                assert_eq!(status, expect, "{ctx}: `{}` verdict", row.name);
                assert_eq!(
                    row.slack,
                    Some(row.interval.lo() - mu),
                    "{ctx}: `{}` slack",
                    row.name
                );
            }
            other => panic!("{ctx}: `{}` lrc/status mismatch: {other:?}", row.name),
        }
    }
}

#[test]
fn point_srg_inside_certified_interval_for_every_shipped_spec() {
    for path in all_specs() {
        let source = fs::read_to_string(&path).unwrap();
        let program = logrel::lang::parse(&source).unwrap();
        let sys = logrel::lang::elaborate(&program).unwrap();
        assert_sound(&sys, &path.display().to_string());
    }
}

/// Differential test of the two independent sensitivity analyses: the
/// symbolic polynomial's pinned Birnbaum (`λ_c(x=1) − λ_c(x=0)`) must
/// agree with `importance.rs`, which pins the named unit inside the RBD
/// instead, on every communicator of both case studies.
#[test]
fn symbolic_birnbaum_matches_rbd_importance_on_case_studies() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for name in ["three_tank.htl", "steer_by_wire.htl"] {
        let source = fs::read_to_string(root.join("assets").join(name)).unwrap();
        let program = logrel::lang::parse(&source).unwrap();
        let sys = logrel::lang::elaborate(&program).unwrap();
        let symbolic = compute_symbolic_srgs(&sys.spec, &sys.imp).unwrap();
        let assign = standard_assignment(&sys.arch);
        let mut compared = 0usize;
        for c in sys.spec.communicator_ids() {
            let rows = architecture_importance(&sys.spec, &sys.arch, &sys.imp, c).unwrap();
            let poly = symbolic.communicator(c);
            for sym in poly.symbols() {
                let label = sym.label(&sys.spec, &sys.arch);
                let row = rows
                    .iter()
                    .find(|r| r.name == label)
                    .unwrap_or_else(|| panic!("{name}: no importance row for `{label}`"));
                let symbolic_b = pinned_birnbaum(poly, sym, &assign);
                assert!(
                    (symbolic_b - row.birnbaum).abs() <= 1e-9,
                    "{name}: Birnbaum for `{label}` diverges: symbolic {symbolic_b} vs rbd {}",
                    row.birnbaum
                );
                compared += 1;
            }
        }
        assert!(compared >= 8, "{name}: only {compared} partials compared");
    }
}

/// Renders a well-formed random spec: `replicas` controller replicas over
/// hosts of the given reliabilities, a sensor chain and an optional LRC.
fn render_spec(period: u64, replicas: usize, hrel: [u32; 3], srel: u32, lrc: &str) -> String {
    let hosts = ["h1", "h2", "h3"];
    let constraint = if lrc.is_empty() { String::new() } else { format!(" {lrc}") };
    let mut out = format!(
        "program rnd {{\n    communicator s : float period {period} sensor;\n    communicator u : float period {period}{constraint};\n"
    );
    out.push_str(&format!(
        "    module m {{\n        start mode main period {period} {{\n            invoke ctrl reads s[0] writes u[1];\n        }}\n    }}\n"
    ));
    out.push_str("    architecture {\n");
    for (h, r) in hosts.iter().zip(hrel) {
        out.push_str(&format!("        host {h} reliability 0.{r:04};\n"));
    }
    out.push_str(&format!("        sensor sen reliability 0.{srel:04};\n"));
    for h in hosts {
        out.push_str(&format!(
            "        wcet ctrl on {h} 2; wctt ctrl on {h} 1;\n"
        ));
    }
    out.push_str("    }\n    map {\n");
    out.push_str(&format!("        ctrl -> {};\n", hosts[..replicas].join(", ")));
    out.push_str("        bind s -> sen;\n    }\n}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The enclosure property is not an artifact of the shipped examples:
    /// it holds across randomly drawn architectures, replication degrees
    /// and constraints.
    #[test]
    fn certified_interval_encloses_point_srg(
        period in (0usize..3).prop_map(|i| [5u64, 10, 20][i]),
        replicas in 1usize..=3,
        h1 in 5000u32..=9999,
        h2 in 5000u32..=9999,
        h3 in 5000u32..=9999,
        srel in 5000u32..=9999,
        lrc_micro in proptest::option::of(500_000u32..=999_999),
    ) {
        let hrel = [h1, h2, h3];
        let lrc = match lrc_micro {
            Some(m) => format!("lrc 0.{m:06}"),
            None => String::new(),
        };
        let source = render_spec(period, replicas, hrel, srel, &lrc);
        let program = logrel::lang::parse(&source).unwrap();
        let sys = logrel::lang::elaborate(&program).unwrap();
        assert_sound(&sys, "random spec");
    }
}

/// Cross-validation against the dynamic layer: a Monte-Carlo campaign
/// under independent per-round host/sensor faults must land its ε-band
/// on every certified enclosure — `[λ̂ − ε, λ̂ + ε]` overlaps `[lo, hi]`.
#[test]
fn campaign_epsilon_band_overlaps_certified_interval() {
    let sys = ThreeTankSystem::new(Deployment::ReplicatedControllers);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let cert = certify(&sys.spec, &sys.arch, &sys.imp, None).unwrap();

    let analytic: Vec<Option<f64>> = cert.comms.iter().map(|r| Some(r.point)).collect();
    let config = CampaignConfig {
        batch: BatchConfig {
            replications: 8,
            rounds: 2_000,
            base_seed: 0xCE27,
            threads: 1,
        },
        monitor: MonitorConfig::default(),
        lanes: LaneMode::default(),
    };
    let report = run_campaign(
        &sim,
        &sys.spec,
        &Scenario::new(),
        sys.arch.host_count(),
        &config,
        |_rep| ReplicationContext {
            behaviors: build_behaviors(&sys, &params),
            environment: Box::new(ConstantEnvironment::new(Value::Float(0.25))),
            injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
        },
        &analytic,
    )
    .unwrap();

    for (cr, row) in report.comms.iter().zip(&cert.comms) {
        assert!(
            cr.empirical - cr.epsilon <= row.interval.hi()
                && row.interval.lo() <= cr.empirical + cr.epsilon,
            "`{}`: empirical {} ± {} misses certified [{}, {}]",
            row.name,
            cr.empirical,
            cr.epsilon,
            row.interval.lo(),
            row.interval.hi()
        );
    }
}

/// Renders the incremental-test spec with communicator `u` constrained at
/// the given LRC.
fn spec_with_lrc(lrc: &str) -> String {
    render_spec(10, 2, [9900, 9800, 9700], 9990, &format!("lrc {lrc}"))
}

/// Weakening the only LRC refine-reuses the certify query (the prior was
/// fully certified, so a looser threshold cannot change any verdict)
/// while the warm report stays byte-identical to a cold run.
#[test]
fn lrc_weakening_reuses_certify_query() {
    let base = analyze_source(&spec_with_lrc("0.9"), "inc.htl", None, &mut NoopSink);
    let db = base.db.unwrap();
    let weakened = spec_with_lrc("0.8");
    let warm = analyze_source(&weakened, "inc.htl", Some(&db), &mut NoopSink);
    let cold = analyze_source(&weakened, "inc.htl", None, &mut NoopSink);
    assert_eq!(warm.stdout, cold.stdout);
    assert_eq!(warm.stderr, cold.stderr);
    assert!(
        warm.stats.refine_reuses >= 1,
        "weakening must refine-reuse certify: {:?}",
        warm.stats
    );
    assert!(warm.stdout.contains("certified: yes"), "{}", warm.stdout);
}

/// Tightening the LRC invalidates the reuse argument — the prior verdict
/// says nothing about a *stricter* threshold — so certify recomputes, and
/// the recomputation is still byte-identical to a cold run.
#[test]
fn lrc_tightening_recomputes_certify_query() {
    let base = analyze_source(&spec_with_lrc("0.9"), "inc.htl", None, &mut NoopSink);
    let db = base.db.unwrap();
    let tightened = spec_with_lrc("0.95");
    let warm = analyze_source(&tightened, "inc.htl", Some(&db), &mut NoopSink);
    let cold = analyze_source(&tightened, "inc.htl", None, &mut NoopSink);
    assert_eq!(warm.stdout, cold.stdout);
    assert_eq!(warm.stderr, cold.stderr);
    assert_eq!(
        warm.stats.refine_reuses, 0,
        "tightening must not reuse certify: {:?}",
        warm.stats
    );
}
