#!/usr/bin/env bash
# Regenerate the golden `.expected` diagnostic files after an intentional
# renderer or lint change, then re-run the golden tests to confirm the
# blessed output is byte-stable.
#
# Usage: scripts/bless.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> blessing tests/assets/*.expected"
UPDATE_EXPECT=1 cargo test -q --test lint_golden > /dev/null

echo "==> re-checking blessed output"
cargo test -q --test lint_golden > /dev/null

echo "==> refreshing the bench trajectory point (BENCH_pr7.json)"
cargo run --release -q -p logrel-bench --bin bench_snapshot -- \
    --out BENCH_pr7.json --compare BENCH_baseline.json > /dev/null

git --no-pager diff --stat -- tests/assets BENCH_pr7.json || true
echo "bless: OK (review the diff above before committing)"
