#!/usr/bin/env bash
# Full verification: build, tests, lints (rustc + clippy + htlc lint).
#
# Usage: scripts/verify.sh
# Run from anywhere; operates on the repository containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo test -p logrel-sim --features validate (kernel self-certification)"
cargo test -q -p logrel-sim --features validate > /dev/null

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

HTLC=target/release/htlc

echo "==> htlc lint --deny examples/htl"
"$HTLC" lint --deny examples/htl/*.htl

# The shipped assets carry intentional warnings (unbound backup sensors),
# so they are linted without --deny; error-severity findings still fail.
echo "==> htlc lint assets"
"$HTLC" lint assets/*.htl

echo "==> htlc check examples/htl + assets"
for f in examples/htl/*.htl assets/*.htl; do
    "$HTLC" check "$f" > /dev/null
done

echo "==> htlc verify examples/htl + assets (translation validation)"
for f in examples/htl/*.htl assets/*.htl; do
    "$HTLC" verify "$f" > /dev/null
done

echo "==> htlc inject smoke (scenario campaign)"
"$HTLC" inject examples/htl/infusion_pump.htl examples/scenarios/pump_outage.scn 500 7 2 \
    > /dev/null

echo "==> htlc inject --metrics smoke (Prometheus + JSON exporters)"
METRICS_DIR=$(mktemp -d)
trap 'rm -rf "$METRICS_DIR"' EXIT
"$HTLC" inject --metrics "$METRICS_DIR/m.prom" \
    examples/htl/infusion_pump.htl examples/scenarios/pump_outage.scn 500 7 2 \
    > /dev/null
grep -q '^logrel_rounds_total ' "$METRICS_DIR/m.prom"
grep -q '^logrel_vote_' "$METRICS_DIR/m.prom"
python3 - "$METRICS_DIR/m.prom.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "logrel-metrics-v1", doc.get("schema")
assert doc["counters"]["logrel_rounds_total"] == 1000, doc["counters"]
assert "logrel_task_invocations_total" in doc["counters"]
PY

echo "==> htlc trace smoke (flight recorder)"
"$HTLC" trace examples/htl/infusion_pump.htl examples/scenarios/pump_outage.scn 200 7 \
    | grep -q '^flight recorder:'

echo "==> htlc certify examples/htl + assets (every shipped spec CERTIFIED)"
for f in examples/htl/*.htl assets/*.htl; do
    "$HTLC" certify "$f" | grep -q '^verdict: CERTIFIED$'
done

echo "==> htlc certify exit codes (the refuted corpus spec must fail)"
! "$HTLC" certify tests/assets/certify/certify_refuted.htl > /dev/null 2>&1

echo "==> htlc certify/lint --format json (schema validation)"
"$HTLC" certify --format json assets/three_tank.htl > "$METRICS_DIR/cert.json"
"$HTLC" lint --format json tests/assets/lint_dead_comm.htl \
    > "$METRICS_DIR/diag.json" || true
python3 - "$METRICS_DIR/cert.json" "$METRICS_DIR/diag.json" <<'PY'
import json, sys
cert = json.load(open(sys.argv[1]))
assert cert["schema"] == "logrel-certificate-v1", cert.get("schema")
assert cert["overall"] == "CERTIFIED", cert["overall"]
rows = [c for c in cert["communicators"] if c["lrc"] is not None]
assert rows and all(c["lo"] <= c["point"] <= c["hi"] for c in cert["communicators"])
diag = json.load(open(sys.argv[2]))
assert diag["schema"] == "logrel-diagnostics-v1", diag.get("schema")
assert diag["diagnostics"], "lint corpus file must produce findings"
PY

echo "==> htlc certify --metrics smoke (certification counters)"
"$HTLC" certify --metrics "$METRICS_DIR/cert.prom" assets/three_tank.htl > /dev/null
grep -q '^logrel_certify_specs_total 1$' "$METRICS_DIR/cert.prom"
grep -q '^logrel_certify_lrc_certified_total ' "$METRICS_DIR/cert.prom"

echo "==> scenario engine tests (parser proptests + determinism)"
cargo test -q -p logrel-sim scenario > /dev/null
cargo test -q --test fault_scenarios > /dev/null
cargo test -q --test fuzz_determinism > /dev/null

echo "==> observability tests (pinned metrics + thread-count invariance)"
cargo test -q --test observability > /dev/null

echo "==> bit-sliced kernel differential tests (lane-vs-scalar bit-identity)"
cargo test -q --test bitslice_equivalence > /dev/null

echo "==> htlc inject --lanes smoke (bit-sliced and scalar paths agree)"
"$HTLC" inject --lanes off --metrics "$METRICS_DIR/scalar.prom" \
    examples/htl/infusion_pump.htl examples/scenarios/pump_outage.scn 500 7 2 \
    > /dev/null
"$HTLC" inject --lanes 64 --metrics "$METRICS_DIR/sliced.prom" \
    examples/htl/infusion_pump.htl examples/scenarios/pump_outage.scn 500 7 2 \
    > /dev/null
grep -q '^logrel_bitslice_lanes 1$' "$METRICS_DIR/scalar.prom"
grep -q '^logrel_bitslice_lanes 64$' "$METRICS_DIR/sliced.prom"
diff <(grep -v '^logrel_bitslice_lanes' "$METRICS_DIR/scalar.prom" | grep -v '_seconds') \
     <(grep -v '^logrel_bitslice_lanes' "$METRICS_DIR/sliced.prom" | grep -v '_seconds')

echo "==> htlc inject smoke (partition + wear-out scenarios)"
"$HTLC" inject examples/htl/infusion_pump.htl examples/scenarios/partition.scn 400 7 2 \
    > /dev/null
"$HTLC" inject examples/htl/infusion_pump.htl examples/scenarios/wearout.scn 400 7 2 \
    > /dev/null

echo "==> htlc fuzz smoke (deterministic coverage-guided campaign)"
FUZZ_DIR=$(mktemp -d)
trap 'rm -rf "$METRICS_DIR" "$FUZZ_DIR"' EXIT
"$HTLC" fuzz assets/steer_by_wire.htl --iters 200 --seed 7 \
    --corpus "$FUZZ_DIR/a" > /dev/null
"$HTLC" fuzz assets/steer_by_wire.htl --iters 200 --seed 7 \
    --corpus "$FUZZ_DIR/b" > /dev/null
# Same seed, byte-identical artifacts.
diff -r "$FUZZ_DIR/a" "$FUZZ_DIR/b"
# The corpus grew beyond the seed scenario and found at least one miss.
test "$(ls "$FUZZ_DIR/a" | grep -c '^cov-')" -ge 2
test "$(ls "$FUZZ_DIR/a" | grep -c '^miss-')" -ge 1
# The shrunk reproducer replays as a monitor miss through htlc inject:
# some communicator row shows ground-truth violations with zero dips
# caught in time (last two columns: viol > 0, pre-alarm == 0).
"$HTLC" inject assets/steer_by_wire.htl "$FUZZ_DIR/a/miss-000.scn" 400 12648430 4 \
    | awk 'NF >= 2 && $(NF-1) ~ /^[0-9]+$/ && $NF ~ /^[0-9]+$/ && $(NF-1) > 0 && $NF == 0 {found=1}
           END {exit !found}'
# The committed example reproducer stays a live miss as well.
"$HTLC" inject assets/steer_by_wire.htl examples/scenarios/steer_monitor_miss.scn \
    400 12648430 4 \
    | awk 'NF >= 2 && $(NF-1) ~ /^[0-9]+$/ && $NF ~ /^[0-9]+$/ && $(NF-1) > 0 && $NF == 0 {found=1}
           END {exit !found}'

echo "==> incremental-equivalence gate (warm analyze ≡ cold, byte-for-byte)"
INCR_DIR=$(mktemp -d)
trap 'rm -rf "$METRICS_DIR" "$FUZZ_DIR" "$INCR_DIR"' EXIT
cp assets/steer_by_wire.htl "$INCR_DIR/spec.htl"
# Cold run on the base spec seeds the cache.
"$HTLC" analyze "$INCR_DIR/spec.htl" > /dev/null 2>&1
# Edit the spec three ways: a metric tightening (refinement reuse), a
# metric loosening (recompute), and a module edit (dirties the lint
# cone). After each, the warm run against the stale cache must be
# byte-identical to a cold run on the edited spec.
for edit in 's/wcet torque on ecu_a 5;/wcet torque on ecu_a 4;/' \
            's/wcet torque on ecu_a 4;/wcet torque on ecu_a 6;/' \
            's/invoke filter reads angle\[0\]/invoke filter reads  angle[0]/'; do
    sed -i "$edit" "$INCR_DIR/spec.htl"
    "$HTLC" analyze "$INCR_DIR/spec.htl" \
        > "$INCR_DIR/warm.out" 2> "$INCR_DIR/warm.err"
    rm -f "$INCR_DIR/spec.htl.logrel-cache"
    "$HTLC" analyze "$INCR_DIR/spec.htl" \
        > "$INCR_DIR/cold.out" 2> "$INCR_DIR/cold.err"
    diff "$INCR_DIR/warm.out" "$INCR_DIR/cold.out"
    diff "$INCR_DIR/warm.err" "$INCR_DIR/cold.err"
done
# Same property for the cached whole-command report: lint --incremental
# must render identically to a cold lint after an edit.
cp assets/three_tank.htl "$INCR_DIR/lintspec.htl"
"$HTLC" lint --incremental "$INCR_DIR/lintspec.htl" > /dev/null 2>&1 || true
sed -i 's/period 500/period 250/' "$INCR_DIR/lintspec.htl"
"$HTLC" lint --incremental "$INCR_DIR/lintspec.htl" \
    > "$INCR_DIR/lint_warm.out" 2> "$INCR_DIR/lint_warm.err" || true
rm -f "$INCR_DIR/lintspec.htl.logrel-cache"
"$HTLC" lint "$INCR_DIR/lintspec.htl" \
    > "$INCR_DIR/lint_cold.out" 2> "$INCR_DIR/lint_cold.err" || true
diff "$INCR_DIR/lint_warm.out" "$INCR_DIR/lint_cold.out"
diff "$INCR_DIR/lint_warm.err" "$INCR_DIR/lint_cold.err"
# Same property for certify --incremental: after an LRC weakening (the
# refinement-reuse path) the warm certificate must be byte-identical to
# a cold run on the edited spec.
cp assets/three_tank.htl "$INCR_DIR/certspec.htl"
"$HTLC" certify --incremental "$INCR_DIR/certspec.htl" > /dev/null 2>&1
sed -i 's/lrc 0.998/lrc 0.99/' "$INCR_DIR/certspec.htl"
"$HTLC" certify --incremental "$INCR_DIR/certspec.htl" \
    > "$INCR_DIR/cert_warm.out" 2> "$INCR_DIR/cert_warm.err"
rm -f "$INCR_DIR/certspec.htl.logrel-cache"
"$HTLC" certify "$INCR_DIR/certspec.htl" \
    > "$INCR_DIR/cert_cold.out" 2> "$INCR_DIR/cert_cold.err"
diff "$INCR_DIR/cert_warm.out" "$INCR_DIR/cert_cold.out"
diff "$INCR_DIR/cert_warm.err" "$INCR_DIR/cert_cold.err"
# A corrupt cache must fall back to cold analysis, not fail.
printf 'garbage' > "$INCR_DIR/spec.htl.logrel-cache"
"$HTLC" analyze "$INCR_DIR/spec.htl" > "$INCR_DIR/fallback.out" 2> /dev/null
diff "$INCR_DIR/fallback.out" "$INCR_DIR/cold.out"

echo "==> campaign service tests (byte-equality, cache, backpressure)"
cargo test -q --test serve > /dev/null

echo "==> htlc serve --stdin smoke (job service survives malformed jobs)"
SERVE_DIR=$(mktemp -d)
trap 'rm -rf "$METRICS_DIR" "$FUZZ_DIR" "$INCR_DIR" "$SERVE_DIR"' EXIT
# Three jobs down one pipe: a fresh compile, a malformed request, and a
# resubmission of the first spec. The malformed line must yield a
# structured rejection — not kill the service — and the pipe must drain
# to a clean exit 0 at EOF.
"$HTLC" serve --stdin --workers 2 > "$SERVE_DIR/out.ndjson" <<'JOBS'
{"schema":"logrel-job-v1","id":"smoke-1","spec_path":"examples/htl/infusion_pump.htl","scenario_path":"examples/scenarios/pump_outage.scn","rounds":500,"replications":2,"seed":7}
{"schema":"logrel-job-v1","id":"smoke-bad","spec_path":"examples/htl/infusion_pump.htl"}
{"schema":"logrel-job-v1","id":"smoke-2","spec_path":"examples/htl/infusion_pump.htl","scenario_path":"examples/scenarios/pump_outage.scn","rounds":500,"replications":2,"seed":7}
JOBS
python3 - "$SERVE_DIR/out.ndjson" "$METRICS_DIR/m.prom.json" <<'PY'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 5, f"expected 5 response lines, got {len(lines)}"
m1, s1, rej, m2, s2 = lines
assert m1["schema"] == "logrel-metrics-v1", m1.get("schema")
assert (s1["id"], s1["status"], s1["cache"]) == ("smoke-1", "done", "miss"), s1
assert (rej["id"], rej["status"], rej["code"]) == ("smoke-bad", "rejected", "S001"), rej
assert (s2["id"], s2["status"], s2["cache"]) == ("smoke-2", "done", "hit"), s2
assert m1 == m2, "resubmitted job must reproduce the metrics byte-for-byte"
# The served registry equals the standalone `htlc inject --metrics`
# export of the same (spec, scenario, seed, lanes) campaign, up to the
# wall-clock span gauges a service job never records.
def strip(d):
    return {k: strip(v) if isinstance(v, dict) else v
            for k, v in d.items() if not k.endswith("_seconds")}
inj = json.load(open(sys.argv[2]))
assert strip(inj) == strip(m1), "serve output diverged from htlc inject"
PY

echo "==> bench_snapshot regression gate (vs BENCH_baseline.json)"
# Absolute throughput swings up to 2x between phases on the shared VM,
# so the absolute gate runs wide (coarse smoke alarm); the paired-ratio
# floors/ceilings inside bench_snapshot are drift-immune and stay tight.
cargo run --release -q -p logrel-bench --bin bench_snapshot -- \
    --out "$METRICS_DIR/BENCH_current.json" --compare BENCH_baseline.json \
    --tolerance 0.40 > /dev/null

echo "verify: OK"
