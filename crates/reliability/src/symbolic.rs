//! Symbolic SRGs: exact polynomial expressions over component symbols.
//!
//! The §3 induction is re-run with a polynomial [`Poly`] in place of every
//! `f64`, over one symbol per *replica unit* (`task@host`, carrying the
//! derated reliability `hrel · brel`) and per *sensor*. This symbol
//! granularity deliberately matches the unit names of
//! [`crate::importance::architecture_importance`], so the pinned Birnbaum
//! measure computed here is term-for-term comparable with the numeric RBD
//! measure (the crate tests enforce the equality on the shipped examples).
//!
//! Two subtleties the polynomial view makes explicit:
//!
//! * Like the paper's induction (and the RBD expansion it mirrors), inputs
//!   reaching a task along several paths are treated as independent — a
//!   shared replica symbol then appears with exponent > 1, and the
//!   polynomial is *not* multilinear. [`Poly::is_multilinear`] reports
//!   this; DESIGN.md §13 discusses the consequences.
//! * Because of possible higher powers, Birnbaum importance is defined as
//!   the pinned difference `f(x := 1) − f(x := 0)` ([`pinned_birnbaum`]),
//!   which coincides with `∂f/∂x` exactly when the polynomial is
//!   multilinear in `x` and with the RBD pinning semantics always.

use crate::error::ReliabilityError;
use crate::srg::analysis_order;
use logrel_core::{
    Architecture, CommunicatorId, FailureModel, HostId, Implementation, SensorId, Specification,
    TaskId,
};
use std::collections::{BTreeMap, BTreeSet};

/// A reliability symbol: one replica unit or one sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// The replica of `task` on `host`, valued at `hrel(host) · brel`.
    Replica(TaskId, HostId),
    /// A sensor, valued at `srel`.
    Sensor(SensorId),
}

impl Sym {
    /// The unit label used by diagnostics, matching the RBD unit names of
    /// [`crate::srg::communicator_block`] (`task@host` / sensor name).
    pub fn label(self, spec: &Specification, arch: &Architecture) -> String {
        match self {
            Sym::Replica(t, h) => {
                format!("{}@{}", spec.task(t).name(), arch.host(h).name())
            }
            Sym::Sensor(s) => arch.sensor(s).name().to_owned(),
        }
    }

    /// The declared reliability of the underlying component alone (`hrel`
    /// for a replica, `srel` for a sensor) — the quantity a degradation
    /// margin is measured against.
    pub fn component_reliability(self, arch: &Architecture) -> f64 {
        match self {
            Sym::Replica(_, h) => arch.host(h).reliability().get(),
            Sym::Sensor(s) => arch.sensor(s).reliability().get(),
        }
    }
}

/// A monomial: symbol → exponent (empty map is the constant monomial).
pub type Monomial = BTreeMap<Sym, u32>;

/// A polynomial with `f64` coefficients over [`Sym`] variables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, f64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: f64) -> Poly {
        let mut terms = BTreeMap::new();
        if c != 0.0 {
            terms.insert(Monomial::new(), c);
        }
        Poly { terms }
    }

    /// The polynomial `x` for a single symbol.
    pub fn var(sym: Sym) -> Poly {
        let mut m = Monomial::new();
        m.insert(sym, 1);
        Poly { terms: BTreeMap::from([(m, 1.0)]) }
    }

    fn insert_term(terms: &mut BTreeMap<Monomial, f64>, m: Monomial, c: f64) {
        use std::collections::btree_map::Entry;
        // Exact-zero coefficients are dropped so the representation stays
        // canonical and `PartialEq` is meaningful.
        match terms.entry(m) {
            Entry::Vacant(v) => {
                if c != 0.0 {
                    v.insert(c);
                }
            }
            Entry::Occupied(mut o) => {
                let sum = o.get() + c;
                if sum == 0.0 {
                    o.remove();
                } else {
                    *o.get_mut() = sum;
                }
            }
        }
    }

    /// Polynomial sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut terms = self.terms.clone();
        for (m, &c) in &other.terms {
            Poly::insert_term(&mut terms, m.clone(), c);
        }
        Poly { terms }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Poly {
        if k == 0.0 {
            return Poly::zero();
        }
        Poly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), c * k)).collect(),
        }
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut terms = BTreeMap::new();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let mut m = ma.clone();
                for (&s, &e) in mb {
                    *m.entry(s).or_insert(0) += e;
                }
                Poly::insert_term(&mut terms, m, ca * cb);
            }
        }
        Poly { terms }
    }

    /// `1 − p`.
    pub fn one_minus(&self) -> Poly {
        Poly::constant(1.0).add(&self.scale(-1.0))
    }

    /// Series combination `Π p_i` (empty product is `1`).
    pub fn series<'a, I: IntoIterator<Item = &'a Poly>>(items: I) -> Poly {
        items
            .into_iter()
            .fold(Poly::constant(1.0), |acc, p| acc.mul(p))
    }

    /// Parallel combination `1 − Π (1 − p_i)`.
    pub fn parallel<'a, I: IntoIterator<Item = &'a Poly>>(items: I) -> Poly {
        items
            .into_iter()
            .fold(Poly::constant(1.0), |acc, p| acc.mul(&p.one_minus()))
            .one_minus()
    }

    /// Evaluates under an assignment of symbol values.
    pub fn eval(&self, assign: &impl Fn(Sym) -> f64) -> f64 {
        self.terms
            .iter()
            .map(|(m, c)| {
                c * m
                    .iter()
                    .map(|(&s, &e)| assign(s).powi(e as i32))
                    .product::<f64>()
            })
            .sum()
    }

    /// Substitutes a constant for one symbol, eliminating it.
    pub fn substitute(&self, sym: Sym, value: f64) -> Poly {
        let mut terms = BTreeMap::new();
        for (m, &c) in &self.terms {
            let mut m = m.clone();
            let coeff = match m.remove(&sym) {
                Some(e) => c * value.powi(e as i32),
                None => c,
            };
            if coeff != 0.0 {
                Poly::insert_term(&mut terms, m, coeff);
            }
        }
        Poly { terms }
    }

    /// The exact partial derivative `∂p/∂sym`.
    pub fn partial(&self, sym: Sym) -> Poly {
        let mut terms = BTreeMap::new();
        for (m, &c) in &self.terms {
            let mut m = m.clone();
            if let Some(e) = m.remove(&sym) {
                if e > 1 {
                    m.insert(sym, e - 1);
                }
                Poly::insert_term(&mut terms, m, c * f64::from(e));
            }
        }
        Poly { terms }
    }

    /// All symbols occurring with a non-zero coefficient.
    pub fn symbols(&self) -> BTreeSet<Sym> {
        self.terms.keys().flat_map(|m| m.keys().copied()).collect()
    }

    /// The largest exponent of `sym` across all terms.
    pub fn degree_in(&self, sym: Sym) -> u32 {
        self.terms
            .keys()
            .filter_map(|m| m.get(&sym).copied())
            .max()
            .unwrap_or(0)
    }

    /// Whether every symbol occurs with exponent ≤ 1 — the condition under
    /// which box extrema lie exactly at corners and the pinned Birnbaum
    /// difference equals the partial derivative.
    pub fn is_multilinear(&self) -> bool {
        self.terms.keys().all(|m| m.values().all(|&e| e <= 1))
    }

    /// Number of terms (for diagnostics on expression blowup).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }
}

/// Birnbaum importance as the pinned difference `f(x := 1) − f(x := 0)`,
/// matching the RBD pinning semantics of [`crate::importance`] even when
/// the polynomial is not multilinear in `sym`.
pub fn pinned_birnbaum(poly: &Poly, sym: Sym, assign: &impl Fn(Sym) -> f64) -> f64 {
    poly.substitute(sym, 1.0).eval(assign) - poly.substitute(sym, 0.0).eval(assign)
}

/// The standard assignment: a replica symbol is worth `hrel · brel`, a
/// sensor symbol `srel`.
pub fn standard_assignment(arch: &Architecture) -> impl Fn(Sym) -> f64 + '_ {
    let brel = arch.broadcast_reliability().get();
    move |sym| match sym {
        Sym::Replica(_, h) => arch.host(h).reliability().get() * brel,
        Sym::Sensor(s) => arch.sensor(s).reliability().get(),
    }
}

/// Symbolic SRG expressions for every task and communicator.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicSrgReport {
    task: Vec<Poly>,
    comm: Vec<Poly>,
}

impl SymbolicSrgReport {
    /// The symbolic `λ_t`.
    pub fn task(&self, t: TaskId) -> &Poly {
        &self.task[t.index()]
    }

    /// The symbolic `λ_c`.
    pub fn communicator(&self, c: CommunicatorId) -> &Poly {
        &self.comm[c.index()]
    }
}

/// Runs the §3 induction symbolically. Only the *structure* (mappings,
/// bindings, failure models) is consulted; architecture reliabilities
/// enter later through an assignment such as [`standard_assignment`].
///
/// # Errors
///
/// Same conditions as [`crate::srg::compute_srgs`].
pub fn compute_symbolic_srgs(
    spec: &Specification,
    imp: &Implementation,
) -> Result<SymbolicSrgReport, ReliabilityError> {
    let mut task = Vec::with_capacity(spec.task_count());
    for t in spec.task_ids() {
        let replicas: Vec<Poly> = imp
            .hosts_of(t)
            .iter()
            .map(|&h| Poly::var(Sym::Replica(t, h)))
            .collect();
        if replicas.is_empty() {
            return Err(ReliabilityError::Structure {
                detail: format!("task `{}` has no replicas", spec.task(t).name()),
            });
        }
        task.push(Poly::parallel(&replicas));
    }
    let order = analysis_order(spec)?;
    let mut comm: Vec<Option<Poly>> = vec![None; spec.communicator_count()];
    for &c in &order {
        let lambda = if spec.is_sensor_input(c) {
            let sensors = imp.sensors_of(c);
            if sensors.is_empty() {
                return Err(ReliabilityError::UnboundInput {
                    communicator: spec.communicator(c).name().to_owned(),
                });
            }
            let vars: Vec<Poly> = sensors.iter().map(|&s| Poly::var(Sym::Sensor(s))).collect();
            Poly::parallel(&vars)
        } else if let Some(t) = spec.writer(c) {
            let lt = &task[t.index()];
            match spec.task(t).failure_model() {
                FailureModel::Independent => lt.clone(),
                FailureModel::Series => {
                    let inputs: Vec<Poly> = spec
                        .task(t)
                        .input_comm_set()
                        .into_iter()
                        .map(|c2| comm[c2.index()].clone().expect("topological order"))
                        .collect();
                    Poly::series(std::iter::once(lt).chain(inputs.iter()))
                }
                FailureModel::Parallel => {
                    let inputs: Vec<Poly> = spec
                        .task(t)
                        .input_comm_set()
                        .into_iter()
                        .map(|c2| comm[c2.index()].clone().expect("topological order"))
                        .collect();
                    let any_input = Poly::parallel(&inputs);
                    Poly::series([lt, &any_input])
                }
            }
        } else {
            Poly::constant(1.0)
        };
        comm[c.index()] = Some(lambda);
    }
    Ok(SymbolicSrgReport {
        task,
        comm: comm.into_iter().map(|p| p.expect("all computed")).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym::Sensor(SensorId::new(i))
    }

    #[test]
    fn constant_and_var_round_trip() {
        let assign = |_: Sym| 0.5;
        assert_eq!(Poly::constant(3.0).eval(&assign), 3.0);
        assert_eq!(Poly::var(s(0)).eval(&assign), 0.5);
        assert_eq!(Poly::zero().eval(&assign), 0.0);
    }

    #[test]
    fn arithmetic_matches_numeric_evaluation() {
        let x = Poly::var(s(0));
        let y = Poly::var(s(1));
        let expr = x.mul(&y).add(&x.one_minus().scale(0.25));
        let assign = |sym: Sym| if sym == s(0) { 0.9 } else { 0.8 };
        let expect = 0.9 * 0.8 + (1.0 - 0.9) * 0.25;
        assert!((expr.eval(&assign) - expect).abs() < 1e-15);
    }

    #[test]
    fn cancelling_terms_are_removed() {
        let x = Poly::var(s(0));
        let zero = x.add(&x.scale(-1.0));
        assert_eq!(zero, Poly::zero());
        assert_eq!(zero.term_count(), 0);
    }

    #[test]
    fn partial_derivative_is_exact() {
        // p = x²y + 2x: ∂p/∂x = 2xy + 2, ∂p/∂y = x².
        let x = Poly::var(s(0));
        let y = Poly::var(s(1));
        let p = x.mul(&x).mul(&y).add(&x.scale(2.0));
        let assign = |sym: Sym| if sym == s(0) { 0.5 } else { 0.25 };
        assert!((p.partial(s(0)).eval(&assign) - (2.0 * 0.5 * 0.25 + 2.0)).abs() < 1e-15);
        assert!((p.partial(s(1)).eval(&assign) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn substitute_eliminates_symbol() {
        let x = Poly::var(s(0));
        let y = Poly::var(s(1));
        let p = x.mul(&x).mul(&y);
        let q = p.substitute(s(0), 0.5);
        assert!(!q.symbols().contains(&s(0)));
        assert!((q.eval(&|_| 0.8) - 0.25 * 0.8).abs() < 1e-15);
        // Substituting zero kills every term containing the symbol.
        assert_eq!(p.substitute(s(0), 0.0), Poly::zero());
    }

    #[test]
    fn multilinearity_detection() {
        let x = Poly::var(s(0));
        let y = Poly::var(s(1));
        assert!(x.mul(&y).is_multilinear());
        assert!(!x.mul(&x).is_multilinear());
        assert_eq!(x.mul(&x).degree_in(s(0)), 2);
        assert_eq!(x.mul(&y).degree_in(s(0)), 1);
        assert_eq!(Poly::constant(1.0).degree_in(s(0)), 0);
    }

    #[test]
    fn pinned_birnbaum_on_multilinear_equals_partial() {
        // Parallel pair: f = 1 − (1−x)(1−y); ∂f/∂x = 1 − y.
        let f = Poly::parallel(&[Poly::var(s(0)), Poly::var(s(1))]);
        assert!(f.is_multilinear());
        let assign = |sym: Sym| if sym == s(0) { 0.9 } else { 0.8 };
        let b = pinned_birnbaum(&f, s(0), &assign);
        let d = f.partial(s(0)).eval(&assign);
        assert!((b - d).abs() < 1e-15);
        assert!((b - 0.2).abs() < 1e-15);
    }

    #[test]
    fn pinned_birnbaum_on_square_differs_from_partial() {
        // f = x²: pinned difference is 1 − 0 = 1, derivative is 2x.
        let x = Poly::var(s(0));
        let f = x.mul(&x);
        let assign = |_: Sym| 0.9;
        assert!((pinned_birnbaum(&f, s(0), &assign) - 1.0).abs() < 1e-15);
        assert!((f.partial(s(0)).eval(&assign) - 1.8).abs() < 1e-15);
    }

    #[test]
    fn series_parallel_match_numeric_identities() {
        let polys: Vec<Poly> = (0..3).map(|i| Poly::var(s(i))).collect();
        let assign = |sym: Sym| match sym {
            Sym::Sensor(id) => [0.9, 0.8, 0.7][id.index()],
            Sym::Replica(..) => unreachable!(),
        };
        let ser = Poly::series(&polys).eval(&assign);
        assert!((ser - 0.9 * 0.8 * 0.7).abs() < 1e-15);
        let par = Poly::parallel(&polys).eval(&assign);
        assert!((par - (1.0 - 0.1 * 0.2 * 0.3)).abs() < 1e-15);
    }
}
