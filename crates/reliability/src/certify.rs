//! Static reliability certification: sound three-valued LRC verdicts,
//! per-component degradation margins and bottleneck attribution.
//!
//! [`certify`] combines the three analysis views of one system:
//!
//! * the point SRGs of [`crate::srg::compute_srgs`] (what the paper's
//!   Proposition 1 check evaluates),
//! * the directed-rounding enclosures of
//!   [`crate::interval::compute_interval_srgs`] (what can actually be
//!   *certified*), optionally re-run over a uniform reliability
//!   degradation box `[r − δ, r]`, and
//! * the symbolic polynomials of
//!   [`crate::symbolic::compute_symbolic_srgs`], which yield the Birnbaum
//!   bottleneck of each constrained communicator and, via monotone
//!   bisection, how far each host/sensor may degrade before the first LRC
//!   breaks.

use crate::error::ReliabilityError;
use crate::interval::{
    compute_degraded_srgs, compute_interval_srgs, CertStatus, Interval,
};
use crate::srg::compute_srgs;
use crate::symbolic::{
    compute_symbolic_srgs, pinned_birnbaum, standard_assignment, Poly, Sym,
};
use logrel_core::{
    Architecture, CommunicatorId, HostId, Implementation, SensorId, Specification,
};
use std::collections::BTreeSet;

/// A certified verdict below this slack (`lo − µ`) is reported as
/// near-threshold: one more ulp of pessimism could flip it.
pub const NEAR_THRESHOLD_SLACK: f64 = 1e-9;

/// The per-communicator row of a [`Certificate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CommCertificate {
    /// The communicator.
    pub comm: CommunicatorId,
    /// Its declared name.
    pub name: String,
    /// The point-`f64` SRG (what `compute_srgs` reports).
    pub point: f64,
    /// The sound enclosure of the true SRG.
    pub interval: Interval,
    /// The declared LRC `µ`, if any.
    pub lrc: Option<f64>,
    /// Three-valued verdict of `interval` against `lrc`.
    pub status: Option<CertStatus>,
    /// `interval.lo() − µ`: how much certified reliability is to spare
    /// (negative when not certified).
    pub slack: Option<f64>,
    /// Enclosure under the degradation box, when one was requested.
    pub box_interval: Option<Interval>,
    /// Verdict under the degradation box, when one was requested.
    pub box_status: Option<CertStatus>,
    /// The component with the largest Birnbaum importance for this SRG —
    /// the first place to spend extra reliability.
    pub bottleneck: Option<String>,
    /// Whether the symbolic SRG is multilinear (no component reached along
    /// several dependency paths).
    pub multilinear: bool,
}

/// How far one component may degrade before some LRC stops being met.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentMargin {
    /// Host or sensor name.
    pub name: String,
    /// Declared reliability of the component.
    pub reliability: f64,
    /// Largest admissible drop in that reliability (conservative: computed
    /// by bisection on the side of under-approximation).
    pub margin: f64,
}

/// The full output of [`certify`].
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// One row per communicator, in declaration order.
    pub comms: Vec<CommCertificate>,
    /// Degradation margins for every component appearing in a constrained
    /// SRG, hosts first, each in declaration order.
    pub margins: Vec<ComponentMargin>,
    /// The degradation box half-width, when robust certification ran.
    pub box_delta: Option<f64>,
    /// Worst point-architecture verdict over all constrained
    /// communicators ([`CertStatus::Certified`] when none carry an LRC).
    pub overall: CertStatus,
    /// Worst verdict under the box, when one was requested.
    pub box_overall: Option<CertStatus>,
    /// Number of communicators carrying an LRC.
    pub constrained: usize,
}

impl Certificate {
    /// Count of constrained communicators with the given verdict.
    pub fn count(&self, status: CertStatus) -> usize {
        self.comms
            .iter()
            .filter(|c| c.status == Some(status))
            .count()
    }

    /// The smallest certified slack across constrained communicators.
    pub fn min_slack(&self) -> Option<f64> {
        self.comms
            .iter()
            .filter_map(|c| c.slack)
            .min_by(f64::total_cmp)
    }
}

/// Statically certifies every LRC of the system; see the module docs.
///
/// # Errors
///
/// Same conditions as [`crate::srg::compute_srgs`].
pub fn certify(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
    box_delta: Option<f64>,
) -> Result<Certificate, ReliabilityError> {
    let point = compute_srgs(spec, arch, imp)?;
    let intervals = compute_interval_srgs(spec, arch, imp)?;
    let boxed = box_delta
        .map(|d| compute_degraded_srgs(spec, arch, imp, d))
        .transpose()?;
    let symbolic = compute_symbolic_srgs(spec, imp)?;
    let assign = standard_assignment(arch);
    let brel = arch.broadcast_reliability().get();

    let mut comms = Vec::with_capacity(spec.communicator_count());
    let mut overall = CertStatus::Certified;
    let mut box_overall = box_delta.map(|_| CertStatus::Certified);
    let mut constrained = 0usize;
    for c in spec.communicator_ids() {
        let interval = intervals.communicator(c);
        let lrc = spec.communicator(c).lrc().map(|m| m.get());
        let poly = symbolic.communicator(c);
        let status = lrc.map(|mu| interval.certify(mu));
        let box_interval = boxed.as_ref().map(|b| b.communicator(c));
        let box_status = match (box_interval, lrc) {
            (Some(b), Some(mu)) => Some(b.certify(mu)),
            _ => None,
        };
        if let Some(s) = status {
            constrained += 1;
            overall = overall.min(s);
            if let (Some(acc), Some(bs)) = (box_overall, box_status) {
                box_overall = Some(acc.min(bs));
            }
        }
        let bottleneck = if lrc.is_some() {
            bottleneck_of(poly, spec, arch, &assign)
        } else {
            None
        };
        comms.push(CommCertificate {
            comm: c,
            name: spec.communicator(c).name().to_owned(),
            point: point.communicator(c).get(),
            interval,
            lrc,
            status,
            slack: lrc.map(|mu| interval.lo() - mu),
            box_interval,
            box_status,
            bottleneck,
            multilinear: poly.is_multilinear(),
        });
    }

    let margins =
        component_margins(arch, &symbolic_constrained(spec, &symbolic), brel, &assign);

    Ok(Certificate {
        comms,
        margins,
        box_delta,
        overall,
        box_overall,
        constrained,
    })
}

/// The `(µ, poly)` pairs of every constrained communicator.
fn symbolic_constrained<'a>(
    spec: &Specification,
    symbolic: &'a crate::symbolic::SymbolicSrgReport,
) -> Vec<(f64, &'a Poly)> {
    spec.communicator_ids()
        .filter_map(|c| {
            spec.communicator(c)
                .lrc()
                .map(|mu| (mu.get(), symbolic.communicator(c)))
        })
        .collect()
}

/// The symbol with the largest pinned Birnbaum importance, ties broken by
/// the lexicographically smallest label.
fn bottleneck_of(
    poly: &Poly,
    spec: &Specification,
    arch: &Architecture,
    assign: &impl Fn(Sym) -> f64,
) -> Option<String> {
    let mut best: Option<(f64, String)> = None;
    for sym in poly.symbols() {
        let b = pinned_birnbaum(poly, sym, assign);
        let label = sym.label(spec, arch);
        let better = match &best {
            None => true,
            Some((bb, bl)) => match b.total_cmp(bb) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => label < *bl,
                std::cmp::Ordering::Less => false,
            },
        };
        if better {
            best = Some((b, label));
        }
    }
    best.map(|(_, l)| l)
}

/// Margins for every host/sensor occurring in some constrained SRG.
fn component_margins(
    arch: &Architecture,
    constrained: &[(f64, &Poly)],
    brel: f64,
    assign: &impl Fn(Sym) -> f64,
) -> Vec<ComponentMargin> {
    let mut hosts: BTreeSet<HostId> = BTreeSet::new();
    let mut sensors: BTreeSet<SensorId> = BTreeSet::new();
    for (_, poly) in constrained {
        for sym in poly.symbols() {
            match sym {
                Sym::Replica(_, h) => {
                    hosts.insert(h);
                }
                Sym::Sensor(s) => {
                    sensors.insert(s);
                }
            }
        }
    }
    let mut margins = Vec::new();
    for h in hosts {
        let p = arch.host(h).reliability().get();
        let margin = constrained
            .iter()
            .map(|&(mu, poly)| {
                margin_by_bisection(mu, p, |v| {
                    poly.eval(&|sym| match sym {
                        Sym::Replica(_, h2) if h2 == h => v * brel,
                        other => assign(other),
                    })
                })
            })
            .fold(p, f64::min);
        margins.push(ComponentMargin {
            name: arch.host(h).name().to_owned(),
            reliability: p,
            margin,
        });
    }
    for s in sensors {
        let p = arch.sensor(s).reliability().get();
        let margin = constrained
            .iter()
            .map(|&(mu, poly)| {
                margin_by_bisection(mu, p, |v| {
                    poly.eval(&|sym| match sym {
                        Sym::Sensor(s2) if s2 == s => v,
                        other => assign(other),
                    })
                })
            })
            .fold(p, f64::min);
        margins.push(ComponentMargin {
            name: arch.sensor(s).name().to_owned(),
            reliability: p,
            margin,
        });
    }
    margins
}

/// The largest `d` such that degrading the component from `p` to `p − d`
/// keeps `g ≥ µ`, found by bisection on the monotone nondecreasing `g`.
/// Conservative: the returned margin never overshoots the true threshold.
fn margin_by_bisection(mu: f64, p: f64, g: impl Fn(f64) -> f64) -> f64 {
    if g(0.0) >= mu {
        return p;
    }
    if g(p) < mu {
        return 0.0;
    }
    // Invariant: g(lo) < µ ≤ g(hi).
    let (mut lo, mut hi) = (0.0f64, p);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if g(mid) >= mu {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    p - hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        CommunicatorDecl, HostDecl, Reliability, SensorDecl, TaskDecl, ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    /// sensor → s → ctrl (two replicas) → u with the given LRC on `u`.
    fn system(lrc: f64) -> (Specification, Architecture, Implementation) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(
                CommunicatorDecl::new("u", ValueType::Float, 10)
                    .unwrap()
                    .with_lrc(r(lrc)),
            )
            .unwrap();
        let t = sb.task(TaskDecl::new("ctrl").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.99))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.98))).unwrap();
        let sen = ab.sensor(SensorDecl::new("sen", r(0.999))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h1, h2])
            .bind_sensor(s, sen)
            .build(&spec, &arch)
            .unwrap();
        (spec, arch, imp)
    }

    #[test]
    fn comfortable_lrc_is_certified_with_slack() {
        let (spec, arch, imp) = system(0.9);
        let cert = certify(&spec, &arch, &imp, None).unwrap();
        assert_eq!(cert.overall, CertStatus::Certified);
        assert_eq!(cert.constrained, 1);
        let u = &cert.comms[1];
        assert_eq!(u.status, Some(CertStatus::Certified));
        assert!(u.slack.unwrap() > NEAR_THRESHOLD_SLACK);
        assert!(u.interval.contains(u.point));
        assert!(u.multilinear, "no shared dependency paths here");
        assert_eq!(cert.count(CertStatus::Certified), 1);
        assert_eq!(cert.min_slack(), u.slack);
    }

    #[test]
    fn impossible_lrc_is_refuted() {
        let (spec, arch, imp) = system(0.9999);
        let cert = certify(&spec, &arch, &imp, None).unwrap();
        assert_eq!(cert.overall, CertStatus::Refuted);
        assert_eq!(cert.comms[1].status, Some(CertStatus::Refuted));
        assert!(cert.comms[1].slack.unwrap() < 0.0);
    }

    #[test]
    fn bottleneck_is_the_weakest_series_component() {
        // λ_u = srel · (1 − q1 q2): the sensor bounds the whole chain, so
        // its Birnbaum importance (≈ the task block's reliability) beats
        // either replica's (≈ srel · q_other).
        let (spec, arch, imp) = system(0.9);
        let cert = certify(&spec, &arch, &imp, None).unwrap();
        assert_eq!(cert.comms[1].bottleneck.as_deref(), Some("sen"));
        // The unconstrained sensor communicator has no bottleneck.
        assert_eq!(cert.comms[0].bottleneck, None);
    }

    #[test]
    fn margins_are_conservative_and_positive_when_certified() {
        let (spec, arch, imp) = system(0.9);
        let cert = certify(&spec, &arch, &imp, None).unwrap();
        assert_eq!(cert.margins.len(), 3, "h1, h2, sen");
        for m in &cert.margins {
            assert!(m.margin > 0.0, "{} should have headroom", m.name);
            assert!(m.margin <= m.reliability);
        }
        // The sensor is in series: its margin is the distance to µ/(task
        // block) ≈ 0.999 − 0.9/(1 − 0.01·0.02); check conservatively.
        let sen = cert.margins.iter().find(|m| m.name == "sen").unwrap();
        let exact = 0.999 - 0.9 / (1.0 - 0.01 * 0.02);
        assert!(sen.margin <= exact + 1e-9);
        assert!(sen.margin > exact - 1e-6);
    }

    #[test]
    fn refuted_lrc_zeroes_every_margin() {
        let (spec, arch, imp) = system(0.9999);
        let cert = certify(&spec, &arch, &imp, None).unwrap();
        for m in &cert.margins {
            assert_eq!(m.margin, 0.0);
        }
    }

    #[test]
    fn box_certification_degrades_the_verdict() {
        let (spec, arch, imp) = system(0.995);
        // Point verdict holds (λ ≈ 0.99879) …
        let plain = certify(&spec, &arch, &imp, None).unwrap();
        assert_eq!(plain.overall, CertStatus::Certified);
        assert_eq!(plain.box_overall, None);
        // … a small box keeps it …
        let small = certify(&spec, &arch, &imp, Some(1e-4)).unwrap();
        assert_eq!(small.box_overall, Some(CertStatus::Certified));
        // … a large box (sensor down to 0.899) loses the certificate. The
        // box's upper corner is still the declared architecture, so a
        // point-certified LRC can only degrade to INDETERMINATE, never to
        // REFUTED.
        let large = certify(&spec, &arch, &imp, Some(0.1)).unwrap();
        assert_eq!(large.overall, CertStatus::Certified);
        assert_eq!(large.box_overall, Some(CertStatus::Indeterminate));
        assert_eq!(large.comms[1].box_status, Some(CertStatus::Indeterminate));
    }

    #[test]
    fn margin_bisection_handles_edges() {
        // Constant g above µ: full margin; below µ: none.
        assert_eq!(margin_by_bisection(0.5, 0.9, |_| 0.8), 0.9);
        assert_eq!(margin_by_bisection(0.5, 0.9, |_| 0.2), 0.0);
        // Identity g: threshold is µ itself.
        let m = margin_by_bisection(0.5, 0.9, |v| v);
        assert!((m - 0.4).abs() < 1e-9);
        assert!(m <= 0.4, "bisection must under-approximate");
    }
}
