//! Long-run (limit-average) statistics of reliability-abstract traces.
//!
//! §2 defines the reliability-based abstraction of a trace — a 0/1 sequence
//! per communicator — and the *limit-average* value
//! `limavg(τ) = lim (1/n) Σ Z_i`. Proposition 1 rests on the strong law of
//! large numbers: the empirical average of independent update outcomes
//! converges almost surely to the per-update success probability. These
//! helpers quantify that convergence for finite simulated traces via
//! Hoeffding bounds.

use logrel_core::Reliability;

/// The empirical average of a finite 0/1 prefix (an estimate of the
/// limit-average).
///
/// Returns 0 for an empty trace.
///
/// # Example
///
/// ```
/// use logrel_reliability::limit_average;
///
/// assert_eq!(limit_average(&[true, true, false, true]), 0.75);
/// ```
pub fn limit_average(bits: &[bool]) -> f64 {
    if bits.is_empty() {
        return 0.0;
    }
    bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
}

/// The running-average series `(1/n) Σ_{i<n} bits[i]` for `n = 1..=len`,
/// useful for convergence plots (experiment E7).
pub fn running_average(bits: &[bool]) -> Vec<f64> {
    let mut out = Vec::with_capacity(bits.len());
    let mut count = 0usize;
    for (n, &b) in bits.iter().enumerate() {
        count += usize::from(b);
        out.push(count as f64 / (n + 1) as f64);
    }
    out
}

/// The two-sided Hoeffding deviation `ε` such that the empirical mean of
/// `n` independent `[0, 1]` samples is within `ε` of its expectation with
/// probability at least `confidence`:
/// `ε = sqrt(ln(2 / (1 − confidence)) / (2 n))`.
///
/// # Panics
///
/// Panics if `n == 0` or `confidence` is not in `(0, 1)`.
pub fn hoeffding_epsilon(n: usize, confidence: f64) -> f64 {
    assert!(n > 0, "need at least one sample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let delta = 1.0 - confidence;
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// A fixed-capacity sliding window over a 0/1 sample stream with O(1)
/// mean queries — the statistic behind the online LRC monitor: the
/// windowed average of recent update outcomes estimates the *current*
/// per-update success probability, while [`hoeffding_epsilon`] over the
/// window length bounds how far that estimate may stray.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    ring: Vec<bool>,
    next: usize,
    filled: usize,
    ones: usize,
}

impl SlidingMean {
    /// An empty window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingMean {
            ring: vec![false; capacity],
            next: 0,
            filled: 0,
            ones: 0,
        }
    }

    /// Pushes one sample, evicting the oldest once the window is full.
    pub fn push(&mut self, bit: bool) {
        if self.filled == self.ring.len() {
            self.ones -= usize::from(self.ring[self.next]);
        } else {
            self.filled += 1;
        }
        self.ring[self.next] = bit;
        self.ones += usize::from(bit);
        self.next = (self.next + 1) % self.ring.len();
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// `true` once the window holds `capacity` samples.
    pub fn is_full(&self) -> bool {
        self.filled == self.ring.len()
    }

    /// The mean of the samples currently in the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        self.ones as f64 / self.filled as f64
    }
}

/// Verdict of an empirical long-run reliability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LongRunVerdict {
    /// The empirical mean exceeds the LRC by more than the confidence
    /// radius: the trace statistically meets the constraint.
    Meets,
    /// The empirical mean falls short of the LRC by more than the
    /// confidence radius: the trace statistically violates the constraint.
    Violates,
    /// The LRC lies inside the confidence interval; more samples are
    /// needed.
    Inconclusive,
}

/// Statistically compares a finite abstract trace against an LRC at the
/// given confidence level.
///
/// # Example
///
/// ```
/// use logrel_core::Reliability;
/// use logrel_reliability::{empirical_check, LongRunVerdict};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bits = vec![true; 10_000];
/// let lrc = Reliability::new(0.9)?;
/// assert_eq!(empirical_check(&bits, lrc, 0.99), LongRunVerdict::Meets);
/// # Ok(())
/// # }
/// ```
pub fn empirical_check(bits: &[bool], lrc: Reliability, confidence: f64) -> LongRunVerdict {
    if bits.is_empty() {
        return LongRunVerdict::Inconclusive;
    }
    let mean = limit_average(bits);
    let eps = hoeffding_epsilon(bits.len(), confidence);
    if mean - eps >= lrc.get() {
        LongRunVerdict::Meets
    } else if mean + eps < lrc.get() {
        LongRunVerdict::Violates
    } else {
        LongRunVerdict::Inconclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn limit_average_basics() {
        assert_eq!(limit_average(&[]), 0.0);
        assert_eq!(limit_average(&[true]), 1.0);
        assert_eq!(limit_average(&[false, false]), 0.0);
        assert_eq!(limit_average(&[true, false]), 0.5);
    }

    #[test]
    fn running_average_converges_to_limit_average() {
        let bits = [true, false, true, true];
        let series = running_average(&bits);
        assert_eq!(series, vec![1.0, 0.5, 2.0 / 3.0, 0.75]);
        assert_eq!(*series.last().unwrap(), limit_average(&bits));
    }

    #[test]
    fn hoeffding_shrinks_with_samples() {
        let e1 = hoeffding_epsilon(100, 0.95);
        let e2 = hoeffding_epsilon(10_000, 0.95);
        assert!(e2 < e1);
        assert!((e1 / e2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn hoeffding_grows_with_confidence() {
        assert!(hoeffding_epsilon(100, 0.999) > hoeffding_epsilon(100, 0.9));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn hoeffding_rejects_zero_samples() {
        hoeffding_epsilon(0, 0.95);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn hoeffding_rejects_bad_confidence() {
        hoeffding_epsilon(10, 1.0);
    }

    #[test]
    fn empirical_check_clear_cases() {
        let good = vec![true; 100_000];
        assert_eq!(empirical_check(&good, r(0.99), 0.99), LongRunVerdict::Meets);
        let bad = vec![false; 100_000];
        assert_eq!(
            empirical_check(&bad, r(0.5), 0.99),
            LongRunVerdict::Violates
        );
        assert_eq!(
            empirical_check(&[], r(0.5), 0.99),
            LongRunVerdict::Inconclusive
        );
    }

    #[test]
    fn empirical_check_borderline_is_inconclusive() {
        // mean exactly at the LRC with few samples.
        let bits = [true, false, true, false];
        assert_eq!(
            empirical_check(&bits, r(0.5), 0.99),
            LongRunVerdict::Inconclusive
        );
    }

    #[test]
    fn sliding_mean_tracks_window() {
        let mut w = SlidingMean::new(3);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        w.push(true);
        assert_eq!((w.len(), w.mean()), (1, 1.0));
        w.push(false);
        w.push(true);
        assert!(w.is_full());
        assert!((w.mean() - 2.0 / 3.0).abs() < 1e-12);
        // Evicts the oldest (true): window is now [false, true, true].
        w.push(true);
        assert!((w.mean() - 2.0 / 3.0).abs() < 1e-12);
        // Evicts false: [true, true, true].
        w.push(true);
        assert_eq!(w.mean(), 1.0);
        assert_eq!(w.len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn sliding_mean_rejects_zero_capacity() {
        SlidingMean::new(0);
    }

    proptest! {
        #[test]
        fn sliding_mean_matches_naive_window(
            bits in proptest::collection::vec(any::<bool>(), 1..300),
            cap in 1usize..32
        ) {
            let mut w = SlidingMean::new(cap);
            for (i, &b) in bits.iter().enumerate() {
                w.push(b);
                let lo = (i + 1).saturating_sub(cap);
                let naive = limit_average(&bits[lo..=i]);
                prop_assert!((w.mean() - naive).abs() < 1e-12);
                prop_assert_eq!(w.len(), i + 1 - lo);
            }
        }

        #[test]
        fn running_average_stays_in_unit_interval(
            bits in proptest::collection::vec(any::<bool>(), 1..200)
        ) {
            for v in running_average(&bits) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn verdicts_are_consistent_with_means(
            bits in proptest::collection::vec(any::<bool>(), 1..500),
            lrc in 0.01f64..1.0
        ) {
            let mean = limit_average(&bits);
            match empirical_check(&bits, r(lrc), 0.95) {
                LongRunVerdict::Meets => prop_assert!(mean >= lrc),
                LongRunVerdict::Violates => prop_assert!(mean < lrc),
                LongRunVerdict::Inconclusive => {}
            }
        }
    }
}
