//! Singular reliability guarantees (SRGs).
//!
//! Given an implementation `I`, the reliability of a task `t` is
//! `λ_t = 1 − Π_{h ∈ I(t)} (1 − hrel(h))` — the probability that at least
//! one replication executes. The SRG `λ_c` of a communicator is defined
//! inductively (§3):
//!
//! * input communicator updated by sensors: `λ_c = 1 − Π (1 − srel(s))`
//!   over the bound sensors (the paper's single-sensor base case
//!   `λ_c = srel(s)` generalised to replicated sensors);
//! * written by task `t` with input failure model…
//!   * *series*: `λ_c = λ_t · Π_{c' ∈ icset_t} λ_{c'}`;
//!   * *parallel*: `λ_c = λ_t · (1 − Π_{c' ∈ icset_t} (1 − λ_{c'}))`;
//!   * *independent*: `λ_c = λ_t`.
//!
//! Like the paper (and classical RBD analysis), the induction treats the
//! reliability of distinct inputs as independent; this is exact for
//! tree-shaped dependency structures and an approximation when a
//! communicator reaches a task along several paths.
//!
//! A non-perfect atomic broadcast (an extension the paper sketches) is
//! folded in by derating each replication: a replication contributes only
//! if its host works *and* its broadcast is delivered, so the effective
//! per-replication reliability is `hrel(h) · brel`.

use crate::error::ReliabilityError;
use crate::rbd::Block;
use logrel_core::graph::CommDependencyGraph;
use logrel_core::{
    Architecture, CommunicatorId, FailureModel, Implementation, Reliability, Specification, TaskId,
};
use std::collections::BTreeMap;
use std::fmt;

/// The computed SRGs of every task and communicator of a system.
#[derive(Debug, Clone, PartialEq)]
pub struct SrgReport {
    task: Vec<Reliability>,
    comm: Vec<Reliability>,
}

impl SrgReport {
    /// The reliability λ_t of task `t` under the analysed implementation.
    pub fn task(&self, t: TaskId) -> Reliability {
        self.task[t.index()]
    }

    /// The SRG λ_c of communicator `c`.
    pub fn communicator(&self, c: CommunicatorId) -> Reliability {
        self.comm[c.index()]
    }

    /// All communicator SRGs in declaration order.
    pub fn communicators(&self) -> &[Reliability] {
        &self.comm
    }

    /// All task reliabilities in declaration order.
    pub fn tasks(&self) -> &[Reliability] {
        &self.task
    }

    /// Renders a human-readable table using the names from `spec`.
    pub fn render(&self, spec: &Specification) -> String {
        let mut out = String::new();
        out.push_str("task reliabilities:\n");
        for t in spec.task_ids() {
            out.push_str(&format!(
                "  λ({}) = {:.9}\n",
                spec.task(t).name(),
                self.task(t).get()
            ));
        }
        out.push_str("communicator SRGs:\n");
        for c in spec.communicator_ids() {
            let lrc = spec
                .communicator(c)
                .lrc()
                .map_or(String::from("-"), |m| format!("{:.9}", m.get()));
            out.push_str(&format!(
                "  λ({}) = {:.9}  (LRC {lrc})\n",
                spec.communicator(c).name(),
                self.communicator(c).get()
            ));
        }
        out
    }
}

impl fmt::Display for SrgReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.comm.iter().enumerate() {
            writeln!(f, "c{i}: {}", r.get())?;
        }
        Ok(())
    }
}

/// The reliability `λ_t` of `task` under `imp`: the parallel combination of
/// its replications' effective reliabilities (`hrel · brel`).
///
/// # Errors
///
/// Returns [`ReliabilityError::Core`] if the host set is empty (an
/// unvalidated implementation).
pub fn task_reliability(
    arch: &Architecture,
    imp: &Implementation,
    task: TaskId,
) -> Result<Reliability, ReliabilityError> {
    let brel = arch.broadcast_reliability();
    let replicas = imp
        .hosts_of(task)
        .iter()
        .map(|&h| Reliability::series([arch.host(h).reliability(), brel]))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Reliability::parallel(replicas)?)
}

/// Computes the SRGs of every task and communicator for a static
/// implementation.
///
/// # Errors
///
/// * [`ReliabilityError::CyclicDependencies`] if the communicator
///   dependency graph contains a cycle with no independent-model task;
/// * [`ReliabilityError::UnboundInput`] if an input communicator has no
///   bound sensor.
///
/// # Example
///
/// The paper's introduction: a task on two hosts with SRG 0.8 each yields
/// `1 − 0.04 = 0.96 ≥ 0.9`.
///
/// ```
/// use logrel_core::prelude::*;
/// use logrel_reliability::compute_srgs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sb = Specification::builder();
/// let s = sb.communicator(
///     CommunicatorDecl::new("s", ValueType::Float, 10)?.from_sensor(),
/// )?;
/// let u = sb.communicator(
///     CommunicatorDecl::new("u", ValueType::Float, 10)?
///         .with_lrc(Reliability::new(0.9)?),
/// )?;
/// let t = sb.task(TaskDecl::new("t").reads(s, 0).writes(u, 1))?;
/// let spec = sb.build()?;
///
/// let mut ab = Architecture::builder();
/// let h1 = ab.host(HostDecl::new("h1", Reliability::new(0.8)?))?;
/// let h2 = ab.host(HostDecl::new("h2", Reliability::new(0.8)?))?;
/// let sen = ab.sensor(SensorDecl::new("sen", Reliability::ONE))?;
/// ab.wcet_all(t, 1)?;
/// ab.wctt_all(t, 1)?;
/// let arch = ab.build();
///
/// let imp = Implementation::builder()
///     .assign(t, [h1, h2])
///     .bind_sensor(s, sen)
///     .build(&spec, &arch)?;
/// let report = compute_srgs(&spec, &arch, &imp)?;
/// assert!((report.communicator(u).get() - 0.96).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn compute_srgs(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
) -> Result<SrgReport, ReliabilityError> {
    let mut task = Vec::with_capacity(spec.task_count());
    for t in spec.task_ids() {
        task.push(task_reliability(arch, imp, t)?);
    }
    let order = analysis_order(spec)?;
    let comm = comm_induction(spec, &order, &task, |c| {
        let sensors = imp.sensors_of(c);
        if sensors.is_empty() {
            return Err(ReliabilityError::UnboundInput {
                communicator: spec.communicator(c).name().to_owned(),
            });
        }
        Ok(Reliability::parallel(
            sensors.iter().map(|&s| arch.sensor(s).reliability()),
        )?)
    })?;
    Ok(SrgReport { task, comm })
}

/// The communicator analysis order, with cycles reported as errors.
pub(crate) fn analysis_order(
    spec: &Specification,
) -> Result<Vec<CommunicatorId>, ReliabilityError> {
    CommDependencyGraph::new(spec)
        .analysis_order()
        .map_err(|cyclic| ReliabilityError::CyclicDependencies {
            communicators: cyclic
                .iter()
                .map(|&c| spec.communicator(c).name().to_owned())
                .collect(),
        })
}

/// The §3 induction over communicators: given every task's reliability and
/// a source of sensor-input reliabilities, computes every SRG along a
/// topological `order`.
fn comm_induction(
    spec: &Specification,
    order: &[CommunicatorId],
    task: &[Reliability],
    mut sensor_lambda: impl FnMut(CommunicatorId) -> Result<Reliability, ReliabilityError>,
) -> Result<Vec<Reliability>, ReliabilityError> {
    let mut comm: Vec<Option<Reliability>> = vec![None; spec.communicator_count()];
    for &c in order {
        let lambda = if spec.is_sensor_input(c) {
            sensor_lambda(c)?
        } else if let Some(t) = spec.writer(c) {
            let lt = task[t.index()];
            match spec.task(t).failure_model() {
                FailureModel::Independent => lt,
                FailureModel::Series => {
                    let inputs = spec
                        .task(t)
                        .input_comm_set()
                        .into_iter()
                        .map(|c2| comm[c2.index()].expect("topological order"));
                    Reliability::series(std::iter::once(lt).chain(inputs))?
                }
                FailureModel::Parallel => {
                    let inputs = spec
                        .task(t)
                        .input_comm_set()
                        .into_iter()
                        .map(|c2| comm[c2.index()].expect("topological order"));
                    let any_input = Reliability::parallel(inputs)?;
                    Reliability::series([lt, any_input])?
                }
            }
        } else {
            // A constant communicator holds its (reliable) initial value
            // forever.
            Reliability::ONE
        };
        comm[c.index()] = Some(lambda);
    }
    Ok(comm.into_iter().map(|r| r.expect("all computed")).collect())
}

/// Incremental SRG evaluation for synthesis loops.
///
/// Synthesis explores many candidate implementations that differ from one
/// another in a single task's host set; recomputing every task's parallel
/// block and re-deriving the analysis order per candidate dominates the
/// cost of [`crate::synthesis::exhaustive_synthesize`]. This helper hoists
/// the per-system work (topological order, sensor-input reliabilities) out
/// of the loop and memoizes each task's parallel block keyed by
/// `(task, host bitmask)`, so a candidate reusing a previously seen host
/// set costs one map lookup per task.
///
/// Every queried implementation must share the sensor bindings of the one
/// given to [`SrgComputation::new`] (synthesis rewrites assignments, never
/// bindings).
pub struct SrgComputation<'a> {
    spec: &'a Specification,
    arch: &'a Architecture,
    order: Vec<CommunicatorId>,
    /// Parallel sensor reliability per sensor-input communicator.
    sensor_lambda: Vec<Option<Reliability>>,
    /// Memoized `λ_t` keyed by `(task, host bitmask)`.
    task_cache: BTreeMap<(TaskId, u64), Reliability>,
}

impl<'a> SrgComputation<'a> {
    /// Prepares the shared state: validates the dependency structure and
    /// the sensor bindings of `base` once, up front.
    ///
    /// # Errors
    ///
    /// Same conditions as [`compute_srgs`].
    pub fn new(
        spec: &'a Specification,
        arch: &'a Architecture,
        base: &Implementation,
    ) -> Result<Self, ReliabilityError> {
        let order = analysis_order(spec)?;
        let mut sensor_lambda = vec![None; spec.communicator_count()];
        for c in spec.communicator_ids() {
            if spec.is_sensor_input(c) {
                let sensors = base.sensors_of(c);
                if sensors.is_empty() {
                    return Err(ReliabilityError::UnboundInput {
                        communicator: spec.communicator(c).name().to_owned(),
                    });
                }
                sensor_lambda[c.index()] = Some(Reliability::parallel(
                    sensors.iter().map(|&s| arch.sensor(s).reliability()),
                )?);
            }
        }
        Ok(SrgComputation {
            spec,
            arch,
            order,
            sensor_lambda,
            task_cache: BTreeMap::new(),
        })
    }

    /// `λ_t` of `task` under `imp`, memoized by the host bitmask.
    fn task_lambda(
        &mut self,
        imp: &Implementation,
        task: TaskId,
    ) -> Result<Reliability, ReliabilityError> {
        let mut mask = 0u64;
        for &h in imp.hosts_of(task) {
            let Some(bit) = 1u64.checked_shl(h.index() as u32) else {
                // > 64 hosts: fall back to the uncached computation.
                return task_reliability(self.arch, imp, task);
            };
            mask |= bit;
        }
        if let Some(&cached) = self.task_cache.get(&(task, mask)) {
            return Ok(cached);
        }
        let lambda = task_reliability(self.arch, imp, task)?;
        self.task_cache.insert((task, mask), lambda);
        Ok(lambda)
    }

    /// Computes the [`SrgReport`] of `imp`, reusing every memoized task
    /// block. The result is identical to [`compute_srgs`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`compute_srgs`] (the structural ones were
    /// already ruled out by [`SrgComputation::new`]).
    pub fn report(&mut self, imp: &Implementation) -> Result<SrgReport, ReliabilityError> {
        let mut task = Vec::with_capacity(self.spec.task_count());
        for t in self.spec.task_ids() {
            task.push(self.task_lambda(imp, t)?);
        }
        let sensor_lambda = &self.sensor_lambda;
        let comm = comm_induction(self.spec, &self.order, &task, |c| {
            Ok(sensor_lambda[c.index()].expect("validated in new()"))
        })?;
        Ok(SrgReport { task, comm })
    }

    /// [`crate::analysis::check`] with memoized SRGs: identical verdict,
    /// but every repeated `(task, host set)` block is a cache hit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`compute_srgs`].
    pub fn check(
        &mut self,
        imp: &Implementation,
    ) -> Result<crate::analysis::ReliabilityVerdict, ReliabilityError> {
        let report = self.report(imp)?;
        Ok(crate::analysis::verdict_from_phases(self.spec, vec![report]))
    }

    /// Number of distinct `(task, host set)` blocks memoized so far.
    pub fn cached_blocks(&self) -> usize {
        self.task_cache.len()
    }
}

/// Builds the reliability block diagram whose evaluation equals the SRG of
/// `comm`: task replications appear as parallel blocks of host units,
/// composed in series/parallel according to the input failure models.
///
/// This makes the paper's claim that its approach "is closest to that of
/// RBDs" executable: see the crate tests asserting
/// `communicator_block(..).reliability() == compute_srgs(..)`.
///
/// # Errors
///
/// Same conditions as [`compute_srgs`].
pub fn communicator_block(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
    comm: CommunicatorId,
) -> Result<Block, ReliabilityError> {
    // Reject cyclic structures up front so recursion terminates.
    let graph = CommDependencyGraph::new(spec);
    graph
        .analysis_order()
        .map_err(|cyclic| ReliabilityError::CyclicDependencies {
            communicators: cyclic
                .iter()
                .map(|&c| spec.communicator(c).name().to_owned())
                .collect(),
        })?;
    block_rec(spec, arch, imp, comm)
}

fn block_rec(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
    comm: CommunicatorId,
) -> Result<Block, ReliabilityError> {
    if spec.is_sensor_input(comm) {
        let sensors = imp.sensors_of(comm);
        if sensors.is_empty() {
            return Err(ReliabilityError::UnboundInput {
                communicator: spec.communicator(comm).name().to_owned(),
            });
        }
        let units = sensors
            .iter()
            .map(|&s| Block::named_unit(arch.sensor(s).name(), arch.sensor(s).reliability()))
            .collect();
        return Block::parallel(units);
    }
    let Some(t) = spec.writer(comm) else {
        return Ok(Block::named_unit(
            format!("const:{}", spec.communicator(comm).name()),
            Reliability::ONE,
        ));
    };
    let brel = arch.broadcast_reliability();
    let replicas = imp
        .hosts_of(t)
        .iter()
        .map(|&h| {
            let eff = Reliability::series([arch.host(h).reliability(), brel])?;
            Ok(Block::named_unit(
                format!("{}@{}", spec.task(t).name(), arch.host(h).name()),
                eff,
            ))
        })
        .collect::<Result<Vec<_>, ReliabilityError>>()?;
    let task_block = Block::parallel(replicas)?;
    let input_blocks = spec
        .task(t)
        .input_comm_set()
        .into_iter()
        .map(|c2| block_rec(spec, arch, imp, c2))
        .collect::<Result<Vec<_>, _>>()?;
    let block = match spec.task(t).failure_model() {
        FailureModel::Independent => task_block,
        FailureModel::Series => {
            let mut parts = vec![task_block];
            parts.extend(input_blocks);
            Block::series(parts)
        }
        FailureModel::Parallel => {
            Block::series(vec![task_block, Block::parallel(input_blocks)?])
        }
    };
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        CommunicatorDecl, HostDecl, HostId, SensorDecl, SensorId, TaskDecl, Value, ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    /// sensor -> s -> reader -> l -> ctrl -> u, all hosts/sensors at `rel`.
    fn pipeline(rel: f64) -> (Specification, Architecture, Implementation) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 500)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let l = sb
            .communicator(CommunicatorDecl::new("l", ValueType::Float, 100).unwrap())
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 100).unwrap())
            .unwrap();
        let reader = sb
            .task(TaskDecl::new("reader").reads(s, 0).writes(l, 1))
            .unwrap();
        let ctrl = sb.task(TaskDecl::new("ctrl").reads(l, 1).writes(u, 3)).unwrap();
        let spec = sb.build().unwrap();

        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(rel))).unwrap();
        let h3 = ab.host(HostDecl::new("h3", r(rel))).unwrap();
        ab.sensor(SensorDecl::new("sen1", r(rel))).unwrap();
        for t in [reader, ctrl] {
            ab.wcet_all(t, 1).unwrap();
            ab.wctt_all(t, 1).unwrap();
        }
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(reader, [h3])
            .assign(ctrl, [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        (spec, arch, imp)
    }

    #[test]
    fn series_chain_multiplies() {
        let (spec, arch, imp) = pipeline(0.999);
        let report = compute_srgs(&spec, &arch, &imp).unwrap();
        let l = spec.find_communicator("l").unwrap();
        let u = spec.find_communicator("u").unwrap();
        assert!((report.communicator(l).get() - 0.999f64.powi(2)).abs() < 1e-12);
        assert!((report.communicator(u).get() - 0.999f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn replication_raises_task_reliability() {
        let (spec, arch, imp) = pipeline(0.999);
        let ctrl = spec.find_task("ctrl").unwrap();
        let imp2 = imp.with_assignment(ctrl, [HostId::new(0), HostId::new(1)]);
        let lt = task_reliability(&arch, &imp2, ctrl).unwrap();
        assert!((lt.get() - (1.0 - 0.001f64 * 0.001)).abs() < 1e-12);
    }

    #[test]
    fn broadcast_reliability_derates_replicas() {
        let (spec, _, _) = pipeline(0.999);
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.9))).unwrap();
        ab.sensor(SensorDecl::new("sen1", r(1.0))).unwrap();
        for t in spec.task_ids() {
            ab.wcet_all(t, 1).unwrap();
            ab.wctt_all(t, 1).unwrap();
        }
        ab.broadcast_reliability(r(0.5));
        let arch = ab.build();
        let s = spec.find_communicator("s").unwrap();
        let imp = Implementation::builder()
            .assign(spec.find_task("reader").unwrap(), [h1])
            .assign(spec.find_task("ctrl").unwrap(), [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        let lt = task_reliability(&arch, &imp, spec.find_task("ctrl").unwrap()).unwrap();
        assert!((lt.get() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn parallel_model_needs_only_one_input() {
        let mut sb = Specification::builder();
        let a = sb
            .communicator(
                CommunicatorDecl::new("a", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let b = sb
            .communicator(
                CommunicatorDecl::new("b", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let o = sb
            .communicator(CommunicatorDecl::new("o", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb
            .task(
                TaskDecl::new("t")
                    .reads(a, 0)
                    .reads(b, 0)
                    .writes(o, 1)
                    .model(FailureModel::Parallel)
                    .default_value(Value::Float(0.0))
                    .default_value(Value::Float(0.0)),
            )
            .unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h", r(1.0))).unwrap();
        let s1 = ab.sensor(SensorDecl::new("s1", r(0.9))).unwrap();
        let s2 = ab.sensor(SensorDecl::new("s2", r(0.9))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(a, s1)
            .bind_sensor(b, s2)
            .build(&spec, &arch)
            .unwrap();
        let report = compute_srgs(&spec, &arch, &imp).unwrap();
        // λ_o = 1.0 * (1 - 0.1^2) = 0.99
        assert!((report.communicator(o).get() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn independent_model_ignores_inputs() {
        let mut sb = Specification::builder();
        let a = sb
            .communicator(
                CommunicatorDecl::new("a", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let o = sb
            .communicator(CommunicatorDecl::new("o", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb
            .task(
                TaskDecl::new("t")
                    .reads(a, 0)
                    .writes(o, 1)
                    .model(FailureModel::Independent)
                    .default_value(Value::Float(0.0)),
            )
            .unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h", r(0.95))).unwrap();
        let s1 = ab.sensor(SensorDecl::new("s1", r(0.5))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(a, s1)
            .build(&spec, &arch)
            .unwrap();
        let report = compute_srgs(&spec, &arch, &imp).unwrap();
        assert!((report.communicator(o).get() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn sensor_replication_parallel_base_case() {
        let (spec, _, _) = pipeline(0.999);
        let s = spec.find_communicator("s").unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h", r(1.0))).unwrap();
        let s1 = ab.sensor(SensorDecl::new("s1", r(0.999))).unwrap();
        let s2 = ab.sensor(SensorDecl::new("s2", r(0.999))).unwrap();
        for t in spec.task_ids() {
            ab.wcet_all(t, 1).unwrap();
            ab.wctt_all(t, 1).unwrap();
        }
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(spec.find_task("reader").unwrap(), [h])
            .assign(spec.find_task("ctrl").unwrap(), [h])
            .bind_sensor(s, s1)
            .bind_sensor(s, s2)
            .build(&spec, &arch)
            .unwrap();
        let report = compute_srgs(&spec, &arch, &imp).unwrap();
        assert!((report.communicator(s).get() - (1.0 - 0.001f64 * 0.001)).abs() < 1e-12);
    }

    #[test]
    fn cyclic_series_spec_is_rejected() {
        let mut sb = Specification::builder();
        let c = sb
            .communicator(CommunicatorDecl::new("c", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("t").reads(c, 0).writes(c, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h", r(0.9))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h])
            .build(&spec, &arch)
            .unwrap();
        let err = compute_srgs(&spec, &arch, &imp).unwrap_err();
        assert!(matches!(err, ReliabilityError::CyclicDependencies { .. }));
        assert!(communicator_block(&spec, &arch, &imp, c).is_err());
    }

    #[test]
    fn rbd_matches_srg_induction() {
        let (spec, arch, imp) = pipeline(0.97);
        let report = compute_srgs(&spec, &arch, &imp).unwrap();
        for c in spec.communicator_ids() {
            let block = communicator_block(&spec, &arch, &imp, c).unwrap();
            let via_rbd = block.reliability().unwrap();
            assert!(
                (via_rbd.get() - report.communicator(c).get()).abs() < 1e-12,
                "mismatch for {}",
                spec.communicator(c).name()
            );
        }
    }

    #[test]
    fn memoized_computation_matches_compute_srgs() {
        let (spec, arch, imp) = pipeline(0.97);
        let reader = spec.find_task("reader").unwrap();
        let ctrl = spec.find_task("ctrl").unwrap();
        let mut cached = SrgComputation::new(&spec, &arch, &imp).unwrap();
        // Enumerate every non-empty host subset for both tasks, twice —
        // the second sweep must hit the cache and still agree exactly.
        let hosts: Vec<HostId> = arch.host_ids().collect();
        let mut distinct = 0usize;
        for _ in 0..2 {
            for rmask in 1u32..(1 << hosts.len()) {
                for cmask in 1u32..(1 << hosts.len()) {
                    let pick = |mask: u32| {
                        hosts
                            .iter()
                            .enumerate()
                            .filter(move |(i, _)| mask & (1 << i) != 0)
                            .map(|(_, &h)| h)
                    };
                    let candidate = imp
                        .with_assignment(reader, pick(rmask))
                        .with_assignment(ctrl, pick(cmask));
                    let fast = cached.report(&candidate).unwrap();
                    let slow = compute_srgs(&spec, &arch, &candidate).unwrap();
                    assert_eq!(fast, slow);
                    distinct += 1;
                }
            }
        }
        assert!(distinct > cached.cached_blocks(), "the cache must be hit");
        // 2 tasks × 3 non-empty subsets of 2 hosts.
        assert_eq!(cached.cached_blocks(), 6);
    }

    #[test]
    fn report_render_names_everything() {
        let (spec, arch, imp) = pipeline(0.999);
        let report = compute_srgs(&spec, &arch, &imp).unwrap();
        let text = report.render(&spec);
        for name in ["reader", "ctrl", "s", "l", "u"] {
            assert!(text.contains(name));
        }
        assert!(!report.to_string().is_empty());
    }
}
