//! The reliability analysis of Proposition 1.
//!
//! An implementation is *reliable* if for each communicator `c`, the
//! long-run average of reliable values observed at its access points is at
//! least the LRC `µ_c`. For memory-free, race-free specifications,
//! Proposition 1 reduces this to the local check `λ_c ≥ µ_c` (by the strong
//! law of large numbers, the empirical average of i.i.d. update outcomes
//! converges to λ_c almost surely).
//!
//! For a *periodic time-dependent* implementation with phases
//! `I_0, …, I_{n−1}`, iteration `k` succeeds with probability
//! `λ_c(I_{k mod n})`; the long-run average then converges almost surely to
//! the mean of the per-phase SRGs, so [`check_time_dependent`] compares that
//! mean against `µ_c` (the paper's "general implementation" discussion).

use crate::error::ReliabilityError;
use crate::srg::{compute_srgs, SrgReport};
use logrel_core::{
    Architecture, CommunicatorId, Implementation, Specification, TimeDependentImplementation,
};
use std::fmt;

/// A violated logical reliability constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct LrcViolation {
    /// The communicator whose LRC is violated.
    pub comm: CommunicatorId,
    /// The communicator's name.
    pub name: String,
    /// The achieved (long-run) SRG.
    pub achieved: f64,
    /// The required LRC µ.
    pub required: f64,
}

impl fmt::Display for LrcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}`: achieved {} < required {}",
            self.name, self.achieved, self.required
        )
    }
}

/// The outcome of a reliability analysis: the computed SRGs together with
/// the list of violated LRCs (empty iff the implementation is reliable).
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityVerdict {
    /// Per-phase SRG reports (a single entry for static implementations).
    pub phases: Vec<SrgReport>,
    /// Long-run SRG per communicator: the mean over phases.
    pub long_run: Vec<f64>,
    /// Violated constraints, in declaration order.
    pub violations: Vec<LrcViolation>,
}

impl ReliabilityVerdict {
    /// `true` iff every declared LRC is met.
    pub fn is_reliable(&self) -> bool {
        self.violations.is_empty()
    }

    /// The long-run SRG of communicator `c`.
    pub fn long_run_srg(&self, c: CommunicatorId) -> f64 {
        self.long_run[c.index()]
    }

    /// The SRG report of the only phase of a static implementation.
    ///
    /// # Panics
    ///
    /// Panics if this verdict came from [`check_time_dependent`] with more
    /// than one phase.
    pub fn static_report(&self) -> &SrgReport {
        assert_eq!(self.phases.len(), 1, "not a static implementation");
        &self.phases[0]
    }

    /// The slack `λ_c − µ_c` of communicator `c`, or `None` if it has no
    /// LRC.
    pub fn margin(&self, spec: &Specification, c: CommunicatorId) -> Option<f64> {
        spec.communicator(c)
            .lrc()
            .map(|m| self.long_run[c.index()] - m.get())
    }
}

impl fmt::Display for ReliabilityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_reliable() {
            write!(f, "reliable")
        } else {
            write!(f, "NOT reliable: ")?;
            for (i, v) in self.violations.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{v}")?;
            }
            Ok(())
        }
    }
}

/// Checks Proposition 1 for a static implementation: computes all SRGs and
/// compares them against the declared LRCs.
///
/// # Errors
///
/// Propagates [`crate::srg::compute_srgs`] errors (cyclic dependencies,
/// unbound inputs).
pub fn check(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
) -> Result<ReliabilityVerdict, ReliabilityError> {
    check_time_dependent(spec, arch, &TimeDependentImplementation::from(imp.clone()))
}

/// Checks reliability of a periodic time-dependent implementation: the
/// long-run SRG of each communicator is the mean of its per-phase SRGs.
///
/// # Errors
///
/// Propagates [`crate::srg::compute_srgs`] errors for any phase.
pub fn check_time_dependent(
    spec: &Specification,
    arch: &Architecture,
    imp: &TimeDependentImplementation,
) -> Result<ReliabilityVerdict, ReliabilityError> {
    let phases = imp
        .phases()
        .iter()
        .map(|p| compute_srgs(spec, arch, p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(verdict_from_phases(spec, phases))
}

/// Builds the verdict for already-computed per-phase SRG reports.
pub(crate) fn verdict_from_phases(
    spec: &Specification,
    phases: Vec<SrgReport>,
) -> ReliabilityVerdict {
    let n = phases.len() as f64;
    let long_run: Vec<f64> = spec
        .communicator_ids()
        .map(|c| phases.iter().map(|p| p.communicator(c).get()).sum::<f64>() / n)
        .collect();
    let mut violations = Vec::new();
    for c in spec.communicator_ids() {
        if let Some(lrc) = spec.communicator(c).lrc() {
            let achieved = long_run[c.index()];
            if achieved + 1e-12 < lrc.get() {
                violations.push(LrcViolation {
                    comm: c,
                    name: spec.communicator(c).name().to_owned(),
                    achieved,
                    required: lrc.get(),
                });
            }
        }
    }
    ReliabilityVerdict {
        phases,
        long_run,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        CommunicatorDecl, HostDecl, HostId, Reliability, SensorDecl, SensorId, TaskDecl,
        ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    /// The paper's §3 "General implementation" example: tasks t1, t2 write
    /// c1, c2 with LRC 0.9 on hosts with reliabilities 0.95 and 0.85.
    fn general_example() -> (Specification, Architecture, Implementation, Implementation) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let c1 = sb
            .communicator(
                CommunicatorDecl::new("c1", ValueType::Float, 10)
                    .unwrap()
                    .with_lrc(r(0.9)),
            )
            .unwrap();
        let c2 = sb
            .communicator(
                CommunicatorDecl::new("c2", ValueType::Float, 10)
                    .unwrap()
                    .with_lrc(r(0.9)),
            )
            .unwrap();
        let t1 = sb.task(TaskDecl::new("t1").reads(s, 0).writes(c1, 1)).unwrap();
        let t2 = sb.task(TaskDecl::new("t2").reads(s, 0).writes(c2, 1)).unwrap();
        let spec = sb.build().unwrap();

        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.95))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.85))).unwrap();
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        for t in [t1, t2] {
            ab.wcet_all(t, 1).unwrap();
            ab.wctt_all(t, 1).unwrap();
        }
        let arch = ab.build();
        let sen = SensorId::new(0);
        // Phase A: t1 -> h1, t2 -> h2. Phase B: swapped.
        let a = Implementation::builder()
            .assign(t1, [h1])
            .assign(t2, [h2])
            .bind_sensor(s, sen)
            .build(&spec, &arch)
            .unwrap();
        let b = Implementation::builder()
            .assign(t1, [h2])
            .assign(t2, [h1])
            .bind_sensor(s, sen)
            .build(&spec, &arch)
            .unwrap();
        (spec, arch, a, b)
    }

    #[test]
    fn static_mapping_violates_one_lrc() {
        let (spec, arch, a, _) = general_example();
        let verdict = check(&spec, &arch, &a).unwrap();
        assert!(!verdict.is_reliable());
        // t2 on h2 (0.85) violates c2's LRC of 0.9.
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].name, "c2");
        assert!((verdict.violations[0].achieved - 0.85).abs() < 1e-12);
        assert!(verdict.to_string().contains("NOT reliable"));
    }

    #[test]
    fn alternating_mapping_is_reliable() {
        let (spec, arch, a, b) = general_example();
        let td = TimeDependentImplementation::new(vec![a, b]).unwrap();
        let verdict = check_time_dependent(&spec, &arch, &td).unwrap();
        assert!(verdict.is_reliable(), "{verdict}");
        let c1 = spec.find_communicator("c1").unwrap();
        let c2 = spec.find_communicator("c2").unwrap();
        assert!((verdict.long_run_srg(c1) - 0.9).abs() < 1e-12);
        assert!((verdict.long_run_srg(c2) - 0.9).abs() < 1e-12);
        assert_eq!(verdict.to_string(), "reliable");
    }

    #[test]
    fn margin_reports_slack() {
        let (spec, arch, a, _) = general_example();
        let verdict = check(&spec, &arch, &a).unwrap();
        let c1 = spec.find_communicator("c1").unwrap();
        let s = spec.find_communicator("s").unwrap();
        assert!((verdict.margin(&spec, c1).unwrap() - 0.05).abs() < 1e-12);
        assert_eq!(verdict.margin(&spec, s), None);
    }

    #[test]
    fn static_report_accessor() {
        let (spec, arch, a, b) = general_example();
        let verdict = check(&spec, &arch, &a).unwrap();
        let t1 = spec.find_task("t1").unwrap();
        assert!((verdict.static_report().task(t1).get() - 0.95).abs() < 1e-12);
        let td = TimeDependentImplementation::new(vec![a, b]).unwrap();
        let verdict2 = check_time_dependent(&spec, &arch, &td).unwrap();
        assert_eq!(verdict2.phases.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a static implementation")]
    fn static_report_panics_for_multiphase() {
        let (spec, arch, a, b) = general_example();
        let td = TimeDependentImplementation::new(vec![a, b]).unwrap();
        let verdict = check_time_dependent(&spec, &arch, &td).unwrap();
        let _ = verdict.static_report();
    }

    #[test]
    fn replication_on_both_hosts_meets_lrc_statically() {
        let (spec, arch, a, _) = general_example();
        let t2 = spec.find_task("t2").unwrap();
        let both = a.with_assignment(t2, [HostId::new(0), HostId::new(1)]);
        let verdict = check(&spec, &arch, &both).unwrap();
        assert!(verdict.is_reliable());
        let c2 = spec.find_communicator("c2").unwrap();
        // 1 - 0.05*0.15 = 0.9925
        assert!((verdict.long_run_srg(c2) - 0.9925).abs() < 1e-12);
    }
}
