//! Fault trees with AND/OR/voting gates and minimal cut sets.
//!
//! A fault tree (the paper's reference \[12\], Kececioglu's *Reliability
//! Engineering Handbook*) describes how component *failures* combine into a
//! system failure — the dual of a reliability block diagram. [`Gate`]
//! evaluates the top-event probability under independence and enumerates
//! minimal cut sets (minimal sets of basic events that together cause the
//! top event).

use crate::error::ReliabilityError;
use crate::rbd::Block;
use std::collections::BTreeSet;
use std::fmt;

/// A fault-tree node. Leaves are basic failure events; internal gates
/// combine child failures.
///
/// # Example
///
/// ```
/// use logrel_reliability::Gate;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // System fails if the sensor fails OR both hosts fail.
/// let tree = Gate::or(vec![
///     Gate::basic("sensor", 0.01),
///     Gate::and(vec![Gate::basic("h1", 0.2), Gate::basic("h2", 0.2)]),
/// ]);
/// let p = tree.probability();
/// assert!((p - (1.0 - 0.99 * (1.0 - 0.04))).abs() < 1e-12);
/// let cuts = tree.minimal_cut_sets();
/// assert_eq!(cuts.len(), 2); // {sensor}, {h1, h2}
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// A basic failure event with a failure probability in `[0, 1]`.
    Basic {
        /// The event's name.
        name: String,
        /// Probability that the event occurs.
        failure_probability: f64,
    },
    /// Fires iff every child fires.
    And(Vec<Gate>),
    /// Fires iff at least one child fires.
    Or(Vec<Gate>),
    /// Fires iff at least `k` children fire.
    Vote {
        /// Threshold of firing children.
        k: usize,
        /// The voted children.
        children: Vec<Gate>,
    },
}

impl Gate {
    /// A basic event. `failure_probability` is clamped to `[0, 1]`.
    pub fn basic(name: impl Into<String>, failure_probability: f64) -> Gate {
        Gate::Basic {
            name: name.into(),
            failure_probability: failure_probability.clamp(0.0, 1.0),
        }
    }

    /// An AND gate.
    pub fn and(children: Vec<Gate>) -> Gate {
        Gate::And(children)
    }

    /// An OR gate.
    pub fn or(children: Vec<Gate>) -> Gate {
        Gate::Or(children)
    }

    /// A k-of-n voting gate.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] if `k > children.len()`.
    pub fn vote(k: usize, children: Vec<Gate>) -> Result<Gate, ReliabilityError> {
        if k > children.len() {
            return Err(ReliabilityError::Structure {
                detail: format!("{k}-of-{} voting gate", children.len()),
            });
        }
        Ok(Gate::Vote { k, children })
    }

    /// Probability of the top event, assuming independent basic events.
    pub fn probability(&self) -> f64 {
        match self {
            Gate::Basic {
                failure_probability,
                ..
            } => *failure_probability,
            Gate::And(children) => children.iter().map(Gate::probability).product(),
            Gate::Or(children) => {
                1.0 - children
                    .iter()
                    .map(|c| 1.0 - c.probability())
                    .product::<f64>()
            }
            Gate::Vote { k, children } => {
                let mut dist = vec![1.0_f64];
                for c in children {
                    let p = c.probability();
                    let mut next = vec![0.0; dist.len() + 1];
                    for (j, &q) in dist.iter().enumerate() {
                        next[j] += q * (1.0 - p);
                        next[j + 1] += q * p;
                    }
                    dist = next;
                }
                dist.iter().skip(*k).sum()
            }
        }
    }

    /// Enumerates the minimal cut sets by MOCUS-style expansion followed by
    /// absorption (removing supersets).
    ///
    /// Each cut set is a set of basic-event names whose joint occurrence
    /// causes the top event. Voting gates expand into the OR of all
    /// k-subsets.
    pub fn minimal_cut_sets(&self) -> Vec<BTreeSet<String>> {
        let mut cuts = self.cut_sets();
        // Absorption: drop any set that is a superset of another.
        cuts.sort_by_key(BTreeSet::len);
        let mut minimal: Vec<BTreeSet<String>> = Vec::new();
        for c in cuts {
            if !minimal.iter().any(|m| m.is_subset(&c)) {
                minimal.push(c);
            }
        }
        minimal
    }

    fn cut_sets(&self) -> Vec<BTreeSet<String>> {
        match self {
            Gate::Basic { name, .. } => {
                vec![std::iter::once(name.clone()).collect()]
            }
            Gate::Or(children) => children.iter().flat_map(Gate::cut_sets).collect(),
            Gate::And(children) => {
                let mut acc: Vec<BTreeSet<String>> = vec![BTreeSet::new()];
                for c in children {
                    let child_cuts = c.cut_sets();
                    let mut next = Vec::with_capacity(acc.len() * child_cuts.len());
                    for a in &acc {
                        for cc in &child_cuts {
                            let mut merged = a.clone();
                            merged.extend(cc.iter().cloned());
                            next.push(merged);
                        }
                    }
                    acc = next;
                }
                acc
            }
            Gate::Vote { k, children } => {
                // OR over AND of each k-subset.
                let n = children.len();
                let mut out = Vec::new();
                let mut indices: Vec<usize> = (0..*k).collect();
                if *k == 0 {
                    return vec![BTreeSet::new()];
                }
                loop {
                    let subset = Gate::And(indices.iter().map(|&i| children[i].clone()).collect());
                    out.extend(subset.cut_sets());
                    // Next combination.
                    let mut i = *k;
                    loop {
                        if i == 0 {
                            return out;
                        }
                        i -= 1;
                        if indices[i] != i + n - *k {
                            break;
                        }
                    }
                    if indices[i] == i + n - *k {
                        return out;
                    }
                    indices[i] += 1;
                    for j in i + 1..*k {
                        indices[j] = indices[j - 1] + 1;
                    }
                }
            }
        }
    }

    /// Converts the fault tree into the dual reliability block diagram:
    /// basic failure `p` becomes a unit of reliability `1 − p`, AND failure
    /// becomes an OR (parallel) junction and vice versa.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] for gates whose dual is
    /// ill-formed (e.g. an empty AND gate, or a basic event with failure
    /// probability 1, whose dual reliability 0 is not representable).
    pub fn to_block(&self) -> Result<Block, ReliabilityError> {
        match self {
            Gate::Basic {
                name,
                failure_probability,
            } => {
                let r = logrel_core::Reliability::new(1.0 - failure_probability)?;
                Ok(Block::named_unit(name.clone(), r))
            }
            Gate::And(children) => Block::parallel(
                children
                    .iter()
                    .map(Gate::to_block)
                    .collect::<Result<_, _>>()?,
            ),
            Gate::Or(children) => Ok(Block::series(
                children
                    .iter()
                    .map(Gate::to_block)
                    .collect::<Result<_, _>>()?,
            )),
            Gate::Vote { k, children } => {
                // System fails iff >= k children fail, i.e. works iff
                // >= n-k+1 children work.
                let n = children.len();
                Block::k_of_n(
                    n - k + 1,
                    children
                        .iter()
                        .map(Gate::to_block)
                        .collect::<Result<_, _>>()?,
                )
            }
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Basic {
                name,
                failure_probability,
            } => write!(f, "{name}({failure_probability})"),
            Gate::And(cs) => {
                write!(f, "AND(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Gate::Or(cs) => {
                write!(f, "OR(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Gate::Vote { k, children } => {
                write!(f, "VOTE{k}/{}(", children.len())?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn and_or_probabilities() {
        let and = Gate::and(vec![Gate::basic("a", 0.5), Gate::basic("b", 0.5)]);
        assert!((and.probability() - 0.25).abs() < 1e-12);
        let or = Gate::or(vec![Gate::basic("a", 0.5), Gate::basic("b", 0.5)]);
        assert!((or.probability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn vote_gate_probability() {
        // 2-of-3 failures at p=0.1: 3*0.01*0.9 + 0.001 = 0.028.
        let g = Gate::vote(2, vec![Gate::basic("x", 0.1); 3]).unwrap();
        assert!((g.probability() - 0.028).abs() < 1e-12);
        assert!(Gate::vote(4, vec![Gate::basic("x", 0.1); 3]).is_err());
    }

    #[test]
    fn minimal_cut_sets_with_absorption() {
        // OR(a, AND(a, b)) -> minimal cut sets {a} only.
        let g = Gate::or(vec![
            Gate::basic("a", 0.1),
            Gate::and(vec![Gate::basic("a", 0.1), Gate::basic("b", 0.1)]),
        ]);
        let cuts = g.minimal_cut_sets();
        assert_eq!(cuts.len(), 1);
        assert!(cuts[0].contains("a"));
    }

    #[test]
    fn vote_cut_sets_are_k_subsets() {
        let g = Gate::vote(
            2,
            vec![
                Gate::basic("a", 0.1),
                Gate::basic("b", 0.1),
                Gate::basic("c", 0.1),
            ],
        )
        .unwrap();
        let cuts = g.minimal_cut_sets();
        assert_eq!(cuts.len(), 3); // {a,b}, {a,c}, {b,c}
        for c in &cuts {
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn dual_block_reliability_is_complement() {
        let g = Gate::or(vec![
            Gate::basic("sensor", 0.01),
            Gate::and(vec![Gate::basic("h1", 0.2), Gate::basic("h2", 0.2)]),
        ]);
        let block = g.to_block().unwrap();
        assert!((block.probability() - (1.0 - g.probability())).abs() < 1e-12);
    }

    #[test]
    fn dual_of_vote_gate() {
        let g = Gate::vote(2, vec![Gate::basic("x", 0.1); 3]).unwrap();
        let block = g.to_block().unwrap();
        assert!((block.probability() - (1.0 - g.probability())).abs() < 1e-12);
    }

    #[test]
    fn display_nests() {
        let g = Gate::or(vec![
            Gate::basic("a", 0.1),
            Gate::vote(1, vec![Gate::basic("b", 0.2)]).unwrap(),
        ]);
        let s = g.to_string();
        assert!(s.contains("OR") && s.contains("VOTE1/1") && s.contains("a(0.1)"));
    }

    #[test]
    fn clamping_of_basic_probability() {
        assert_eq!(Gate::basic("x", 2.0).probability(), 1.0);
        assert_eq!(Gate::basic("x", -1.0).probability(), 0.0);
    }

    proptest! {
        #[test]
        fn dual_identity_random_trees(
            pa in 0.0f64..0.99, pb in 0.0f64..0.99, pc in 0.0f64..0.99
        ) {
            let g = Gate::or(vec![
                Gate::and(vec![Gate::basic("a", pa), Gate::basic("b", pb)]),
                Gate::basic("c", pc),
            ]);
            let block = g.to_block().unwrap();
            prop_assert!((block.probability() - (1.0 - g.probability())).abs() < 1e-10);
        }
    }
}
