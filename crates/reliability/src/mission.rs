//! Mission reliability under permanent (crash) faults.
//!
//! The paper's SRG model is *transient*: each invocation fails
//! independently and the long-run average is governed by the SLLN. Under
//! the complementary *crash* regime (a host that fails stays silent — the
//! `PermanentFaults` injector of `logrel-sim`), long-run averages are
//! degenerate: eventually every replica is dead. The meaningful question
//! becomes mission-horizon reliability:
//!
//! * a replica with per-round crash hazard `q` is still alive at round `n`
//!   with probability `(1 − q)ⁿ`;
//! * a task replicated `k` ways delivers round `n` iff at least one
//!   replica is alive: `1 − (1 − (1 − q)ⁿ)ᵏ`;
//! * the expected fraction of delivered rounds over a mission of `N`
//!   rounds is the average of that expression.
//!
//! These closed forms are validated against the crash-fault simulator in
//! the `exp_crash` experiment binary.

/// Probability that a `k`-replicated task delivers round `n` (0-based),
/// with independent per-round crash hazard `q` per replica.
///
/// Round `n` requires a replica to survive `n` earlier rounds *and* its
/// own invocation, i.e. `n + 1` Bernoulli survivals.
///
/// # Panics
///
/// Panics if `k == 0` or `q` is outside `[0, 1]`.
pub fn delivery_probability(k: usize, q: f64, n: u64) -> f64 {
    assert!(k > 0, "at least one replica");
    assert!((0.0..=1.0).contains(&q), "hazard must be a probability");
    let alive = (1.0 - q).powi((n + 1) as i32);
    1.0 - (1.0 - alive).powi(k as i32)
}

/// Expected fraction of delivered rounds over a mission of `horizon`
/// rounds.
///
/// # Panics
///
/// Panics under the same conditions as [`delivery_probability`], or if
/// `horizon == 0`.
pub fn expected_delivered_fraction(k: usize, q: f64, horizon: u64) -> f64 {
    assert!(horizon > 0, "mission must have at least one round");
    (0..horizon)
        .map(|n| delivery_probability(k, q, n))
        .sum::<f64>()
        / horizon as f64
}

/// The smallest replication degree whose expected delivered fraction over
/// `horizon` rounds reaches `target`, or `None` if even `max_k` replicas
/// fall short.
pub fn replication_for_mission(q: f64, horizon: u64, target: f64, max_k: usize) -> Option<usize> {
    (1..=max_k).find(|&k| expected_delivered_fraction(k, q, horizon) >= target)
}

/// Expected number of rounds until all `k` replicas have crashed
/// (the system's mean silent-point), `Σ_n P(alive at round n)`, truncated
/// at `horizon`.
pub fn expected_lifetime(k: usize, q: f64, horizon: u64) -> f64 {
    (0..horizon).map(|n| delivery_probability(k, q, n)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_replica_geometric_decay() {
        let q = 0.1;
        assert!((delivery_probability(1, q, 0) - 0.9).abs() < 1e-12);
        assert!((delivery_probability(1, q, 1) - 0.81).abs() < 1e-12);
        assert!((delivery_probability(1, q, 9) - 0.9f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn replication_improves_every_round() {
        for n in [0u64, 5, 50] {
            let one = delivery_probability(1, 0.05, n);
            let two = delivery_probability(2, 0.05, n);
            let three = delivery_probability(3, 0.05, n);
            assert!(two > one);
            assert!(three > two);
        }
    }

    #[test]
    fn zero_hazard_is_perfect() {
        assert_eq!(delivery_probability(1, 0.0, 1000), 1.0);
        assert_eq!(expected_delivered_fraction(1, 0.0, 1000), 1.0);
    }

    #[test]
    fn certain_crash_delivers_nothing() {
        assert_eq!(delivery_probability(3, 1.0, 0), 0.0);
        assert_eq!(expected_delivered_fraction(3, 1.0, 10), 0.0);
    }

    #[test]
    fn expected_fraction_decreases_with_horizon() {
        let short = expected_delivered_fraction(2, 0.01, 10);
        let long = expected_delivered_fraction(2, 0.01, 1000);
        assert!(long < short);
    }

    #[test]
    fn replication_search() {
        // Hazard 0.001 over 1000 rounds: one replica averages ~0.63.
        let k = replication_for_mission(0.001, 1000, 0.9, 8).expect("achievable");
        assert!(k >= 2, "one replica cannot reach 0.9, got k = {k}");
        assert!(expected_delivered_fraction(k, 0.001, 1000) >= 0.9);
        assert!(expected_delivered_fraction(k - 1, 0.001, 1000) < 0.9);
        assert_eq!(replication_for_mission(0.5, 1000, 0.99, 4), None);
    }

    #[test]
    fn lifetime_grows_with_replication() {
        let l1 = expected_lifetime(1, 0.01, 100_000);
        let l2 = expected_lifetime(2, 0.01, 100_000);
        // Single replica: geometric mean lifetime ≈ (1-q)/q ≈ 99.
        assert!((l1 - 99.0).abs() < 1.0, "l1 = {l1}");
        assert!(l2 > l1 * 1.4, "l2 = {l2}");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        delivery_probability(0, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "hazard")]
    fn bad_hazard_panics() {
        delivery_probability(1, 1.5, 0);
    }
}
