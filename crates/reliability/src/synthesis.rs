//! Replication synthesis: finding a mapping that meets every LRC.
//!
//! The paper chooses its replication mappings by hand (§4's scenarios); a
//! design flow wants the converse direction: given a specification with
//! LRCs and an architecture, *find* a mapping. [`synthesize`] adds replicas
//! greedily where they help the most; [`exhaustive_synthesize`] proves
//! minimality on small systems. Because every SRG is monotone in every task
//! reliability, adding replicas never hurts, which makes the greedy repair
//! loop sound (it terminates at a reliable mapping or exhausts the replica
//! budget).

use crate::analysis::check;
use crate::error::ReliabilityError;
use crate::srg::SrgComputation;
use logrel_core::{
    Architecture, CommunicatorId, FailureModel, HostId, Implementation, Specification, TaskId,
};
use std::collections::BTreeSet;

/// Knobs for the synthesis search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisOptions {
    /// Maximum number of replicas per task (≥ 1).
    pub max_replicas_per_task: usize,
    /// Safety bound on greedy repair iterations.
    pub max_iterations: usize,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            max_replicas_per_task: 3,
            max_iterations: 256,
        }
    }
}

/// The tasks whose reliability influences the SRG of `comm` (the writer and,
/// through non-independent failure models, the writers of transitive
/// inputs).
fn influencing_tasks(spec: &Specification, comm: CommunicatorId) -> BTreeSet<TaskId> {
    let mut out = BTreeSet::new();
    let mut stack = vec![comm];
    let mut seen = BTreeSet::new();
    while let Some(c) = stack.pop() {
        if !seen.insert(c) {
            continue;
        }
        if let Some(t) = spec.writer(c) {
            out.insert(t);
            if spec.task(t).failure_model() != FailureModel::Independent {
                stack.extend(spec.task(t).input_comm_set());
            }
        }
    }
    out
}

/// The hosts on which `task` can run (those with both WCET and WCTT
/// declared).
fn candidate_hosts(spec: &Specification, arch: &Architecture, task: TaskId) -> Vec<HostId> {
    let _ = spec;
    arch.host_ids()
        .filter(|&h| arch.wcet(task, h).is_some() && arch.wctt(task, h).is_some())
        .collect()
}

/// Greedy replication synthesis starting from `base` (which supplies the
/// sensor bindings and the initial assignment).
///
/// While some LRC is violated, the search adds the single replica — over
/// all tasks influencing the most-violated communicator and all their
/// candidate hosts — that maximises that communicator's SRG, until every
/// LRC is met or the replica budget is exhausted.
///
/// An optional `feasible` predicate (e.g. a schedulability check) can veto
/// candidate mappings.
///
/// # Errors
///
/// * [`ReliabilityError::Unsatisfiable`] if no admissible replica addition
///   can repair the remaining violations;
/// * any error of [`check`] (cyclic dependencies, unbound inputs).
pub fn synthesize(
    spec: &Specification,
    arch: &Architecture,
    base: &Implementation,
    opts: &SynthesisOptions,
    mut feasible: impl FnMut(&Implementation) -> bool,
) -> Result<Implementation, ReliabilityError> {
    let mut srg = SrgComputation::new(spec, arch, base)?;
    let mut current = base.clone();
    for _ in 0..opts.max_iterations {
        let verdict = srg.check(&current)?;
        let Some(worst) = verdict.violations.iter().max_by(|a, b| {
            (a.required - a.achieved)
                .partial_cmp(&(b.required - b.achieved))
                .expect("finite slacks")
        }) else {
            return Ok(current);
        };

        // Try every admissible single-replica addition.
        let mut best: Option<(Implementation, f64)> = None;
        for t in influencing_tasks(spec, worst.comm) {
            if current.hosts_of(t).len() >= opts.max_replicas_per_task {
                continue;
            }
            for h in candidate_hosts(spec, arch, t) {
                if current.hosts_of(t).contains(&h) {
                    continue;
                }
                let mut hosts: Vec<HostId> = current.hosts_of(t).iter().copied().collect();
                hosts.push(h);
                let candidate = current.with_assignment(t, hosts);
                if !feasible(&candidate) {
                    continue;
                }
                let v = srg.check(&candidate)?;
                let achieved = v.long_run_srg(worst.comm);
                if best.as_ref().is_none_or(|(_, b)| achieved > *b) {
                    best = Some((candidate, achieved));
                }
            }
        }
        match best {
            Some((next, achieved)) if achieved > worst.achieved => current = next,
            _ => {
                let v = check(spec, arch, &current)?;
                return Err(ReliabilityError::Unsatisfiable {
                    unmet: v
                        .violations
                        .iter()
                        .map(|x| (x.name.clone(), x.achieved))
                        .collect(),
                });
            }
        }
    }
    let v = check(spec, arch, &current)?;
    if v.is_reliable() {
        Ok(current)
    } else {
        Err(ReliabilityError::Unsatisfiable {
            unmet: v
                .violations
                .iter()
                .map(|x| (x.name.clone(), x.achieved))
                .collect(),
        })
    }
}

/// Exhaustive synthesis for small systems: enumerates every assignment of
/// non-empty candidate host subsets (up to `max_replicas_per_task`) and
/// returns a reliable, `feasible` mapping with the fewest total replicas.
///
/// # Errors
///
/// * [`ReliabilityError::Structure`] if the search space exceeds
///   `2^22` combinations;
/// * [`ReliabilityError::Unsatisfiable`] if no combination is reliable.
pub fn exhaustive_synthesize(
    spec: &Specification,
    arch: &Architecture,
    base: &Implementation,
    opts: &SynthesisOptions,
    mut feasible: impl FnMut(&Implementation) -> bool,
) -> Result<Implementation, ReliabilityError> {
    // Per task: list of admissible host subsets.
    let mut choices: Vec<Vec<Vec<HostId>>> = Vec::new();
    let mut space = 1usize;
    for t in spec.task_ids() {
        let hosts = candidate_hosts(spec, arch, t);
        let mut subsets = Vec::new();
        for mask in 1u32..(1 << hosts.len()) {
            let subset: Vec<HostId> = hosts
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &h)| h)
                .collect();
            if subset.len() <= opts.max_replicas_per_task {
                subsets.push(subset);
            }
        }
        space = space.saturating_mul(subsets.len().max(1));
        if space > (1 << 22) {
            return Err(ReliabilityError::Structure {
                detail: "exhaustive synthesis space too large".to_owned(),
            });
        }
        choices.push(subsets);
    }

    let mut srg = SrgComputation::new(spec, arch, base)?;
    let mut best: Option<(Implementation, usize)> = None;
    let mut indices = vec![0usize; choices.len()];
    'outer: loop {
        let mut candidate = base.clone();
        for (ti, &ci) in indices.iter().enumerate() {
            let t = TaskId::new(ti as u32);
            candidate = candidate.with_assignment(t, choices[ti][ci].iter().copied());
        }
        let cost = candidate.replication_count();
        if best.as_ref().is_none_or(|(_, b)| cost < *b)
            && feasible(&candidate)
            && srg.check(&candidate)?.is_reliable()
        {
            best = Some((candidate, cost));
        }
        // Advance the mixed-radix counter.
        for i in 0..indices.len() {
            indices[i] += 1;
            if indices[i] < choices[i].len() {
                continue 'outer;
            }
            indices[i] = 0;
        }
        break;
    }
    match best {
        Some((imp, _)) => Ok(imp),
        None => {
            let v = check(spec, arch, base)?;
            Err(ReliabilityError::Unsatisfiable {
                unmet: v
                    .violations
                    .iter()
                    .map(|x| (x.name.clone(), x.achieved))
                    .collect(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        CommunicatorDecl, HostDecl, Reliability, SensorDecl, SensorId, TaskDecl, ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    /// sensor -> s -> reader -> l -> ctrl -> u(lrc), three hosts at 0.999.
    fn system(lrc: f64) -> (Specification, Architecture, Implementation) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 500)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let l = sb
            .communicator(CommunicatorDecl::new("l", ValueType::Float, 100).unwrap())
            .unwrap();
        let u = sb
            .communicator(
                CommunicatorDecl::new("u", ValueType::Float, 100)
                    .unwrap()
                    .with_lrc(r(lrc)),
            )
            .unwrap();
        let reader = sb
            .task(TaskDecl::new("reader").reads(s, 0).writes(l, 1))
            .unwrap();
        let ctrl = sb.task(TaskDecl::new("ctrl").reads(l, 1).writes(u, 3)).unwrap();
        let spec = sb.build().unwrap();

        let mut ab = Architecture::builder();
        for name in ["h1", "h2", "h3"] {
            ab.host(HostDecl::new(name, r(0.999))).unwrap();
        }
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        for t in [reader, ctrl] {
            ab.wcet_all(t, 1).unwrap();
            ab.wctt_all(t, 1).unwrap();
        }
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(reader, [HostId::new(2)])
            .assign(ctrl, [HostId::new(0)])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        (spec, arch, imp)
    }

    #[test]
    fn already_reliable_base_is_returned_unchanged() {
        let (spec, arch, base) = system(0.99);
        let out = synthesize(&spec, &arch, &base, &SynthesisOptions::default(), |_| true).unwrap();
        assert_eq!(out, base);
    }

    #[test]
    fn greedy_adds_replicas_until_lrc_met() {
        // Base SRG of u is 0.999^2 = 0.998001; demand more.
        let (spec, arch, base) = system(0.9995);
        let out = synthesize(&spec, &arch, &base, &SynthesisOptions::default(), |_| true).unwrap();
        assert!(check(&spec, &arch, &out).unwrap().is_reliable());
        assert!(out.replication_count() > base.replication_count());
    }

    #[test]
    fn impossible_lrc_is_unsatisfiable() {
        // Even triple replication of both tasks cannot achieve 0.9999999999.
        let (spec, arch, base) = system(0.999_999_999_9);
        let err =
            synthesize(&spec, &arch, &base, &SynthesisOptions::default(), |_| true).unwrap_err();
        assert!(matches!(err, ReliabilityError::Unsatisfiable { .. }));
        assert!(err.to_string().contains('u'));
    }

    #[test]
    fn feasibility_predicate_vetoes_candidates() {
        let (spec, arch, base) = system(0.9995);
        // Forbid every change: synthesis must fail.
        let err = synthesize(
            &spec,
            &arch,
            &base,
            &SynthesisOptions::default(),
            |imp| imp.replication_count() <= base.replication_count(),
        )
        .unwrap_err();
        assert!(matches!(err, ReliabilityError::Unsatisfiable { .. }));
    }

    #[test]
    fn exhaustive_finds_minimal_and_greedy_matches_cost() {
        let (spec, arch, base) = system(0.9995);
        let opts = SynthesisOptions::default();
        let greedy = synthesize(&spec, &arch, &base, &opts, |_| true).unwrap();
        let minimal = exhaustive_synthesize(&spec, &arch, &base, &opts, |_| true).unwrap();
        assert!(check(&spec, &arch, &minimal).unwrap().is_reliable());
        assert!(minimal.replication_count() <= greedy.replication_count());
        // λ_u = λ_reader · λ_ctrl: a single duplicated task gives
        // 0.999 · 0.999999 ≈ 0.998999 < 0.9995, so both tasks must be
        // duplicated — minimal total = 4 replicas.
        assert_eq!(minimal.replication_count(), 4);
    }

    #[test]
    fn exhaustive_unsatisfiable() {
        let (spec, arch, base) = system(0.999_999_999_9);
        let err = exhaustive_synthesize(
            &spec,
            &arch,
            &base,
            &SynthesisOptions::default(),
            |_| true,
        )
        .unwrap_err();
        assert!(matches!(err, ReliabilityError::Unsatisfiable { .. }));
    }

    #[test]
    fn influencing_tasks_stops_at_independent() {
        use logrel_core::Value;
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let a = sb
            .communicator(CommunicatorDecl::new("a", ValueType::Float, 10).unwrap())
            .unwrap();
        let b = sb
            .communicator(CommunicatorDecl::new("b", ValueType::Float, 10).unwrap())
            .unwrap();
        let t1 = sb.task(TaskDecl::new("t1").reads(s, 0).writes(a, 1)).unwrap();
        let t2 = sb
            .task(
                TaskDecl::new("t2")
                    .reads(a, 1)
                    .writes(b, 2)
                    .model(FailureModel::Independent)
                    .default_value(Value::Float(0.0)),
            )
            .unwrap();
        let spec = sb.build().unwrap();
        let infl = influencing_tasks(&spec, b);
        assert!(infl.contains(&t2));
        assert!(!infl.contains(&t1), "independent model cuts the chain");
        let infl_a = influencing_tasks(&spec, a);
        assert!(infl_a.contains(&t1));
    }
}
