//! Two-terminal network reliability by pivotal factoring.
//!
//! The paper notes that SRGs "can be computed based on networks of nodes
//! [14, 4]" — probabilistic graphs whose edges fail independently. This
//! module implements the classical pivotal-decomposition (factoring)
//! algorithm with series-parallel and degree-1 reductions:
//!
//! `R(G) = p_e · R(G / e) + (1 − p_e) · R(G − e)`
//!
//! where `G / e` contracts edge `e` (it works) and `G − e` deletes it
//! (it failed).

use crate::error::ReliabilityError;

/// An undirected probabilistic graph with perfectly reliable nodes and
/// independently failing edges.
///
/// # Example
///
/// A "bridge" network: two parallel 2-edge paths plus a cross edge.
///
/// ```
/// use logrel_reliability::ReliabilityGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = ReliabilityGraph::new(4);
/// g.add_edge(0, 1, 0.9)?;
/// g.add_edge(1, 3, 0.9)?;
/// g.add_edge(0, 2, 0.9)?;
/// g.add_edge(2, 3, 0.9)?;
/// g.add_edge(1, 2, 0.9)?; // the bridge
/// let r = g.two_terminal(0, 3)?;
/// assert!(r > 0.97 && r < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityGraph {
    nodes: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl ReliabilityGraph {
    /// Creates a graph with `nodes` isolated vertices `0..nodes`.
    pub fn new(nodes: usize) -> Self {
        ReliabilityGraph {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge with working probability `p ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] for endpoints out of range,
    /// a self loop, or `p` outside `[0, 1]`.
    pub fn add_edge(&mut self, u: usize, v: usize, p: f64) -> Result<(), ReliabilityError> {
        if u >= self.nodes || v >= self.nodes {
            return Err(ReliabilityError::Structure {
                detail: format!("edge ({u}, {v}) out of range for {} nodes", self.nodes),
            });
        }
        if u == v {
            return Err(ReliabilityError::Structure {
                detail: format!("self loop at {u}"),
            });
        }
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(ReliabilityError::Structure {
                detail: format!("edge probability {p} outside [0, 1]"),
            });
        }
        self.edges.push((u, v, p));
        Ok(())
    }

    /// The number of vertices.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Probability that vertices `s` and `t` are connected by working
    /// edges.
    ///
    /// Runs pivotal factoring with parallel-edge merging, series reduction
    /// of internal degree-2 vertices and pruning of degree-≤1 internal
    /// vertices; complexity is exponential in the residual cycle space,
    /// which is fine for the architecture-sized graphs this library
    /// analyses.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] if `s` or `t` is out of
    /// range.
    pub fn two_terminal(&self, s: usize, t: usize) -> Result<f64, ReliabilityError> {
        if s >= self.nodes || t >= self.nodes {
            return Err(ReliabilityError::Structure {
                detail: format!("terminal out of range ({s}, {t})"),
            });
        }
        if s == t {
            return Ok(1.0);
        }
        // Work on a union-find labelling of contracted vertices.
        let state = State {
            parent: (0..self.nodes).collect(),
            edges: self.edges.clone(),
        };
        Ok(factor(state, s, t))
    }
}

impl ReliabilityGraph {
    /// Two-terminal reliability by frontier (boundary-set) dynamic
    /// programming over the edge order: states are partitions of the
    /// currently *active* vertices (those with unprocessed edges) into
    /// connected blocks, with marks for the blocks containing `s` and
    /// `t`. Complexity is exponential only in the graph's pathwidth under
    /// the given edge order — linear on ladders, series chains and other
    /// narrow topologies where pivotal factoring explodes.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] if a terminal is out of
    /// range.
    pub fn two_terminal_frontier(&self, s: usize, t: usize) -> Result<f64, ReliabilityError> {
        use std::collections::BTreeMap;
        if s >= self.nodes || t >= self.nodes {
            return Err(ReliabilityError::Structure {
                detail: format!("terminal out of range ({s}, {t})"),
            });
        }
        if s == t {
            return Ok(1.0);
        }
        // Last edge index touching each vertex (vertices retire after it).
        let mut last_edge: Vec<Option<usize>> = vec![None; self.nodes];
        for (i, &(u, v, _)) in self.edges.iter().enumerate() {
            last_edge[u] = Some(i);
            last_edge[v] = Some(i);
        }
        if last_edge[s].is_none() || last_edge[t].is_none() {
            return Ok(0.0); // an isolated terminal can never connect
        }

        // A block: sorted active vertices + (has_s, has_t) marks.
        type Block = (Vec<usize>, bool, bool);
        type State = Vec<Block>;
        let canon = |mut state: State| -> State {
            for b in &mut state {
                b.0.sort_unstable();
            }
            state.retain(|b| !b.0.is_empty() || b.1 || b.2);
            state.sort();
            state
        };

        let mut states: BTreeMap<State, f64> = BTreeMap::new();
        states.insert(Vec::new(), 1.0);
        let mut connected = 0.0_f64;

        for (i, &(u, v, p)) in self.edges.iter().enumerate() {
            let mut next: BTreeMap<State, f64> = BTreeMap::new();
            for (state, weight) in states {
                // Activate u and v in this state if absent.
                let mut base = state.clone();
                for &x in &[u, v] {
                    if !base.iter().any(|b| b.0.contains(&x)) {
                        base.push((vec![x], x == s, x == t));
                    }
                }
                let bu = base.iter().position(|b| b.0.contains(&u)).expect("active");
                let bv = base.iter().position(|b| b.0.contains(&v)).expect("active");

                // Branch 1: the edge fails.
                let fail = base.clone();
                // Branch 2: the edge works — merge u's and v's blocks.
                let mut work = base;
                if bu != bv {
                    let (lo, hi) = (bu.min(bv), bu.max(bv));
                    let merged = work.remove(hi);
                    work[lo].0.extend(merged.0);
                    work[lo].1 |= merged.1;
                    work[lo].2 |= merged.2;
                }

                for (mut branch, w) in [(fail, weight * (1.0 - p)), (work, weight * p)] {
                    if w == 0.0 {
                        continue;
                    }
                    // Retire vertices whose last edge is this one.
                    for b in &mut branch {
                        b.0.retain(|&x| last_edge[x] != Some(i));
                    }
                    // Resolve emptied blocks.
                    let mut dead = false;
                    let mut done = false;
                    branch.retain(|b| {
                        if !b.0.is_empty() {
                            return true;
                        }
                        match (b.1, b.2) {
                            (true, true) => done = true,
                            (true, false) | (false, true) => dead = true,
                            (false, false) => {}
                        }
                        false
                    });
                    if dead {
                        continue; // s or t got isolated: cannot connect
                    }
                    if done {
                        connected += w; // s–t connected; rest is irrelevant
                        continue;
                    }
                    // A block containing both marks while still active is
                    // also terminal for the s–t question.
                    if branch.iter().any(|b| b.1 && b.2) {
                        connected += w;
                        continue;
                    }
                    *next.entry(canon(branch)).or_insert(0.0) += w;
                }
            }
            states = next;
        }
        Ok(connected)
    }

    /// Enumerates the minimal `s`–`t` path sets: inclusion-minimal sets of
    /// edge indices whose joint operation connects the terminals.
    ///
    /// Uses simple-path DFS (paths never repeat vertices are automatically
    /// minimal as edge sets on simple graphs; explicit absorption handles
    /// parallel edges).
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] if a terminal is out of
    /// range.
    pub fn minimal_paths(&self, s: usize, t: usize) -> Result<Vec<Vec<usize>>, ReliabilityError> {
        if s >= self.nodes || t >= self.nodes {
            return Err(ReliabilityError::Structure {
                detail: format!("terminal out of range ({s}, {t})"),
            });
        }
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.nodes];
        for (i, &(u, v, _)) in self.edges.iter().enumerate() {
            adj[u].push((v, i));
            adj[v].push((u, i));
        }
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut visited = vec![false; self.nodes];
        let mut path: Vec<usize> = Vec::new();
        fn dfs(
            node: usize,
            t: usize,
            adj: &[Vec<(usize, usize)>],
            visited: &mut [bool],
            path: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
        ) {
            if node == t {
                let mut p = path.clone();
                p.sort_unstable();
                out.push(p);
                return;
            }
            visited[node] = true;
            for &(next, edge) in &adj[node] {
                if !visited[next] {
                    path.push(edge);
                    dfs(next, t, adj, visited, path, out);
                    path.pop();
                }
            }
            visited[node] = false;
        }
        if s == t {
            return Ok(vec![Vec::new()]);
        }
        dfs(s, t, &adj, &mut visited, &mut path, &mut out);
        Ok(absorb(out))
    }

    /// Enumerates the minimal `s`–`t` cut sets: inclusion-minimal sets of
    /// edge indices whose joint failure disconnects the terminals.
    ///
    /// Enumerated by exhaustive subset search with absorption — exponential
    /// in the edge count and intended for architecture-sized graphs.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] if a terminal is out of
    /// range or the graph has more than 20 edges.
    pub fn minimal_cuts(&self, s: usize, t: usize) -> Result<Vec<Vec<usize>>, ReliabilityError> {
        if s >= self.nodes || t >= self.nodes {
            return Err(ReliabilityError::Structure {
                detail: format!("terminal out of range ({s}, {t})"),
            });
        }
        let m = self.edges.len();
        if m > 20 {
            return Err(ReliabilityError::Structure {
                detail: format!("cut enumeration limited to 20 edges, got {m}"),
            });
        }
        let connected = |dead: u32| -> bool {
            let mut parent: Vec<usize> = (0..self.nodes).collect();
            fn find(p: &mut [usize], mut x: usize) -> usize {
                while p[x] != x {
                    p[x] = p[p[x]];
                    x = p[x];
                }
                x
            }
            for (i, &(u, v, _)) in self.edges.iter().enumerate() {
                if dead & (1 << i) == 0 {
                    let ru = find(&mut parent, u);
                    let rv = find(&mut parent, v);
                    parent[ru] = rv;
                }
            }
            find(&mut parent, s) == find(&mut parent, t)
        };
        if !connected(0) {
            // Already disconnected: the empty cut suffices.
            return Ok(vec![Vec::new()]);
        }
        let mut cuts: Vec<Vec<usize>> = Vec::new();
        for mask in 1u32..(1 << m) {
            if !connected(mask) {
                cuts.push((0..m).filter(|i| mask & (1 << i) != 0).collect());
            }
        }
        Ok(absorb(cuts))
    }

    /// The Esary–Proschan bounds on the two-terminal reliability from the
    /// minimal path and cut sets:
    ///
    /// `Π_cuts (1 − Π_{e∈cut} (1 − p_e))  ≤  R  ≤  1 − Π_paths (1 − Π_{e∈path} p_e)`
    ///
    /// # Errors
    ///
    /// Propagates the enumeration errors of [`Self::minimal_paths`] and
    /// [`Self::minimal_cuts`].
    pub fn esary_proschan_bounds(
        &self,
        s: usize,
        t: usize,
    ) -> Result<(f64, f64), ReliabilityError> {
        let paths = self.minimal_paths(s, t)?;
        let cuts = self.minimal_cuts(s, t)?;
        let upper = 1.0
            - paths
                .iter()
                .map(|p| 1.0 - p.iter().map(|&e| self.edges[e].2).product::<f64>())
                .product::<f64>();
        let lower = cuts
            .iter()
            .map(|c| 1.0 - c.iter().map(|&e| 1.0 - self.edges[e].2).product::<f64>())
            .product::<f64>();
        Ok((lower, upper))
    }
}

/// Removes every set that is a superset of another (inclusion absorption).
fn absorb(mut sets: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    sets.sort_by_key(Vec::len);
    sets.dedup();
    let mut minimal: Vec<Vec<usize>> = Vec::new();
    for s in sets {
        if !minimal
            .iter()
            .any(|m| m.iter().all(|e| s.binary_search(e).is_ok()))
        {
            minimal.push(s);
        }
    }
    minimal
}

#[derive(Clone)]
struct State {
    parent: Vec<usize>,
    edges: Vec<(usize, usize, f64)>,
}

impl State {
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Normalises: resolves endpoints, drops self loops, merges parallel
    /// edges, and repeatedly removes dangling vertices / applies series
    /// reduction around internal vertices. Returns `true` if s and t are
    /// already merged.
    fn simplify(&mut self, s: usize, t: usize) -> bool {
        loop {
            let rs = self.find(s);
            let rt = self.find(t);
            if rs == rt {
                return true;
            }
            // Resolve and drop self loops.
            let mut resolved: Vec<(usize, usize, f64)> = Vec::with_capacity(self.edges.len());
            for &(u, v, p) in &self.edges.clone() {
                let ru = self.find(u);
                let rv = self.find(v);
                if ru != rv && p > 0.0 {
                    let (a, b) = if ru < rv { (ru, rv) } else { (rv, ru) };
                    resolved.push((a, b, p));
                }
            }
            // Merge parallel edges.
            resolved.sort_by_key(|x| (x.0, x.1));
            let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(resolved.len());
            for (u, v, p) in resolved {
                match merged.last_mut() {
                    Some(last) if last.0 == u && last.1 == v => {
                        last.2 = 1.0 - (1.0 - last.2) * (1.0 - p);
                    }
                    _ => merged.push((u, v, p)),
                }
            }
            self.edges = merged;

            // Degree map.
            let mut degree: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (i, &(u, v, _)) in self.edges.iter().enumerate() {
                degree.entry(u).or_default().push(i);
                degree.entry(v).or_default().push(i);
            }

            let mut changed = false;
            for (&node, incident) in &degree {
                if node == rs || node == rt {
                    continue;
                }
                match incident.len() {
                    1 => {
                        // Dangling internal vertex: its edge is irrelevant.
                        self.edges.remove(incident[0]);
                        changed = true;
                        break;
                    }
                    2 => {
                        // Series reduction.
                        let (i, j) = (incident[0], incident[1]);
                        let (u1, v1, p1) = self.edges[i];
                        let (u2, v2, p2) = self.edges[j];
                        let a = if u1 == node { v1 } else { u1 };
                        let b = if u2 == node { v2 } else { u2 };
                        // Remove higher index first.
                        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                        self.edges.remove(hi);
                        self.edges.remove(lo);
                        if a != b {
                            self.edges.push((a.min(b), a.max(b), p1 * p2));
                        }
                        changed = true;
                        break;
                    }
                    _ => {}
                }
            }
            if !changed {
                return false;
            }
        }
    }
}

fn factor(mut state: State, s: usize, t: usize) -> f64 {
    if state.simplify(s, t) {
        return 1.0;
    }
    // Connectivity check: if t unreachable from s even with all edges, 0.
    if !possibly_connected(&mut state, s, t) {
        return 0.0;
    }
    let Some(&(u, v, p)) = state.edges.first() else {
        return 0.0;
    };
    // Contract branch.
    let mut contracted = state.clone();
    contracted.edges.remove(0);
    contracted.union(u, v);
    // Delete branch.
    let mut deleted = state;
    deleted.edges.remove(0);
    p * factor(contracted, s, t) + (1.0 - p) * factor(deleted, s, t)
}

fn possibly_connected(state: &mut State, s: usize, t: usize) -> bool {
    let mut reach = std::collections::BTreeSet::new();
    let rs = state.find(s);
    let rt = state.find(t);
    reach.insert(rs);
    let edges = state.edges.clone();
    loop {
        let mut grown = false;
        for &(u, v, _) in &edges {
            let ru = state.find(u);
            let rv = state.find(v);
            if reach.contains(&ru) && reach.insert(rv) {
                grown = true;
            }
            if reach.contains(&rv) && reach.insert(ru) {
                grown = true;
            }
        }
        if !grown {
            break;
        }
    }
    reach.contains(&rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_edge() {
        let mut g = ReliabilityGraph::new(2);
        g.add_edge(0, 1, 0.9).unwrap();
        assert!((g.two_terminal(0, 1).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn series_chain() {
        let mut g = ReliabilityGraph::new(3);
        g.add_edge(0, 1, 0.9).unwrap();
        g.add_edge(1, 2, 0.8).unwrap();
        assert!((g.two_terminal(0, 2).unwrap() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges() {
        let mut g = ReliabilityGraph::new(2);
        g.add_edge(0, 1, 0.9).unwrap();
        g.add_edge(0, 1, 0.9).unwrap();
        assert!((g.two_terminal(0, 1).unwrap() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn disconnected_is_zero() {
        let g = ReliabilityGraph::new(3);
        assert_eq!(g.two_terminal(0, 2).unwrap(), 0.0);
    }

    #[test]
    fn same_terminal_is_one() {
        let g = ReliabilityGraph::new(3);
        assert_eq!(g.two_terminal(1, 1).unwrap(), 1.0);
    }

    #[test]
    fn bridge_network_exact_value() {
        // Classical bridge with all edges p: R = 2p^2 + 2p^3 - 5p^4 + 2p^5.
        let p: f64 = 0.9;
        let mut g = ReliabilityGraph::new(4);
        g.add_edge(0, 1, p).unwrap();
        g.add_edge(0, 2, p).unwrap();
        g.add_edge(1, 3, p).unwrap();
        g.add_edge(2, 3, p).unwrap();
        g.add_edge(1, 2, p).unwrap();
        let expected = 2.0 * p.powi(2) + 2.0 * p.powi(3) - 5.0 * p.powi(4) + 2.0 * p.powi(5);
        let got = g.two_terminal(0, 3).unwrap();
        assert!((got - expected).abs() < 1e-10, "got {got}, want {expected}");
    }

    #[test]
    fn dangling_vertices_are_irrelevant() {
        let mut g = ReliabilityGraph::new(4);
        g.add_edge(0, 1, 0.9).unwrap();
        g.add_edge(1, 2, 0.5).unwrap(); // dangling branch to vertex 2
        g.add_edge(0, 3, 0.1).unwrap(); // dangling branch to vertex 3
        assert!((g.two_terminal(0, 1).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut g = ReliabilityGraph::new(2);
        assert!(g.add_edge(0, 0, 0.5).is_err());
        assert!(g.add_edge(0, 5, 0.5).is_err());
        assert!(g.add_edge(0, 1, 1.5).is_err());
        assert!(g.add_edge(0, 1, f64::NAN).is_err());
        g.add_edge(0, 1, 0.9).unwrap();
        assert!(g.two_terminal(0, 7).is_err());
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn perfect_edges_give_one() {
        let mut g = ReliabilityGraph::new(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        assert!((g.two_terminal(0, 2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frontier_matches_factoring_on_small_graphs() {
        let p = 0.9;
        let mut g = ReliabilityGraph::new(4);
        g.add_edge(0, 1, p).unwrap();
        g.add_edge(0, 2, p).unwrap();
        g.add_edge(1, 3, p).unwrap();
        g.add_edge(2, 3, p).unwrap();
        g.add_edge(1, 2, p).unwrap();
        let exact = g.two_terminal(0, 3).unwrap();
        let dp = g.two_terminal_frontier(0, 3).unwrap();
        assert!((exact - dp).abs() < 1e-12, "{exact} vs {dp}");
    }

    #[test]
    fn frontier_degenerate_cases() {
        let g = ReliabilityGraph::new(3);
        assert_eq!(g.two_terminal_frontier(1, 1).unwrap(), 1.0);
        assert_eq!(g.two_terminal_frontier(0, 2).unwrap(), 0.0);
        assert!(g.two_terminal_frontier(0, 9).is_err());
        let mut g2 = ReliabilityGraph::new(2);
        g2.add_edge(0, 1, 0.75).unwrap();
        assert!((g2.two_terminal_frontier(0, 1).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn frontier_handles_long_ladders_quickly() {
        // 100 rungs: factoring would need > 2^100 branches; the frontier
        // DP keeps at most a handful of boundary states.
        let rungs = 100usize;
        let n = 2 * (rungs + 1);
        let mut g = ReliabilityGraph::new(n);
        for i in 0..=rungs {
            g.add_edge(2 * i, 2 * i + 1, 0.95).unwrap();
            if i < rungs {
                g.add_edge(2 * i, 2 * i + 2, 0.95).unwrap();
                g.add_edge(2 * i + 1, 2 * i + 3, 0.95).unwrap();
            }
        }
        let r = g.two_terminal_frontier(0, n - 1).unwrap();
        assert!(r > 0.5 && r < 1.0, "R = {r}");
        // Agreement with factoring on a size factoring can still handle.
        let small = {
            let mut g = ReliabilityGraph::new(8);
            for i in 0..=3usize {
                g.add_edge(2 * i, 2 * i + 1, 0.95).unwrap();
                if i < 3 {
                    g.add_edge(2 * i, 2 * i + 2, 0.95).unwrap();
                    g.add_edge(2 * i + 1, 2 * i + 3, 0.95).unwrap();
                }
            }
            g
        };
        let a = small.two_terminal(0, 7).unwrap();
        let b = small.two_terminal_frontier(0, 7).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn minimal_paths_of_the_bridge() {
        let mut g = ReliabilityGraph::new(4);
        g.add_edge(0, 1, 0.9).unwrap(); // 0
        g.add_edge(0, 2, 0.9).unwrap(); // 1
        g.add_edge(1, 3, 0.9).unwrap(); // 2
        g.add_edge(2, 3, 0.9).unwrap(); // 3
        g.add_edge(1, 2, 0.9).unwrap(); // 4 (bridge)
        let paths = g.minimal_paths(0, 3).unwrap();
        // {0,2}, {1,3}, {0,4,3}, {1,4,2}.
        assert_eq!(paths.len(), 4);
        assert!(paths.contains(&vec![0, 2]));
        assert!(paths.contains(&vec![1, 3]));
        assert!(paths.contains(&vec![0, 3, 4]));
        assert!(paths.contains(&vec![1, 2, 4]));
    }

    #[test]
    fn minimal_cuts_of_the_bridge() {
        let mut g = ReliabilityGraph::new(4);
        g.add_edge(0, 1, 0.9).unwrap();
        g.add_edge(0, 2, 0.9).unwrap();
        g.add_edge(1, 3, 0.9).unwrap();
        g.add_edge(2, 3, 0.9).unwrap();
        g.add_edge(1, 2, 0.9).unwrap();
        let cuts = g.minimal_cuts(0, 3).unwrap();
        // {0,1}, {2,3}, {0,4,3}, {1,4,2}.
        assert_eq!(cuts.len(), 4);
        assert!(cuts.contains(&vec![0, 1]));
        assert!(cuts.contains(&vec![2, 3]));
    }

    #[test]
    fn esary_proschan_brackets_the_exact_value() {
        let p = 0.9;
        let mut g = ReliabilityGraph::new(4);
        g.add_edge(0, 1, p).unwrap();
        g.add_edge(0, 2, p).unwrap();
        g.add_edge(1, 3, p).unwrap();
        g.add_edge(2, 3, p).unwrap();
        g.add_edge(1, 2, p).unwrap();
        let exact = g.two_terminal(0, 3).unwrap();
        let (lo, hi) = g.esary_proschan_bounds(0, 3).unwrap();
        assert!(lo <= exact + 1e-12, "lower {lo} vs exact {exact}");
        assert!(exact <= hi + 1e-12, "upper {hi} vs exact {exact}");
        assert!(hi - lo < 0.05, "bounds should be informative: [{lo}, {hi}]");
    }

    #[test]
    fn paths_and_cuts_degenerate_cases() {
        let g = ReliabilityGraph::new(3);
        // Disconnected: no paths, the empty cut.
        assert!(g.minimal_paths(0, 2).unwrap().is_empty());
        assert_eq!(g.minimal_cuts(0, 2).unwrap(), vec![Vec::<usize>::new()]);
        // Same terminal: the empty path.
        assert_eq!(g.minimal_paths(1, 1).unwrap(), vec![Vec::<usize>::new()]);
        assert!(g.minimal_paths(0, 9).is_err());
        assert!(g.minimal_cuts(9, 0).is_err());
    }

    #[test]
    fn cut_enumeration_rejects_large_graphs() {
        let mut g = ReliabilityGraph::new(23);
        for i in 0..22 {
            g.add_edge(i, i + 1, 0.9).unwrap();
        }
        assert!(g.minimal_cuts(0, 22).is_err());
        // Paths still fine.
        assert_eq!(g.minimal_paths(0, 22).unwrap().len(), 1);
    }

    /// Brute-force reference: enumerate all edge subsets.
    fn brute_force(g: &ReliabilityGraph, s: usize, t: usize) -> f64 {
        let m = g.edges.len();
        let mut total = 0.0;
        for mask in 0..(1u32 << m) {
            let mut prob = 1.0;
            let mut parent: Vec<usize> = (0..g.nodes).collect();
            fn find(p: &mut [usize], mut x: usize) -> usize {
                while p[x] != x {
                    p[x] = p[p[x]];
                    x = p[x];
                }
                x
            }
            for (i, &(u, v, pe)) in g.edges.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    prob *= pe;
                    let ru = find(&mut parent, u);
                    let rv = find(&mut parent, v);
                    parent[ru] = rv;
                } else {
                    prob *= 1.0 - pe;
                }
            }
            if find(&mut parent, s) == find(&mut parent, t) {
                total += prob;
            }
        }
        total
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn esary_proschan_brackets_random_graphs(
            seed_edges in proptest::collection::vec(
                (0usize..5, 0usize..5, 0.1f64..=1.0), 1..8)
        ) {
            let mut g = ReliabilityGraph::new(5);
            for (u, v, p) in seed_edges {
                if u != v {
                    g.add_edge(u, v, p).unwrap();
                }
            }
            if g.edge_count() == 0 {
                return Ok(());
            }
            let exact = g.two_terminal(0, 4).unwrap();
            let (lo, hi) = g.esary_proschan_bounds(0, 4).unwrap();
            prop_assert!(lo <= exact + 1e-9, "lower {} vs exact {}", lo, exact);
            prop_assert!(exact <= hi + 1e-9, "upper {} vs exact {}", hi, exact);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn factoring_matches_brute_force(
            seed_edges in proptest::collection::vec(
                (0usize..5, 0usize..5, 0.0f64..=1.0), 1..9)
        ) {
            let mut g = ReliabilityGraph::new(5);
            for (u, v, p) in seed_edges {
                if u != v {
                    g.add_edge(u, v, p).unwrap();
                }
            }
            let exact = brute_force(&g, 0, 4);
            let fast = g.two_terminal(0, 4).unwrap();
            prop_assert!((exact - fast).abs() < 1e-9, "exact {exact} vs fast {fast}");
            let dp = g.two_terminal_frontier(0, 4).unwrap();
            prop_assert!((exact - dp).abs() < 1e-9, "exact {exact} vs frontier {dp}");
        }
    }
}
