//! Errors of the reliability analysis.

use logrel_core::CoreError;
use std::error::Error;
use std::fmt;

/// Errors raised by SRG computation, LRC checking and synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReliabilityError {
    /// A core-model error (invalid reliability value, unknown id, …).
    Core(CoreError),
    /// The communicator-level dependency graph is cyclic and no task with
    /// the independent input failure model cuts the cycle, so the SRG
    /// induction does not terminate (§3, "Specification with memory").
    CyclicDependencies {
        /// Names of the communicators on unresolvable cycles.
        communicators: Vec<String>,
    },
    /// An input communicator has no bound sensor, so its base-case SRG is
    /// undefined.
    UnboundInput {
        /// The unbound communicator's name.
        communicator: String,
    },
    /// Replication synthesis exhausted its search space without satisfying
    /// every LRC.
    Unsatisfiable {
        /// Names of communicators whose LRC could not be met, with the best
        /// achieved SRG.
        unmet: Vec<(String, f64)>,
    },
    /// An ill-formed reliability block diagram or fault tree (e.g. an empty
    /// parallel block, or `k > n` in a voting gate).
    Structure {
        /// Explanation of the structural problem.
        detail: String,
    },
}

impl fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReliabilityError::Core(e) => write!(f, "{e}"),
            ReliabilityError::CyclicDependencies { communicators } => write!(
                f,
                "communicator cycle without an independent-model task through {}",
                communicators.join(", ")
            ),
            ReliabilityError::UnboundInput { communicator } => {
                write!(f, "input communicator `{communicator}` has no sensor")
            }
            ReliabilityError::Unsatisfiable { unmet } => {
                write!(f, "synthesis failed for: ")?;
                for (i, (name, best)) in unmet.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{name}` (best SRG {best})")?;
                }
                Ok(())
            }
            ReliabilityError::Structure { detail } => write!(f, "ill-formed structure: {detail}"),
        }
    }
}

impl Error for ReliabilityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReliabilityError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ReliabilityError {
    fn from(e: CoreError) -> Self {
        ReliabilityError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let errs: Vec<ReliabilityError> = vec![
            CoreError::ZeroPeriod.into(),
            ReliabilityError::CyclicDependencies {
                communicators: vec!["a".into(), "b".into()],
            },
            ReliabilityError::UnboundInput {
                communicator: "s".into(),
            },
            ReliabilityError::Unsatisfiable {
                unmet: vec![("u".into(), 0.9)],
            },
            ReliabilityError::Structure {
                detail: "empty parallel".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_core_errors() {
        let e: ReliabilityError = CoreError::ZeroPeriod.into();
        assert!(e.source().is_some());
        let s = ReliabilityError::Structure { detail: "x".into() };
        assert!(s.source().is_none());
    }
}
