//! Reliability analysis for interacting real-time tasks.
//!
//! This crate implements §3 of the DATE'08 paper *Logical Reliability of
//! Interacting Real-Time Tasks*:
//!
//! * [`srg`] — singular reliability guarantees: the per-iteration
//!   probability λ_c that a communicator update is reliable, computed
//!   inductively from host/sensor reliabilities and input failure models;
//! * [`analysis`] — the reliability check of Proposition 1 (λ_c ≥ µ_c for
//!   every communicator implies long-run reliability with probability 1),
//!   including periodic time-dependent implementations;
//! * [`rbd`] — reliability block diagrams, the modelling background the
//!   paper builds on (replications in parallel, blocks in series);
//! * [`fault_tree`] — fault trees with AND/OR/voting gates and minimal cut
//!   sets (paper reference \[12\]);
//! * [`netrel`] — two-terminal network reliability by pivotal factoring
//!   (paper references [4, 14]);
//! * [`longrun`] — limit averages of reliability-abstract traces and
//!   SLLN-style empirical checks with Hoeffding confidence bounds;
//! * [`synthesis`] — replication synthesis: searching for a minimal
//!   replication mapping that satisfies every LRC;
//! * [`interval`] — interval SRG evaluation with outward directed
//!   rounding: sound `[lo, hi]` enclosures and three-valued LRC verdicts;
//! * [`symbolic`] — symbolic SRGs as polynomials over component symbols,
//!   with exact derivatives and pinned Birnbaum importance;
//! * [`certify`] — the static certification report combining the three:
//!   verdicts, slacks, degradation margins and bottleneck attribution.

pub mod analysis;
pub mod certify;
pub mod error;
pub mod fault_tree;
pub mod importance;
pub mod interval;
pub mod longrun;
pub mod mission;
pub mod netrel;
pub mod rbd;
pub mod srg;
pub mod symbolic;
pub mod synthesis;

pub use analysis::{check, check_time_dependent, LrcViolation, ReliabilityVerdict};
pub use certify::{certify, Certificate, CommCertificate, ComponentMargin, NEAR_THRESHOLD_SLACK};
pub use error::ReliabilityError;
pub use interval::{
    compute_degraded_srgs, compute_interval_srgs, CertStatus, Interval, IntervalSrgReport,
};
pub use symbolic::{
    compute_symbolic_srgs, pinned_birnbaum, standard_assignment, Poly, Sym, SymbolicSrgReport,
};
pub use fault_tree::Gate;
pub use importance::{architecture_importance, block_importance, ComponentImportance};
pub use longrun::{
    empirical_check, hoeffding_epsilon, limit_average, running_average, LongRunVerdict,
    SlidingMean,
};
pub use netrel::ReliabilityGraph;
pub use rbd::Block;
pub use srg::{communicator_block, compute_srgs, task_reliability, SrgComputation, SrgReport};
pub use synthesis::{exhaustive_synthesize, synthesize, SynthesisOptions};
