//! Component importance measures.
//!
//! Given the RBD of a communicator's SRG, *which* host or sensor should be
//! improved (or replicated) first? Classical reliability engineering
//! answers with importance measures over the structure function:
//!
//! * **Birnbaum importance** `I_B(x) = R(system | x works) − R(system | x
//!   failed)` — the sensitivity of system reliability to component `x`;
//! * **improvement potential** `I_P(x) = R(system | x works) − R(system)` —
//!   the gain from making `x` perfect.
//!
//! Both treat all units with the same *name* as one physical component
//! (pinned together), which matches diagrams where a component appears on
//! several paths.

use crate::error::ReliabilityError;
use crate::rbd::Block;
use crate::srg::communicator_block;
use logrel_core::{Architecture, CommunicatorId, Implementation, Specification};
use std::collections::{BTreeMap, BTreeSet};

/// Importance scores of one named component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentImportance {
    /// The component's name (as labelled in the diagram).
    pub name: String,
    /// Birnbaum importance `∂R/∂p`.
    pub birnbaum: f64,
    /// Improvement potential `R(x perfect) − R`.
    pub improvement: f64,
}

/// Evaluates `block` with the named components in `overrides` pinned to
/// the given working probabilities.
fn probability_with(block: &Block, overrides: &BTreeMap<&str, f64>) -> f64 {
    match block {
        Block::Unit { name, reliability } => name
            .as_deref()
            .and_then(|n| overrides.get(n).copied())
            .unwrap_or_else(|| reliability.get()),
        Block::Series(children) => children
            .iter()
            .map(|c| probability_with(c, overrides))
            .product(),
        Block::Parallel(children) => {
            1.0 - children
                .iter()
                .map(|c| 1.0 - probability_with(c, overrides))
                .product::<f64>()
        }
        Block::KOfN { k, children } => {
            let mut dist = vec![1.0_f64];
            for c in children {
                let p = probability_with(c, overrides);
                let mut next = vec![0.0; dist.len() + 1];
                for (j, &q) in dist.iter().enumerate() {
                    next[j] += q * (1.0 - p);
                    next[j + 1] += q * p;
                }
                dist = next;
            }
            dist.iter().skip(*k).sum()
        }
    }
}

fn collect_names<'b>(block: &'b Block, out: &mut BTreeSet<&'b str>) {
    match block {
        Block::Unit { name, .. } => {
            if let Some(n) = name.as_deref() {
                out.insert(n);
            }
        }
        Block::Series(cs) | Block::Parallel(cs) | Block::KOfN { children: cs, .. } => {
            for c in cs {
                collect_names(c, out);
            }
        }
    }
}

/// Computes Birnbaum importance and improvement potential for every named
/// unit of `block`, sorted by descending Birnbaum importance.
///
/// # Example
///
/// ```
/// use logrel_core::Reliability;
/// use logrel_reliability::{importance::block_importance, Block};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A weak sensor in series with two replicated hosts.
/// let block = Block::series(vec![
///     Block::named_unit("sensor", Reliability::new(0.95)?),
///     Block::parallel(vec![
///         Block::named_unit("h1", Reliability::new(0.99)?),
///         Block::named_unit("h2", Reliability::new(0.99)?),
///     ])?,
/// ]);
/// let ranking = block_importance(&block);
/// // The series sensor dominates.
/// assert_eq!(ranking[0].name, "sensor");
/// # Ok(())
/// # }
/// ```
pub fn block_importance(block: &Block) -> Vec<ComponentImportance> {
    let mut names = BTreeSet::new();
    collect_names(block, &mut names);
    let base = probability_with(block, &BTreeMap::new());
    let mut out: Vec<ComponentImportance> = names
        .into_iter()
        .map(|name| {
            let mut up = BTreeMap::new();
            up.insert(name, 1.0);
            let mut down = BTreeMap::new();
            down.insert(name, 0.0);
            let r_up = probability_with(block, &up);
            let r_down = probability_with(block, &down);
            ComponentImportance {
                name: name.to_owned(),
                birnbaum: r_up - r_down,
                improvement: r_up - base,
            }
        })
        .collect();
    out.sort_by(|a, b| b.birnbaum.total_cmp(&a.birnbaum).then(a.name.cmp(&b.name)));
    out
}

/// Ranks the architecture components (hosts, sensors) by their Birnbaum
/// importance for communicator `comm`'s SRG under `imp` — the components
/// whose improvement (or replication) pays off most.
///
/// # Errors
///
/// Same conditions as [`communicator_block`].
pub fn architecture_importance(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
    comm: CommunicatorId,
) -> Result<Vec<ComponentImportance>, ReliabilityError> {
    let block = communicator_block(spec, arch, imp, comm)?;
    Ok(block_importance(&block))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        CommunicatorDecl, HostDecl, Reliability, SensorDecl, TaskDecl, ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn series_unit_has_full_birnbaum_in_isolation() {
        let b = Block::named_unit("only", r(0.7));
        let imp = block_importance(&b);
        assert_eq!(imp.len(), 1);
        assert!((imp[0].birnbaum - 1.0).abs() < 1e-12);
        assert!((imp[0].improvement - 0.3).abs() < 1e-12);
    }

    #[test]
    fn redundant_components_matter_less() {
        let block = Block::series(vec![
            Block::named_unit("sensor", r(0.95)),
            Block::parallel(vec![
                Block::named_unit("h1", r(0.9)),
                Block::named_unit("h2", r(0.9)),
            ])
            .unwrap(),
        ]);
        let ranking = block_importance(&block);
        assert_eq!(ranking[0].name, "sensor");
        // I_B(sensor) = R(par) = 0.99; I_B(h1) = 0.95 * (1 - 0.9) = 0.095.
        assert!((ranking[0].birnbaum - 0.99).abs() < 1e-12);
        let h1 = ranking.iter().find(|c| c.name == "h1").unwrap();
        assert!((h1.birnbaum - 0.095).abs() < 1e-12);
    }

    #[test]
    fn repeated_names_are_pinned_together() {
        // The same physical host on two paths: pinning both at once makes
        // its Birnbaum importance 1 (it is a single point of failure).
        let block = Block::parallel(vec![
            Block::series(vec![
                Block::named_unit("shared", r(0.9)),
                Block::named_unit("a", r(0.8)),
            ]),
            Block::series(vec![
                Block::named_unit("shared", r(0.9)),
                Block::named_unit("b", r(0.8)),
            ]),
        ])
        .unwrap();
        let ranking = block_importance(&block);
        let shared = ranking.iter().find(|c| c.name == "shared").unwrap();
        // With shared failed the system fails: R_down = 0. With it perfect:
        // 1 - 0.2^2 = 0.96.
        assert!((shared.birnbaum - 0.96).abs() < 1e-12);
        assert_eq!(ranking[0].name, "shared");
    }

    #[test]
    fn k_of_n_importance() {
        let block = Block::k_of_n(
            2,
            vec![
                Block::named_unit("x", r(0.9)),
                Block::named_unit("y", r(0.9)),
                Block::named_unit("z", r(0.9)),
            ],
        )
        .unwrap();
        let ranking = block_importance(&block);
        // Symmetric: all equal; I_B = P(exactly one of the others works)
        // = 2 * 0.9 * 0.1 = 0.18.
        for c in &ranking {
            assert!((c.birnbaum - 0.18).abs() < 1e-12, "{c:?}");
        }
    }

    #[test]
    fn architecture_ranking_of_a_pipeline() {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("ctrl").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = logrel_core::Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.99))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.99))).unwrap();
        let sen = ab.sensor(SensorDecl::new("weak-sensor", r(0.9))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h1, h2])
            .bind_sensor(s, sen)
            .build(&spec, &arch)
            .unwrap();
        let ranking = architecture_importance(&spec, &arch, &imp, u).unwrap();
        // The unreplicated weak sensor dominates the replicated hosts.
        assert_eq!(ranking[0].name, "weak-sensor");
        assert!(ranking.iter().any(|c| c.name.contains("ctrl@h1")));
    }
}
