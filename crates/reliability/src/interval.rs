//! Interval SRG evaluation with outward directed rounding.
//!
//! [`crate::srg::compute_srgs`] evaluates the §3 induction in point `f64`
//! arithmetic, so the Proposition 1 check `λ_c ≥ µ_c` is a rounding error
//! away from certifying an unreliable spec. This module re-runs the same
//! induction over [`Interval`]s whose endpoints are widened *outward* after
//! every floating-point operation: IEEE-754 round-to-nearest is off by at
//! most half an ulp, so stepping one ulp down on the lower endpoint and one
//! ulp up on the upper endpoint after each multiplication/complement keeps
//! the true real-arithmetic value — and, by monotonicity of rounding, every
//! faithfully computed point value — inside the enclosure.
//!
//! Because the whole induction is monotone nondecreasing in every host,
//! sensor and broadcast reliability, endpoint propagation is exact at the
//! real-arithmetic level: the lower endpoint of an SRG is the SRG of the
//! lower-corner architecture. [`compute_degraded_srgs`] exploits this to
//! certify robustly over a uniform reliability box `r ∈ [r − δ, r]` by
//! evaluating the single lower corner (the "monotone lower corner"
//! argument; see DESIGN.md §13).
//!
//! An LRC check against an enclosure returns a three-valued
//! [`CertStatus`]: `lo ≥ µ` certifies, `hi < µ` refutes, anything else is
//! indeterminate. Note that certification is *strict* — unlike
//! [`logrel_core::Reliability::meets`] there is no `1e-12` tolerance,
//! because the enclosure already absorbs all rounding slop soundly.

use crate::error::ReliabilityError;
use crate::srg::analysis_order;
use logrel_core::{
    Architecture, CommunicatorId, CoreError, FailureModel, HostId, Implementation, SensorId,
    Specification, TaskId,
};
use std::fmt;

/// Rounds a lower endpoint outward (towards `0`) by one ulp.
fn down(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x.next_down().max(0.0)
    }
}

/// Rounds an upper endpoint outward (towards `1`) by one ulp.
fn up(x: f64) -> f64 {
    if x >= 1.0 {
        1.0
    } else {
        x.next_up().min(1.0)
    }
}

/// `a · b` rounded towards `0`. Exact (no widening) when a factor is `1`
/// or the product is `0`.
fn mul_down(a: f64, b: f64) -> f64 {
    let p = a * b;
    if a == 1.0 || b == 1.0 || p == 0.0 {
        p
    } else {
        down(p)
    }
}

/// `a · b` rounded towards `1`.
fn mul_up(a: f64, b: f64) -> f64 {
    let p = a * b;
    if a == 1.0 || b == 1.0 || p == 0.0 {
        p
    } else {
        up(p)
    }
}

/// `1 − x` rounded towards `0`. Exact for `x ∈ {0} ∪ [1/2, 1]` (Sterbenz).
fn one_minus_down(x: f64) -> f64 {
    let d = 1.0 - x;
    if x >= 0.5 || x == 0.0 {
        d
    } else {
        down(d)
    }
}

/// `1 − x` rounded towards `1`.
fn one_minus_up(x: f64) -> f64 {
    let d = 1.0 - x;
    if x >= 0.5 || x == 0.0 {
        d
    } else {
        up(d)
    }
}

/// A closed reliability enclosure `[lo, hi] ⊆ [0, 1]`.
///
/// Unlike [`logrel_core::Reliability`] the endpoints may be `0`: a degraded
/// box corner can reach zero reliability, and soundness (not the paper's
/// `(0, 1]` invariant) is the contract here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The degenerate enclosure of a single point.
    pub fn point(x: f64) -> Interval {
        debug_assert!((0.0..=1.0).contains(&x), "reliability out of range: {x}");
        Interval { lo: x, hi: x }
    }

    /// The uniform-degradation box `[max(0, r − δ), r]` used by robust
    /// certification; the lower endpoint is widened outward so the real
    /// value `r − δ` stays inside.
    pub fn degraded(r: f64, delta: f64) -> Interval {
        debug_assert!(delta >= 0.0, "negative degradation: {delta}");
        let lo = if delta == 0.0 { r } else { down(r - delta) };
        Interval { lo: lo.max(0.0), hi: r }
    }

    /// Lower endpoint.
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Enclosure width `hi − lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `x` lies inside the enclosure.
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval complement `1 − x` (antitone: endpoints swap).
    pub fn one_minus(self) -> Interval {
        Interval {
            lo: one_minus_down(self.hi),
            hi: one_minus_up(self.lo),
        }
    }

    /// Series combination `Π r_i`, mirroring
    /// [`logrel_core::Reliability::series`] (empty product is exactly `1`).
    pub fn series<I: IntoIterator<Item = Interval>>(items: I) -> Interval {
        items
            .into_iter()
            .fold(Interval { lo: 1.0, hi: 1.0 }, |acc, r| acc * r)
    }

    /// Parallel combination `1 − Π (1 − r_i)`, mirroring
    /// [`logrel_core::Reliability::parallel`].
    ///
    /// # Errors
    ///
    /// Returns the same [`CoreError::InvalidReliability`] as the point
    /// combinator for an empty iterator.
    pub fn parallel<I: IntoIterator<Item = Interval>>(items: I) -> Result<Interval, CoreError> {
        let mut any = false;
        let q = items.into_iter().fold(
            Interval { lo: 1.0, hi: 1.0 },
            |acc, r| {
                any = true;
                acc * r.one_minus()
            },
        );
        if !any {
            return Err(CoreError::InvalidReliability { value: 0.0 });
        }
        // acc tracked Π(1 − r): its lo came from the *his* of the items,
        // so the complement swap in `one_minus` restores the orientation.
        Ok(q.one_minus())
    }

    /// Three-valued LRC check of this enclosure against the constraint `µ`.
    pub fn certify(self, mu: f64) -> CertStatus {
        if self.lo >= mu {
            CertStatus::Certified
        } else if self.hi < mu {
            CertStatus::Refuted
        } else {
            CertStatus::Indeterminate
        }
    }
}

/// Interval product (both operands in `[0, 1]`, so monotone in both).
impl std::ops::Mul for Interval {
    type Output = Interval;

    fn mul(self, other: Interval) -> Interval {
        Interval {
            lo: mul_down(self.lo, other.lo),
            hi: mul_up(self.hi, other.hi),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Outcome of checking a certified enclosure against an LRC.
///
/// The variant order is severity order (worst first), so the `Ord` minimum
/// over a set of checks is the overall verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CertStatus {
    /// `hi < µ`: even the most optimistic rounding cannot meet the LRC.
    Refuted,
    /// `lo < µ ≤ hi`: the enclosure straddles the constraint; neither
    /// verdict is sound.
    Indeterminate,
    /// `lo ≥ µ`: the LRC holds for every value the true SRG can take.
    Certified,
}

impl CertStatus {
    /// Upper-case rendering used by reports and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            CertStatus::Certified => "CERTIFIED",
            CertStatus::Refuted => "REFUTED",
            CertStatus::Indeterminate => "INDETERMINATE",
        }
    }
}

impl fmt::Display for CertStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Sound enclosures of every task reliability and communicator SRG.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSrgReport {
    task: Vec<Interval>,
    comm: Vec<Interval>,
}

impl IntervalSrgReport {
    /// The enclosure of `λ_t`.
    pub fn task(&self, t: TaskId) -> Interval {
        self.task[t.index()]
    }

    /// The enclosure of `λ_c`.
    pub fn communicator(&self, c: CommunicatorId) -> Interval {
        self.comm[c.index()]
    }

    /// All communicator enclosures in declaration order.
    pub fn communicators(&self) -> &[Interval] {
        &self.comm
    }

    /// All task enclosures in declaration order.
    pub fn tasks(&self) -> &[Interval] {
        &self.task
    }
}

/// Interval mirror of [`crate::srg::compute_srgs`]: every endpoint pair
/// soundly encloses both the true real-arithmetic SRG and the point-`f64`
/// value the plain analysis computes.
///
/// # Errors
///
/// Same conditions as [`crate::srg::compute_srgs`].
pub fn compute_interval_srgs(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
) -> Result<IntervalSrgReport, ReliabilityError> {
    interval_srgs_with(spec, arch, imp, Interval::point, Interval::point)
}

/// Robust variant: every host and sensor reliability `r` is replaced by
/// the degradation box `[r − δ, r]` before the induction runs. A
/// [`CertStatus::Certified`] verdict on the result certifies the LRC for
/// *every* architecture in the box at once (monotone lower corner). The
/// broadcast reliability is left at its declared point value — the box
/// models component wear, not channel wear.
///
/// # Errors
///
/// Same conditions as [`crate::srg::compute_srgs`].
pub fn compute_degraded_srgs(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
    delta: f64,
) -> Result<IntervalSrgReport, ReliabilityError> {
    interval_srgs_with(
        spec,
        arch,
        imp,
        move |r| Interval::degraded(r, delta),
        move |r| Interval::degraded(r, delta),
    )
}

/// The shared interval induction, parameterised over how a declared host /
/// sensor reliability becomes an input enclosure.
pub fn interval_srgs_with(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
    host_box: impl Fn(f64) -> Interval,
    sensor_box: impl Fn(f64) -> Interval,
) -> Result<IntervalSrgReport, ReliabilityError> {
    let brel = Interval::point(arch.broadcast_reliability().get());
    let mut task = Vec::with_capacity(spec.task_count());
    for t in spec.task_ids() {
        let replicas: Vec<Interval> = imp
            .hosts_of(t)
            .iter()
            .map(|&h: &HostId| host_box(arch.host(h).reliability().get()) * brel)
            .collect();
        task.push(Interval::parallel(replicas).map_err(ReliabilityError::Core)?);
    }
    let order = analysis_order(spec)?;
    let mut comm: Vec<Option<Interval>> = vec![None; spec.communicator_count()];
    for &c in &order {
        let lambda = if spec.is_sensor_input(c) {
            let sensors = imp.sensors_of(c);
            if sensors.is_empty() {
                return Err(ReliabilityError::UnboundInput {
                    communicator: spec.communicator(c).name().to_owned(),
                });
            }
            Interval::parallel(
                sensors
                    .iter()
                    .map(|&s: &SensorId| sensor_box(arch.sensor(s).reliability().get())),
            )
            .map_err(ReliabilityError::Core)?
        } else if let Some(t) = spec.writer(c) {
            let lt = task[t.index()];
            match spec.task(t).failure_model() {
                FailureModel::Independent => lt,
                FailureModel::Series => {
                    let inputs = spec
                        .task(t)
                        .input_comm_set()
                        .into_iter()
                        .map(|c2| comm[c2.index()].expect("topological order"));
                    Interval::series(std::iter::once(lt).chain(inputs))
                }
                FailureModel::Parallel => {
                    let inputs = spec
                        .task(t)
                        .input_comm_set()
                        .into_iter()
                        .map(|c2| comm[c2.index()].expect("topological order"));
                    let any_input = Interval::parallel(inputs).map_err(ReliabilityError::Core)?;
                    Interval::series([lt, any_input])
                }
            }
        } else {
            Interval::point(1.0)
        };
        comm[c.index()] = Some(lambda);
    }
    Ok(IntervalSrgReport {
        task,
        comm: comm.into_iter().map(|r| r.expect("all computed")).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval { lo, hi }
    }

    #[test]
    fn point_and_accessors() {
        let p = Interval::point(0.9);
        assert_eq!(p.lo(), 0.9);
        assert_eq!(p.hi(), 0.9);
        assert_eq!(p.width(), 0.0);
        assert!(p.contains(0.9));
        assert!(!p.contains(0.91));
    }

    #[test]
    fn degraded_box_encloses_both_corners() {
        let b = Interval::degraded(0.99, 0.01);
        assert!(b.lo() <= 0.98);
        assert_eq!(b.hi(), 0.99);
        let clamped = Interval::degraded(0.3, 0.5);
        assert_eq!(clamped.lo(), 0.0);
        // δ = 0 keeps the point exactly.
        assert_eq!(Interval::degraded(0.7, 0.0), Interval::point(0.7));
    }

    #[test]
    fn mul_widens_outward() {
        let a = Interval::point(0.9);
        let p = a * a;
        let exact = 0.9 * 0.9;
        assert!(p.lo() < exact && exact < p.hi());
        assert!(p.width() < 1e-15);
    }

    #[test]
    fn mul_by_one_is_exact() {
        let a = Interval::point(0.123_456_789);
        assert_eq!(a * Interval::point(1.0), a);
    }

    #[test]
    fn one_minus_swaps_and_encloses() {
        let a = iv(0.2, 0.3);
        let c = a.one_minus();
        assert!(c.lo() <= 0.7 && 0.7 <= c.hi());
        assert!(c.lo() <= 0.8 && 0.8 <= c.hi());
        // Sterbenz range: exact for operands ≥ 1/2.
        let b = iv(0.5, 0.75).one_minus();
        assert_eq!(b, iv(0.25, 0.5));
    }

    #[test]
    fn empty_series_is_exact_one() {
        assert_eq!(Interval::series([]), Interval::point(1.0));
    }

    #[test]
    fn empty_parallel_is_error() {
        assert!(Interval::parallel([]).is_err());
    }

    #[test]
    fn parallel_of_two_hosts_matches_paper_intro() {
        // §1: two hosts at 0.8 give 1 − 0.04 = 0.96.
        let p = Interval::parallel([Interval::point(0.8); 2]).unwrap();
        assert!(p.contains(0.96));
        assert!(p.width() < 1e-15);
    }

    #[test]
    fn certify_is_three_valued_and_strict() {
        assert_eq!(iv(0.95, 0.96).certify(0.9), CertStatus::Certified);
        assert_eq!(iv(0.95, 0.96).certify(0.97), CertStatus::Refuted);
        assert_eq!(iv(0.95, 0.96).certify(0.955), CertStatus::Indeterminate);
        // Boundary cases: lo == µ certifies, hi == µ is indeterminate.
        assert_eq!(iv(0.9, 0.91).certify(0.9), CertStatus::Certified);
        assert_eq!(iv(0.89, 0.9).certify(0.9), CertStatus::Indeterminate);
    }

    #[test]
    fn status_ordering_puts_worst_first() {
        assert!(CertStatus::Refuted < CertStatus::Indeterminate);
        assert!(CertStatus::Indeterminate < CertStatus::Certified);
        assert_eq!(CertStatus::Certified.to_string(), "CERTIFIED");
    }

    #[test]
    fn display_renders_endpoints() {
        assert_eq!(iv(0.25, 0.5).to_string(), "[0.25, 0.5]");
    }

    proptest! {
        /// The interval combinators enclose the point combinators for any
        /// operand: the invariant the whole module exists for.
        #[test]
        fn interval_ops_enclose_point_ops(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let (pa, pb) = (Interval::point(a), Interval::point(b));
            prop_assert!((pa * pb).contains(a * b));
            prop_assert!(pa.one_minus().contains(1.0 - a));
            let par = Interval::parallel([pa, pb]).unwrap();
            prop_assert!(par.contains(1.0 - (1.0 - a) * (1.0 - b)));
            let ser = Interval::series([pa, pb]);
            prop_assert!(ser.contains(a * b));
        }

        /// Widening never explodes: a two-operand product stays within a
        /// few ulps of the exact value.
        #[test]
        fn widening_is_tight(a in 0.01f64..=1.0, b in 0.01f64..=1.0) {
            let p = Interval::point(a) * Interval::point(b);
            prop_assert!(p.width() <= 4.0 * f64::EPSILON);
        }
    }
}
