//! Reliability block diagrams (RBDs).
//!
//! The paper situates its analysis "closest to that of RBDs, where systems
//! are modeled as networks with AND/OR junctions: an OR junction works
//! reliably when any of its inputs is reliable, and an AND junction requires
//! that all inputs be reliable". [`Block`] is that model: independent units
//! composed by series (AND), parallel (OR) and k-of-n voting junctions.

use crate::error::ReliabilityError;
use logrel_core::Reliability;
use std::fmt;

/// A node of a reliability block diagram.
///
/// # Example
///
/// ```
/// use logrel_core::Reliability;
/// use logrel_reliability::Block;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let host = Block::unit(Reliability::new(0.8)?);
/// // Two replicated hosts feeding one actuator:
/// let system = Block::series(vec![
///     Block::parallel(vec![host.clone(), host])?,
///     Block::unit(Reliability::new(0.99)?),
/// ]);
/// assert!((system.reliability()?.get() - 0.96 * 0.99).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// An atomic component with a fixed reliability.
    Unit {
        /// Optional component label for reporting.
        name: Option<String>,
        /// The component's reliability.
        reliability: Reliability,
    },
    /// AND junction: works iff every child works. An empty series works
    /// vacuously.
    Series(Vec<Block>),
    /// OR junction: works iff at least one child works. Must be non-empty.
    Parallel(Vec<Block>),
    /// Voting junction: works iff at least `k` of the children work.
    KOfN {
        /// Required number of working children.
        k: usize,
        /// The voted children.
        children: Vec<Block>,
    },
}

impl Block {
    /// An anonymous unit.
    pub fn unit(reliability: Reliability) -> Block {
        Block::Unit {
            name: None,
            reliability,
        }
    }

    /// A labelled unit.
    pub fn named_unit(name: impl Into<String>, reliability: Reliability) -> Block {
        Block::Unit {
            name: Some(name.into()),
            reliability,
        }
    }

    /// A series (AND) junction.
    pub fn series(children: Vec<Block>) -> Block {
        Block::Series(children)
    }

    /// A parallel (OR) junction.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] for an empty child list (an
    /// empty OR junction never works).
    pub fn parallel(children: Vec<Block>) -> Result<Block, ReliabilityError> {
        if children.is_empty() {
            return Err(ReliabilityError::Structure {
                detail: "empty parallel junction".to_owned(),
            });
        }
        Ok(Block::Parallel(children))
    }

    /// A k-of-n voting junction.
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Structure`] if `k > children.len()`.
    pub fn k_of_n(k: usize, children: Vec<Block>) -> Result<Block, ReliabilityError> {
        if k > children.len() {
            return Err(ReliabilityError::Structure {
                detail: format!("{k}-of-{} voting junction", children.len()),
            });
        }
        Ok(Block::KOfN { k, children })
    }

    /// The probability that the block works, assuming all units fail
    /// independently.
    pub fn probability(&self) -> f64 {
        match self {
            Block::Unit { reliability, .. } => reliability.get(),
            Block::Series(children) => children.iter().map(Block::probability).product(),
            Block::Parallel(children) => {
                1.0 - children
                    .iter()
                    .map(|c| 1.0 - c.probability())
                    .product::<f64>()
            }
            Block::KOfN { k, children } => {
                // DP over "probability that exactly j of the first i
                // children work".
                let mut dist = vec![1.0_f64];
                for c in children {
                    let p = c.probability();
                    let mut next = vec![0.0; dist.len() + 1];
                    for (j, &q) in dist.iter().enumerate() {
                        next[j] += q * (1.0 - p);
                        next[j + 1] += q * p;
                    }
                    dist = next;
                }
                dist.iter().skip(*k).sum()
            }
        }
    }

    /// The block reliability as a validated [`Reliability`].
    ///
    /// # Errors
    ///
    /// Returns [`ReliabilityError::Core`] if the probability is outside
    /// `(0, 1]` — e.g. a voting junction that can never be satisfied, or a
    /// series product that underflows to zero.
    pub fn reliability(&self) -> Result<Reliability, ReliabilityError> {
        // Guard against tiny positive round-off above 1.
        let p = self.probability().min(1.0);
        Reliability::new(p).map_err(Into::into)
    }

    /// Converts the diagram into its dual fault tree: a unit of
    /// reliability `r` becomes a basic failure event of probability
    /// `1 − r`; series (AND-working) becomes OR-failing; parallel becomes
    /// AND-failing; `k`-of-`n` working becomes `(n−k+1)`-of-`n` failing.
    /// Anonymous units are named `unit<i>` by position.
    ///
    /// The duality `tree.probability() == 1 − block.probability()` holds
    /// exactly; minimal cut sets of the tree are the diagram's failure
    /// modes.
    pub fn to_fault_tree(&self) -> crate::fault_tree::Gate {
        let mut counter = 0usize;
        self.to_fault_tree_inner(&mut counter)
    }

    fn to_fault_tree_inner(&self, counter: &mut usize) -> crate::fault_tree::Gate {
        use crate::fault_tree::Gate;
        match self {
            Block::Unit { name, reliability } => {
                let label = name.clone().unwrap_or_else(|| {
                    let l = format!("unit{counter}");
                    *counter += 1;
                    l
                });
                Gate::basic(label, reliability.failure())
            }
            Block::Series(children) => Gate::or(
                children
                    .iter()
                    .map(|c| c.to_fault_tree_inner(counter))
                    .collect(),
            ),
            Block::Parallel(children) => Gate::and(
                children
                    .iter()
                    .map(|c| c.to_fault_tree_inner(counter))
                    .collect(),
            ),
            Block::KOfN { k, children } => {
                let n = children.len();
                Gate::vote(
                    n - k + 1,
                    children
                        .iter()
                        .map(|c| c.to_fault_tree_inner(counter))
                        .collect(),
                )
                .expect("n-k+1 <= n by construction")
            }
        }
    }

    /// The number of atomic units in the diagram.
    pub fn unit_count(&self) -> usize {
        match self {
            Block::Unit { .. } => 1,
            Block::Series(cs) | Block::Parallel(cs) | Block::KOfN { children: cs, .. } => {
                cs.iter().map(Block::unit_count).sum()
            }
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Block::Unit { name, reliability } => match name {
                Some(n) => write!(f, "{n}[{}]", reliability.get()),
                None => write!(f, "[{}]", reliability.get()),
            },
            Block::Series(cs) => {
                write!(f, "series(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Block::Parallel(cs) => {
                write!(f, "parallel(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Block::KOfN { k, children } => {
                write!(f, "{k}-of-{}(", children.len())?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn unit_probability_is_its_reliability() {
        assert_eq!(Block::unit(r(0.7)).probability(), 0.7);
    }

    #[test]
    fn series_and_parallel_basics() {
        let s = Block::series(vec![Block::unit(r(0.9)), Block::unit(r(0.8))]);
        assert!((s.probability() - 0.72).abs() < 1e-12);
        let p = Block::parallel(vec![Block::unit(r(0.9)), Block::unit(r(0.8))]).unwrap();
        assert!((p.probability() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn empty_series_works_vacuously() {
        assert_eq!(Block::series(vec![]).probability(), 1.0);
    }

    #[test]
    fn empty_parallel_rejected() {
        assert!(Block::parallel(vec![]).is_err());
    }

    #[test]
    fn k_of_n_matches_binomial() {
        // 2-of-3 with p = 0.9 each: 3 * 0.81 * 0.1 + 0.729 = 0.972.
        let b = Block::k_of_n(2, vec![Block::unit(r(0.9)); 3]).unwrap();
        assert!((b.probability() - 0.972).abs() < 1e-12);
    }

    #[test]
    fn zero_of_n_always_works() {
        let b = Block::k_of_n(0, vec![Block::unit(r(0.1))]).unwrap();
        assert_eq!(b.probability(), 1.0);
    }

    #[test]
    fn k_greater_than_n_rejected() {
        assert!(Block::k_of_n(3, vec![Block::unit(r(0.5)); 2]).is_err());
    }

    #[test]
    fn one_of_n_equals_parallel_and_n_of_n_equals_series() {
        let units = vec![Block::unit(r(0.8)), Block::unit(r(0.6)), Block::unit(r(0.9))];
        let one = Block::k_of_n(1, units.clone()).unwrap().probability();
        let par = Block::parallel(units.clone()).unwrap().probability();
        assert!((one - par).abs() < 1e-12);
        let all = Block::k_of_n(3, units.clone()).unwrap().probability();
        let ser = Block::series(units).probability();
        assert!((all - ser).abs() < 1e-12);
    }

    #[test]
    fn unit_count_and_display() {
        let b = Block::series(vec![
            Block::named_unit("a", r(0.9)),
            Block::parallel(vec![Block::unit(r(0.8)), Block::unit(r(0.8))]).unwrap(),
        ]);
        assert_eq!(b.unit_count(), 3);
        let s = b.to_string();
        assert!(s.contains("series") && s.contains("parallel") && s.contains('a'));
        let v = Block::k_of_n(1, vec![Block::unit(r(0.5))]).unwrap();
        assert!(v.to_string().contains("1-of-1"));
    }

    #[test]
    fn fault_tree_dual_is_exact() {
        let block = Block::series(vec![
            Block::named_unit("sensor", r(0.95)),
            Block::parallel(vec![
                Block::named_unit("h1", r(0.9)),
                Block::named_unit("h2", r(0.8)),
            ])
            .unwrap(),
            Block::k_of_n(2, vec![Block::unit(r(0.7)); 3]).unwrap(),
        ]);
        let tree = block.to_fault_tree();
        assert!((tree.probability() - (1.0 - block.probability())).abs() < 1e-12);
        // The system's single points of failure appear as singleton cuts.
        let cuts = tree.minimal_cut_sets();
        assert!(cuts.iter().any(|c| c.len() == 1 && c.contains("sensor")));
        // The replicated hosts only fail jointly.
        assert!(cuts
            .iter()
            .any(|c| c.contains("h1") && c.contains("h2") && c.len() == 2));
    }

    #[test]
    fn fault_tree_dual_round_trip() {
        // block -> tree -> block preserves the probability.
        let block = Block::parallel(vec![
            Block::series(vec![Block::unit(r(0.9)), Block::unit(r(0.8))]),
            Block::named_unit("x", r(0.6)),
        ])
        .unwrap();
        let back = block.to_fault_tree().to_block().unwrap();
        assert!((back.probability() - block.probability()).abs() < 1e-12);
    }

    #[test]
    fn reliability_clamps_roundoff() {
        let many = Block::parallel(vec![Block::unit(r(0.999_999_999_999)); 8]).unwrap();
        assert!(many.reliability().is_ok());
    }

    proptest! {
        #[test]
        fn series_below_min_parallel_above_max(
            a in 0.05f64..1.0, b in 0.05f64..1.0
        ) {
            let ua = Block::unit(r(a));
            let ub = Block::unit(r(b));
            let s = Block::series(vec![ua.clone(), ub.clone()]).probability();
            let p = Block::parallel(vec![ua, ub]).unwrap().probability();
            prop_assert!(s <= a.min(b) + 1e-12);
            prop_assert!(p + 1e-12 >= a.max(b));
        }

        #[test]
        fn k_of_n_is_monotone_in_k(
            p in 0.05f64..1.0, n in 1usize..6
        ) {
            let units = vec![Block::unit(r(p)); n];
            let mut last = 1.0 + 1e-12;
            for k in 0..=n {
                let q = Block::k_of_n(k, units.clone()).unwrap().probability();
                prop_assert!(q <= last + 1e-12);
                last = q;
            }
        }
    }
}
