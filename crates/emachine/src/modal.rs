//! Multi-mode E-code with runtime mode switching.
//!
//! §4 of the paper notes that the 3TS program has "mode switches between
//! tasks, but the switch is always to tasks with identical reliability
//! constraints, and the reliability analysis applies". This module
//! generates E-code for a *module* with several modes: every mode runs its
//! own reaction-block cycle; at each round boundary a dispatch block tests
//! the mode's switch events ([`Instruction::JumpIfEvent`], answered by
//! [`Platform::event`]) and either jumps to the target mode's entry or
//! re-enters the current mode.
//!
//! [`Platform::event`]: crate::machine::Platform::event

use crate::codegen::{emit_blocks, ModeBlocks};
use crate::instruction::{Addr, ECode, Instruction};
use logrel_core::{HostId, Implementation, Specification};
use std::error::Error;
use std::fmt;

/// One mode of a modal program: its flattened specification and mapping.
#[derive(Debug, Clone, Copy)]
pub struct ModalMode<'a> {
    /// The mode's name (for diagnostics).
    pub name: &'a str,
    /// The mode's flattened specification.
    pub spec: &'a Specification,
    /// The mode's replication mapping.
    pub imp: &'a Implementation,
}

/// A mode switch: while in mode `from`, if `event` fires at a round
/// boundary, continue in mode `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeSwitch {
    /// Index of the source mode.
    pub from: usize,
    /// The event identifier passed to [`Platform::event`].
    ///
    /// [`Platform::event`]: crate::machine::Platform::event
    pub event: u32,
    /// Index of the target mode.
    pub to: usize,
}

/// Errors of modal code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModalError {
    /// No modes were supplied.
    NoModes,
    /// Two modes have different round periods (mode switches happen at
    /// round boundaries, so periods must agree).
    PeriodMismatch {
        /// The first mode's name and period.
        first: (String, u64),
        /// The offending mode's name and period.
        other: (String, u64),
    },
    /// A switch references a mode index out of range.
    UnknownMode {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for ModalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModalError::NoModes => write!(f, "modal program has no modes"),
            ModalError::PeriodMismatch { first, other } => write!(
                f,
                "mode `{}` has period {} but mode `{}` has period {}",
                first.0, first.1, other.0, other.1
            ),
            ModalError::UnknownMode { index } => {
                write!(f, "switch references unknown mode index {index}")
            }
        }
    }
}

impl Error for ModalError {}

/// Generates the modal E-code program for `host`.
///
/// Execution starts in mode 0. Each mode's final block chains (via its
/// wrap-around `future`) into the mode's dispatch block at the next round
/// boundary; the dispatch tests this mode's switches in declaration order
/// and jumps to the first fired target's entry, falling through to the
/// current mode's entry otherwise.
///
/// # Errors
///
/// See [`ModalError`].
pub fn generate_modal(
    modes: &[ModalMode<'_>],
    switches: &[ModeSwitch],
    host: HostId,
) -> Result<ECode, ModalError> {
    let first = modes.first().ok_or(ModalError::NoModes)?;
    for m in modes {
        if m.spec.round_period() != first.spec.round_period() {
            return Err(ModalError::PeriodMismatch {
                first: (first.name.to_owned(), first.spec.round_period().as_u64()),
                other: (m.name.to_owned(), m.spec.round_period().as_u64()),
            });
        }
    }
    for sw in switches {
        if sw.from >= modes.len() || sw.to >= modes.len() {
            return Err(ModalError::UnknownMode {
                index: sw.from.max(sw.to),
            });
        }
    }

    // Emit every mode's blocks, tracking global offsets.
    let mut instructions: Vec<Instruction> = Vec::new();
    let mut mode_entries = Vec::with_capacity(modes.len());
    let mut mode_last_future: Vec<usize> = Vec::with_capacity(modes.len());
    for m in modes {
        let ModeBlocks {
            instructions: mut ins,
            block_offsets,
        } = emit_blocks(m.spec, m.imp, host);
        let base = instructions.len();
        // Patch intra-mode chaining: block k -> block k+1; remember the
        // last future for the dispatch hookup.
        let mut block = 0usize;
        let mut last_future_at = 0usize;
        for (i, instr) in ins.iter_mut().enumerate() {
            if let Instruction::Future { target, .. } = instr {
                if block + 1 < block_offsets.len() {
                    *target = Addr(base + block_offsets[block + 1]);
                } else {
                    last_future_at = base + i; // patched to dispatch below
                }
                block += 1;
            }
        }
        mode_entries.push(Addr(base + block_offsets[0]));
        mode_last_future.push(last_future_at);
        instructions.extend(ins);
    }

    // Emit one dispatch block per mode and patch the wrap futures.
    for (mi, _m) in modes.iter().enumerate() {
        let dispatch = Addr(instructions.len());
        for sw in switches.iter().filter(|sw| sw.from == mi) {
            instructions.push(Instruction::JumpIfEvent {
                event: sw.event,
                target: mode_entries[sw.to],
            });
        }
        instructions.push(Instruction::Jump(mode_entries[mi]));
        if let Instruction::Future { target, .. } = &mut instructions[mode_last_future[mi]] {
            *target = dispatch;
        } else {
            unreachable!("last future bookkeeping");
        }
    }

    Ok(ECode::new(instructions, mode_entries[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::DriverOp;
    use crate::machine::{EMachine, Platform};
    use logrel_core::{
        Architecture, CommunicatorDecl, HostDecl, Reliability, SensorDecl, SensorId, TaskDecl,
        TaskId, Tick, ValueType,
    };

    /// Builds a mode whose single task is named `task`, over the shared
    /// communicators s (sensor, period 10) and u (period 10).
    fn mode_system(task: &str) -> (Specification, Implementation) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new(task).reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab
            .host(HostDecl::new("h", Reliability::new(0.99).unwrap()))
            .unwrap();
        ab.sensor(SensorDecl::new("sn", Reliability::ONE)).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        (spec, imp)
    }

    /// Fires event 1 exactly at `fire_at`; records releases.
    struct Switcher {
        fire_at: Tick,
        releases: Vec<(Tick, TaskId)>,
        updates: Vec<Tick>,
    }

    impl Platform for Switcher {
        fn call(&mut self, _h: HostId, op: DriverOp, now: Tick) {
            if matches!(op, DriverOp::UpdateCommunicator { .. }) {
                self.updates.push(now);
            }
        }
        fn release(&mut self, _h: HostId, task: TaskId, now: Tick) {
            self.releases.push((now, task));
        }
        fn event(&mut self, event: u32, now: Tick) -> bool {
            event == 1 && now == self.fire_at
        }
    }

    #[test]
    fn switch_changes_the_released_task_at_a_round_boundary() {
        let (spec_a, imp_a) = mode_system("normal");
        let (spec_b, imp_b) = mode_system("degraded");
        let modes = [
            ModalMode {
                name: "normal",
                spec: &spec_a,
                imp: &imp_a,
            },
            ModalMode {
                name: "degraded",
                spec: &spec_b,
                imp: &imp_b,
            },
        ];
        let switches = [ModeSwitch {
            from: 0,
            event: 1,
            to: 1,
        }];
        let code = generate_modal(&modes, &switches, HostId::new(0)).unwrap();
        let mut machine = EMachine::new(code, HostId::new(0));
        let mut platform = Switcher {
            fire_at: Tick::new(30),
            releases: Vec::new(),
            updates: Vec::new(),
        };
        machine.run_until(Tick::new(55), &mut platform);
        // Rounds 0..2 release mode 0's task; the event fires at the round
        // boundary t=30, so rounds starting at 30+ release mode 1's task.
        // Both specs name their task id 0, so distinguish by mode via the
        // release count before/after.
        let before: Vec<_> = platform
            .releases
            .iter()
            .filter(|(t, _)| t.as_u64() < 30)
            .collect();
        let after: Vec<_> = platform
            .releases
            .iter()
            .filter(|(t, _)| t.as_u64() >= 30)
            .collect();
        assert_eq!(before.len(), 3); // t = 0, 10, 20
        assert_eq!(after.len(), 3); // t = 30, 40, 50
        // Communicator updates continue at every period across the switch.
        let expected: Vec<u64> = (0..=5).map(|k| k * 10).collect();
        let mut got: Vec<u64> = platform.updates.iter().map(|t| t.as_u64()).collect();
        got.dedup();
        assert_eq!(got, expected);
    }

    #[test]
    fn without_events_mode_zero_loops_forever() {
        let (spec_a, imp_a) = mode_system("normal");
        let (spec_b, imp_b) = mode_system("degraded");
        let modes = [
            ModalMode {
                name: "normal",
                spec: &spec_a,
                imp: &imp_a,
            },
            ModalMode {
                name: "degraded",
                spec: &spec_b,
                imp: &imp_b,
            },
        ];
        let switches = [ModeSwitch {
            from: 0,
            event: 1,
            to: 1,
        }];
        let code = generate_modal(&modes, &switches, HostId::new(0)).unwrap();
        let mut machine = EMachine::new(code, HostId::new(0));
        let mut platform = Switcher {
            fire_at: Tick::new(u64::MAX),
            releases: Vec::new(),
            updates: Vec::new(),
        };
        machine.run_until(Tick::new(45), &mut platform);
        assert_eq!(platform.releases.len(), 5); // t = 0, 10, 20, 30, 40
        assert_eq!(machine.next_trigger(), Some(Tick::new(50)));
    }

    #[test]
    fn period_mismatch_is_rejected() {
        let (spec_a, imp_a) = mode_system("normal");
        // A mode with a different round.
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 20)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 20).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("slow").reads(s, 0).writes(u, 1)).unwrap();
        let spec_b = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab
            .host(HostDecl::new("h", Reliability::new(0.99).unwrap()))
            .unwrap();
        ab.sensor(SensorDecl::new("sn", Reliability::ONE)).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp_b = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec_b, &arch)
            .unwrap();
        let modes = [
            ModalMode {
                name: "normal",
                spec: &spec_a,
                imp: &imp_a,
            },
            ModalMode {
                name: "slow",
                spec: &spec_b,
                imp: &imp_b,
            },
        ];
        let err = generate_modal(&modes, &[], HostId::new(0)).unwrap_err();
        assert!(matches!(err, ModalError::PeriodMismatch { .. }));
        assert!(err.to_string().contains("period"));
    }

    #[test]
    fn empty_and_out_of_range_inputs_rejected() {
        assert!(matches!(
            generate_modal(&[], &[], HostId::new(0)),
            Err(ModalError::NoModes)
        ));
        let (spec_a, imp_a) = mode_system("normal");
        let modes = [ModalMode {
            name: "normal",
            spec: &spec_a,
            imp: &imp_a,
        }];
        let err = generate_modal(
            &modes,
            &[ModeSwitch {
                from: 0,
                event: 1,
                to: 5,
            }],
            HostId::new(0),
        )
        .unwrap_err();
        assert!(matches!(err, ModalError::UnknownMode { index: 5 }));
    }
}
