//! Compiling a specification into per-host E-code.
//!
//! One reaction block is emitted per *event instant* of the round — an
//! instant where a communicator update is due or a task hosted here reaches
//! its read time. A block performs, in order:
//!
//! 1. `call update(c, i)` for every communicator instance due now (voting
//!    over received broadcast values happens inside the driver), with
//!    sensor-fed communicators refreshed via `call read_sensors(c)`;
//! 2. `call load_inputs(t)` followed by `release t` for every local task
//!    replication whose read time is now;
//! 3. `future Δ next_block; return` — chaining to the next event instant,
//!    with the last block wrapping to instant 0 of the next round.
//!
//! The ordering realises the paper's semantics assumption (3): "if a
//! communicator is updated, then all replications are first updated and
//! then read".

use crate::instruction::{Addr, DriverOp, ECode, Instruction};
use logrel_core::{HostId, Implementation, Specification, Tick};
use std::collections::BTreeSet;

/// The reaction blocks of one mode on one host: flat instructions with
/// `Future` targets left unpatched (`Addr(usize::MAX)`), the offset of each
/// block and the round length.
pub(crate) struct ModeBlocks {
    pub instructions: Vec<Instruction>,
    /// Offset of each block within `instructions`.
    pub block_offsets: Vec<usize>,
}

pub(crate) fn emit_blocks(
    spec: &Specification,
    imp: &Implementation,
    host: HostId,
) -> ModeBlocks {
    let round = spec.round_period().as_u64();

    // Collect event instants.
    let mut instants: BTreeSet<u64> = BTreeSet::new();
    for c in spec.communicator_ids() {
        let period = spec.communicator(c).period().as_u64();
        let mut t = 0;
        while t < round {
            instants.insert(t);
            t += period;
        }
    }
    for t in spec.task_ids() {
        if imp.hosts_of(t).contains(&host) {
            instants.insert(spec.read_time(t).as_u64() % round);
            for &a in spec.task(t).inputs() {
                instants.insert(spec.access_instant(a).as_u64() % round);
            }
        }
    }
    let instants: Vec<u64> = instants.into_iter().collect();

    let mut instructions = Vec::new();
    let mut block_offsets = Vec::with_capacity(instants.len());
    for (k, &at) in instants.iter().enumerate() {
        block_offsets.push(instructions.len());
        let now = Tick::new(at);

        // 1. Communicator updates due at `now`.
        for c in spec.communicator_ids() {
            let period = spec.communicator(c).period();
            if now.is_multiple_of(period) {
                if spec.is_sensor_input(c) {
                    instructions.push(Instruction::Call(DriverOp::ReadSensors { comm: c }));
                }
                instructions.push(Instruction::Call(DriverOp::UpdateCommunicator {
                    comm: c,
                    instance: at / period.as_u64(),
                }));
            }
        }

        // 2. Input latches due at `now` on this host (access instants),
        //    then releases for tasks whose read time is now.
        for t in spec.task_ids() {
            if !imp.hosts_of(t).contains(&host) {
                continue;
            }
            for (index, &a) in spec.task(t).inputs().iter().enumerate() {
                if spec.access_instant(a).as_u64() == at {
                    instructions.push(Instruction::Call(DriverOp::LatchInput {
                        task: t,
                        index: index as u32,
                    }));
                }
            }
        }
        for t in spec.task_ids() {
            if imp.hosts_of(t).contains(&host) && spec.read_time(t).as_u64() == at {
                instructions.push(Instruction::Release { task: t });
            }
        }

        // 3. Chain to the next block (target patched by the caller).
        let delta = if k + 1 < instants.len() {
            instants[k + 1] - at
        } else {
            round - at + instants[0]
        };
        instructions.push(Instruction::Future {
            delta,
            target: Addr(usize::MAX),
        });
        instructions.push(Instruction::Return);
    }
    ModeBlocks {
        instructions,
        block_offsets,
    }
}

/// Generates the (single-mode) E-code program for `host`.
///
/// Communicator updates are emitted on *every* host (all replications must
/// stay synchronised); loads and releases only for tasks mapped to `host`.
pub fn generate(spec: &Specification, imp: &Implementation, host: HostId) -> ECode {
    let ModeBlocks {
        mut instructions,
        block_offsets,
    } = emit_blocks(spec, imp, host);
    // Block k chains to block k+1, cyclically.
    let mut block = 0usize;
    for ins in instructions.iter_mut() {
        if let Instruction::Future { target, .. } = ins {
            let next = (block + 1) % block_offsets.len();
            *target = Addr(block_offsets[next]);
            block += 1;
        }
    }
    ECode::new(instructions, Addr(block_offsets[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        Architecture, CommunicatorDecl, HostDecl, Reliability, SensorDecl, SensorId, TaskDecl,
        ValueType,
    };

    fn system() -> (Specification, Implementation, HostId, HostId) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 5).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("ctrl").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab
            .host(HostDecl::new("h1", Reliability::new(0.99).unwrap()))
            .unwrap();
        let h2 = ab
            .host(HostDecl::new("h2", Reliability::new(0.99).unwrap()))
            .unwrap();
        ab.sensor(SensorDecl::new("sn", Reliability::ONE)).unwrap();
        ab.wcet_all(t, 2).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        (spec, imp, h1, h2)
    }

    #[test]
    fn generates_blocks_for_each_event_instant() {
        let (spec, imp, h1, _) = system();
        let code = generate(&spec, &imp, h1);
        // Event instants: 0 and 5 (u's second instance). Two blocks.
        let futures: Vec<_> = (0..code.len())
            .map(|i| code.instruction(Addr(i)))
            .filter(|i| matches!(i, Instruction::Future { .. }))
            .collect();
        assert_eq!(futures.len(), 2);
        // Deltas chain 0 -> 5 -> (wrap) 10.
        assert!(matches!(futures[0], Instruction::Future { delta: 5, .. }));
        assert!(matches!(futures[1], Instruction::Future { delta: 5, .. }));
    }

    #[test]
    fn mapped_host_releases_the_task_but_other_host_does_not() {
        let (spec, imp, h1, h2) = system();
        let t = spec.find_task("ctrl").unwrap();
        let on_h1 = generate(&spec, &imp, h1);
        let on_h2 = generate(&spec, &imp, h2);
        let has_release = |code: &ECode| {
            (0..code.len())
                .map(|i| code.instruction(Addr(i)))
                .any(|i| i == Instruction::Release { task: t })
        };
        assert!(has_release(&on_h1));
        assert!(!has_release(&on_h2));
        // But both hosts update communicators.
        let updates = |code: &ECode| {
            (0..code.len())
                .map(|i| code.instruction(Addr(i)))
                .filter(|i| matches!(i, Instruction::Call(DriverOp::UpdateCommunicator { .. })))
                .count()
        };
        assert_eq!(updates(&on_h1), updates(&on_h2));
        assert_eq!(updates(&on_h1), 3); // s@0, u@0, u@5
    }

    #[test]
    fn updates_precede_latches_in_block_zero() {
        let (spec, imp, h1, _) = system();
        let code = generate(&spec, &imp, h1);
        let mut saw_update = false;
        for i in 0..code.len() {
            match code.instruction(Addr(i)) {
                Instruction::Call(DriverOp::UpdateCommunicator { .. }) => saw_update = true,
                Instruction::Call(DriverOp::LatchInput { .. }) => {
                    assert!(saw_update, "latch before any update in block 0");
                    return;
                }
                Instruction::Return => break,
                _ => {}
            }
        }
        panic!("no latch found in block 0");
    }

    #[test]
    fn latches_are_emitted_at_access_instants_not_read_time() {
        // A task reading an early instance: the latch must sit in the
        // block of the access instant, before the release's block.
        let mut sb = Specification::builder();
        let a = sb
            .communicator(
                CommunicatorDecl::new("a", ValueType::Float, 2)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let b = sb
            .communicator(
                CommunicatorDecl::new("b", ValueType::Float, 6)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let o = sb
            .communicator(CommunicatorDecl::new("o", ValueType::Float, 12).unwrap())
            .unwrap();
        let t = sb
            .task(TaskDecl::new("late").reads(a, 1).reads(b, 1).writes(o, 1))
            .unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab
            .host(HostDecl::new("h", Reliability::new(0.9).unwrap()))
            .unwrap();
        let sn = ab.sensor(SensorDecl::new("sn", Reliability::ONE)).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(a, sn)
            .bind_sensor(b, sn)
            .build(&spec, &arch)
            .unwrap();
        let code = generate(&spec, &imp, h);
        // Walk the instructions tracking logical time via the deltas.
        let mut at = 0u64;
        let mut latch0_at = None;
        let mut latch1_at = None;
        let mut release_at = None;
        for i in 0..code.len() {
            match code.instruction(Addr(i)) {
                Instruction::Call(DriverOp::LatchInput { index: 0, .. }) => {
                    latch0_at = Some(at);
                }
                Instruction::Call(DriverOp::LatchInput { index: 1, .. }) => {
                    latch1_at = Some(at);
                }
                Instruction::Release { .. } => release_at = Some(at),
                Instruction::Future { delta, .. } => at += delta,
                _ => {}
            }
            if at >= 12 {
                break;
            }
        }
        assert_eq!(latch0_at, Some(2), "a[1] latches at instant 2");
        assert_eq!(latch1_at, Some(6), "b[1] latches at instant 6");
        assert_eq!(release_at, Some(6), "release at the read time");
    }

    #[test]
    fn sensor_communicators_are_read_before_update() {
        let (spec, imp, h1, _) = system();
        let s = spec.find_communicator("s").unwrap();
        let code = generate(&spec, &imp, h1);
        let ops: Vec<_> = (0..code.len()).map(|i| code.instruction(Addr(i))).collect();
        let read_pos = ops
            .iter()
            .position(|i| matches!(i, Instruction::Call(DriverOp::ReadSensors { comm }) if *comm == s))
            .expect("sensor read emitted");
        let update_pos = ops
            .iter()
            .position(|i| {
                matches!(i, Instruction::Call(DriverOp::UpdateCommunicator { comm, .. }) if *comm == s)
            })
            .expect("sensor comm update emitted");
        assert!(read_pos < update_pos);
    }
}
