//! The E-machine interpreter.

use crate::instruction::{Addr, DriverOp, ECode, Instruction};
use logrel_core::{HostId, TaskId, Tick};

/// The platform an E-machine runs on: it implements the synchronous
/// drivers and the task scheduler.
pub trait Platform {
    /// Executes a synchronous driver at logical instant `now`.
    fn call(&mut self, host: HostId, op: DriverOp, now: Tick);
    /// Releases a task replication to the platform scheduler at `now`.
    fn release(&mut self, host: HostId, task: TaskId, now: Tick);
    /// Reports whether a mode-switch event has fired at `now`. The default
    /// implementation never switches.
    fn event(&mut self, event: u32, now: Tick) -> bool {
        let _ = (event, now);
        false
    }
}

/// One host's E-machine: a program counter driven by logical-time
/// triggers.
///
/// # Example
///
/// ```
/// use logrel_core::{HostId, TaskId, Tick};
/// use logrel_emachine::{Addr, DriverOp, ECode, EMachine, Instruction, Platform};
///
/// struct Recorder(Vec<(u64, String)>);
/// impl Platform for Recorder {
///     fn call(&mut self, _h: HostId, op: DriverOp, now: Tick) {
///         self.0.push((now.as_u64(), op.to_string()));
///     }
///     fn release(&mut self, _h: HostId, task: TaskId, now: Tick) {
///         self.0.push((now.as_u64(), format!("release {task}")));
///     }
/// }
///
/// let code = ECode::new(
///     vec![
///         Instruction::Release { task: TaskId::new(0) },
///         Instruction::Future { delta: 10, target: Addr(0) },
///         Instruction::Return,
///     ],
///     Addr(0),
/// );
/// let mut m = EMachine::new(code, HostId::new(0));
/// let mut p = Recorder(Vec::new());
/// m.run_until(Tick::new(25), &mut p);
/// // Fired at 0, 10, 20.
/// assert_eq!(p.0.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EMachine {
    code: ECode,
    host: HostId,
    /// The armed trigger: (fire instant, resumption address).
    trigger: Option<(Tick, Addr)>,
}

impl EMachine {
    /// Creates a machine whose entry block fires at instant 0.
    pub fn new(code: ECode, host: HostId) -> Self {
        let entry = code.entry();
        EMachine {
            code,
            host,
            trigger: Some((Tick::ZERO, entry)),
        }
    }

    /// The host this machine belongs to.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The next instant at which the machine will react, if any.
    pub fn next_trigger(&self) -> Option<Tick> {
        self.trigger.map(|(t, _)| t)
    }

    /// Executes every reaction block whose trigger fires at or before
    /// `now`, in order.
    ///
    /// # Panics
    ///
    /// Panics if a reaction block falls off the end of the program without
    /// a `Return` (malformed E-code), or arms two triggers in one block.
    pub fn run_until(&mut self, now: Tick, platform: &mut dyn Platform) {
        while let Some((at, addr)) = self.trigger {
            if at > now {
                break;
            }
            self.trigger = None;
            self.react(at, addr, platform);
        }
    }

    /// Executes exactly one reaction block starting at `addr` at logical
    /// instant `at`.
    fn react(&mut self, at: Tick, addr: Addr, platform: &mut dyn Platform) {
        let mut pc = addr;
        loop {
            assert!(pc.0 < self.code.len(), "pc fell off the program");
            match self.code.instruction(pc) {
                Instruction::Call(op) => {
                    platform.call(self.host, op, at);
                    pc = Addr(pc.0 + 1);
                }
                Instruction::Release { task } => {
                    platform.release(self.host, task, at);
                    pc = Addr(pc.0 + 1);
                }
                Instruction::Future { delta, target } => {
                    assert!(
                        self.trigger.is_none(),
                        "block armed more than one trigger"
                    );
                    self.trigger = Some((at + delta, target));
                    pc = Addr(pc.0 + 1);
                }
                Instruction::Jump(target) => pc = target,
                Instruction::JumpIfEvent { event, target } => {
                    if platform.event(event, at) {
                        pc = target;
                    } else {
                        pc = Addr(pc.0 + 1);
                    }
                }
                Instruction::Return => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::CommunicatorId;

    #[derive(Default)]
    struct Recorder {
        events: Vec<(u64, String)>,
    }

    impl Platform for Recorder {
        fn call(&mut self, _h: HostId, op: DriverOp, now: Tick) {
            self.events.push((now.as_u64(), format!("call {op}")));
        }
        fn release(&mut self, _h: HostId, task: TaskId, now: Tick) {
            self.events.push((now.as_u64(), format!("release {task}")));
        }
    }

    fn cyclic_two_block_code() -> ECode {
        // Block A at @0: update c0; future +3 -> B.
        // Block B at @3: release t0; future +7 -> A (period 10).
        ECode::new(
            vec![
                Instruction::Call(DriverOp::UpdateCommunicator {
                    comm: CommunicatorId::new(0),
                    instance: 0,
                }),
                Instruction::Future {
                    delta: 3,
                    target: Addr(3),
                },
                Instruction::Return,
                Instruction::Release {
                    task: TaskId::new(0),
                },
                Instruction::Future {
                    delta: 7,
                    target: Addr(0),
                },
                Instruction::Return,
            ],
            Addr(0),
        )
    }

    #[test]
    fn triggers_fire_in_order_over_multiple_rounds() {
        let mut m = EMachine::new(cyclic_two_block_code(), HostId::new(0));
        let mut p = Recorder::default();
        m.run_until(Tick::new(20), &mut p);
        let times: Vec<u64> = p.events.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![0, 3, 10, 13, 20]);
        assert!(p.events[0].1.contains("update"));
        assert!(p.events[1].1.contains("release"));
        assert_eq!(m.next_trigger(), Some(Tick::new(23)));
    }

    #[test]
    fn run_until_is_idempotent_for_same_instant() {
        let mut m = EMachine::new(cyclic_two_block_code(), HostId::new(0));
        let mut p = Recorder::default();
        m.run_until(Tick::new(5), &mut p);
        let n = p.events.len();
        m.run_until(Tick::new(5), &mut p);
        assert_eq!(p.events.len(), n);
    }

    #[test]
    fn jump_is_followed() {
        let code = ECode::new(
            vec![
                Instruction::Jump(Addr(2)),
                Instruction::Release {
                    task: TaskId::new(9),
                }, // skipped
                Instruction::Release {
                    task: TaskId::new(1),
                },
                Instruction::Return,
            ],
            Addr(0),
        );
        let mut m = EMachine::new(code, HostId::new(0));
        let mut p = Recorder::default();
        m.run_until(Tick::ZERO, &mut p);
        assert_eq!(p.events.len(), 1);
        assert!(p.events[0].1.contains("t1"));
        // No future armed: machine halts.
        assert_eq!(m.next_trigger(), None);
    }

    #[test]
    fn host_accessor() {
        let m = EMachine::new(cyclic_two_block_code(), HostId::new(4));
        assert_eq!(m.host(), HostId::new(4));
    }

    #[test]
    #[should_panic(expected = "more than one trigger")]
    fn double_future_panics() {
        let code = ECode::new(
            vec![
                Instruction::Future {
                    delta: 1,
                    target: Addr(0),
                },
                Instruction::Future {
                    delta: 2,
                    target: Addr(0),
                },
                Instruction::Return,
            ],
            Addr(0),
        );
        let mut m = EMachine::new(code, HostId::new(0));
        m.run_until(Tick::ZERO, &mut Recorder::default());
    }
}
