//! E-machine code generation and interpretation.
//!
//! The paper's prototype compiles HTL to *E-code* executed by an Embedded
//! Machine (E-machine): a mediator between physical time and software tasks
//! that calls synchronous *drivers* (communicator updates, port loads) at
//! exact logical instants and *releases* tasks to the platform scheduler in
//! between. This crate reproduces that runtime layer:
//!
//! * [`instruction`] — the E-code instruction set: `call`, `release`,
//!   `future`, `jump`, `return`;
//! * [`codegen`] — compiles one host's view of a specification +
//!   implementation into a cyclic E-code program over one round π_S;
//! * [`machine`] — the interpreter, parameterised by a [`Platform`] that
//!   implements the drivers (the distributed simulator implements it; a
//!   recording platform is used in tests).
//!
//! [`Platform`]: machine::Platform

pub mod codegen;
pub mod instruction;
pub mod machine;
pub mod modal;

pub use codegen::generate;
pub use instruction::{Addr, DriverOp, ECode, Instruction};
pub use machine::{EMachine, Platform};
pub use modal::{generate_modal, ModalError, ModalMode, ModeSwitch};
