//! The E-code instruction set.

use logrel_core::{CommunicatorId, TaskId};
use std::fmt;

/// An instruction address within an [`ECode`] program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub usize);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A synchronous driver operation, executed in logical zero time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverOp {
    /// Update an input communicator replication from its sensors.
    ReadSensors {
        /// The sensor-fed communicator.
        comm: CommunicatorId,
    },
    /// Update a communicator replication: vote over the broadcast values
    /// received for this instance and write the winner (or keep the
    /// persisting value when no task writes this instance).
    UpdateCommunicator {
        /// The updated communicator.
        comm: CommunicatorId,
        /// The 0-based instance within the round.
        instance: u64,
    },
    /// Latch one input port of a task from the local communicator
    /// replication — emitted at the *access instant* of that input, which
    /// may be earlier than the task's read time (a task can read an
    /// instance that is later overwritten before it executes).
    LatchInput {
        /// The task whose port is latched.
        task: TaskId,
        /// The positional input index within the task's input list.
        index: u32,
    },
}

impl fmt::Display for DriverOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverOp::ReadSensors { comm } => write!(f, "read_sensors({comm})"),
            DriverOp::UpdateCommunicator { comm, instance } => {
                write!(f, "update({comm}, {instance})")
            }
            DriverOp::LatchInput { task, index } => write!(f, "latch({task}, {index})"),
        }
    }
}

/// An E-code instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Execute a synchronous driver now.
    Call(DriverOp),
    /// Release a task replication to the platform scheduler.
    Release {
        /// The released task.
        task: TaskId,
    },
    /// Arm a trigger: resume at `target` after `delta` ticks.
    Future {
        /// Ticks until the trigger fires.
        delta: u64,
        /// Resumption address.
        target: Addr,
    },
    /// Unconditional jump.
    Jump(Addr),
    /// Conditional jump taken when the platform reports that `event` has
    /// fired (used for mode switches, tested at round boundaries).
    JumpIfEvent {
        /// The event's identifier (assigned by the code generator).
        event: u32,
        /// Target when the event fired.
        target: Addr,
    },
    /// End of the current reaction block.
    Return,
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Call(op) => write!(f, "call {op}"),
            Instruction::Release { task } => write!(f, "release {task}"),
            Instruction::Future { delta, target } => write!(f, "future +{delta} {target}"),
            Instruction::Jump(a) => write!(f, "jump {a}"),
            Instruction::JumpIfEvent { event, target } => {
                write!(f, "jump_if_event e{event} {target}")
            }
            Instruction::Return => write!(f, "return"),
        }
    }
}

/// A compiled E-code program for one host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ECode {
    instructions: Vec<Instruction>,
    entry: Addr,
}

impl ECode {
    /// Assembles a program.
    ///
    /// # Panics
    ///
    /// Panics if `entry` or any jump/future target is out of range.
    pub fn new(instructions: Vec<Instruction>, entry: Addr) -> Self {
        assert!(entry.0 < instructions.len(), "entry out of range");
        for ins in &instructions {
            match ins {
                Instruction::Future { target, .. }
                | Instruction::Jump(target)
                | Instruction::JumpIfEvent { target, .. } => {
                    assert!(target.0 < instructions.len(), "target {target} out of range");
                }
                _ => {}
            }
        }
        ECode {
            instructions,
            entry,
        }
    }

    /// The program's entry address.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// The instruction at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn instruction(&self, addr: Addr) -> Instruction {
        self.instructions[addr.0]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// The full instruction sequence (for disassembly and static
    /// verification).
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Disassembles the program.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, ins) in self.instructions.iter().enumerate() {
            let marker = if i == self.entry.0 { ">" } else { " " };
            out.push_str(&format!("{marker}{i:4}: {ins}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_and_disassembly() {
        let code = ECode::new(
            vec![
                Instruction::Call(DriverOp::ReadSensors {
                    comm: CommunicatorId::new(0),
                }),
                Instruction::Release {
                    task: TaskId::new(1),
                },
                Instruction::Future {
                    delta: 5,
                    target: Addr(0),
                },
                Instruction::Return,
            ],
            Addr(0),
        );
        assert_eq!(code.len(), 4);
        assert!(!code.is_empty());
        assert_eq!(code.entry(), Addr(0));
        assert_eq!(
            code.instruction(Addr(1)),
            Instruction::Release {
                task: TaskId::new(1)
            }
        );
        let dis = code.disassemble();
        assert!(dis.contains("release t1"));
        assert!(dis.contains("future +5 @0"));
        assert!(dis.starts_with('>'));
    }

    #[test]
    #[should_panic(expected = "entry out of range")]
    fn bad_entry_panics() {
        ECode::new(vec![], Addr(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        ECode::new(vec![Instruction::Jump(Addr(9))], Addr(0));
    }

    #[test]
    fn displays() {
        assert_eq!(
            Instruction::Call(DriverOp::LatchInput {
                task: TaskId::new(2),
                index: 1
            })
            .to_string(),
            "call latch(t2, 1)"
        );
        assert_eq!(
            DriverOp::UpdateCommunicator {
                comm: CommunicatorId::new(3),
                instance: 4
            }
            .to_string(),
            "update(c3, 4)"
        );
        assert_eq!(Instruction::Return.to_string(), "return");
        assert_eq!(Addr(7).to_string(), "@7");
    }
}
