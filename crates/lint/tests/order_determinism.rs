//! Order-determinism regression tests for the diagnostic pipeline.
//!
//! The incremental engine diffs cached against fresh lint output byte for
//! byte, so the reported order must be a function of the diagnostics
//! *set*, never of the emission order of the individual passes. These
//! tests shuffle diagnostic lists under seeded RNGs and assert that
//! [`sort_diagnostics`] restores the identical sequence every time —
//! including for diagnostics that collide on position, code and message
//! and differ only in severity, labels or help.

use logrel_lang::token::Span;
use logrel_lint::{lint_source, sort_diagnostics, Diagnostic, Severity};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn span(line: u32, col: u32) -> Span {
    Span { line, col }
}

/// A list exercising every tie-break level of the total order: distinct
/// positions, same position with distinct codes, same code with distinct
/// messages, and full (span, code, message) collisions that differ only
/// in severity, labels or help.
fn adversarial_diags() -> Vec<Diagnostic> {
    vec![
        Diagnostic::new("L009", Severity::Warning, span(5, 1), "late"),
        Diagnostic::new("L001", Severity::Warning, span(2, 3), "alpha"),
        Diagnostic::new("L002", Severity::Warning, span(2, 3), "alpha"),
        Diagnostic::new("L001", Severity::Warning, span(2, 3), "beta"),
        // Same span/code/message, different severity.
        Diagnostic::new("L003", Severity::Error, span(4, 1), "tied"),
        Diagnostic::new("L003", Severity::Warning, span(4, 1), "tied"),
        // Same everything except the label set.
        Diagnostic::new("L005", Severity::Warning, span(7, 2), "labelled")
            .with_label(span(9, 1), "first related site"),
        Diagnostic::new("L005", Severity::Warning, span(7, 2), "labelled")
            .with_label(span(11, 4), "second related site"),
        Diagnostic::new("L005", Severity::Warning, span(7, 2), "labelled"),
        // Same everything except help.
        Diagnostic::new("L006", Severity::Warning, span(8, 1), "helped")
            .with_help("do the one thing"),
        Diagnostic::new("L006", Severity::Warning, span(8, 1), "helped")
            .with_help("do the other thing"),
        Diagnostic::new("L006", Severity::Warning, span(8, 1), "helped"),
    ]
}

#[test]
fn sort_is_independent_of_emission_order() {
    let mut reference = adversarial_diags();
    sort_diagnostics(&mut reference);
    // Nothing here is an exact duplicate, so dedup must drop nothing.
    assert_eq!(reference.len(), adversarial_diags().len());

    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shuffled = adversarial_diags();
        shuffled.shuffle(&mut rng);
        sort_diagnostics(&mut shuffled);
        assert_eq!(shuffled, reference, "seed {seed} produced a different order");
    }
}

#[test]
fn sort_dedups_exact_duplicates_only() {
    let mut diags = vec![
        Diagnostic::new("L001", Severity::Warning, span(1, 1), "dup"),
        Diagnostic::new("L001", Severity::Warning, span(1, 1), "dup"),
        Diagnostic::new("L001", Severity::Warning, span(1, 1), "dup").with_help("kept"),
    ];
    sort_diagnostics(&mut diags);
    assert_eq!(diags.len(), 2);
}

/// End-to-end: a spec tripping several lint passes renders identically no
/// matter how the passes' findings are permuted before sorting.
#[test]
fn real_lint_output_is_permutation_invariant() {
    // `dead` is written but never read (L002), `ghost` is never accessed
    // (L001), and mode `idle` is unreachable (L008).
    let source = r#"
program shuffled {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    communicator dead : float period 10 init 0.0;
    communicator ghost : float period 10 init 0.0;
    module m {
        start mode main period 10 {
            invoke ctrl reads s[0] writes u[1], dead[1];
        }
        mode idle period 10 {
            invoke ctrl reads s[0] writes u[1], dead[1];
        }
    }
    architecture {
        host h1 reliability 0.99;
        sensor sn reliability 0.999;
        wcet ctrl on h1 2;
        wctt ctrl on h1 1;
    }
    map {
        ctrl -> h1;
        bind s -> sn;
    }
}
"#;
    let mut reference = lint_source(source);
    assert!(
        reference.len() >= 3,
        "fixture should trip several lints, got {reference:?}"
    );
    sort_diagnostics(&mut reference);
    let rendered: Vec<String> = reference.iter().map(|d| d.render("a.htl")).collect();

    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shuffled = lint_source(source);
        shuffled.shuffle(&mut rng);
        sort_diagnostics(&mut shuffled);
        let got: Vec<String> = shuffled.iter().map(|d| d.render("a.htl")).collect();
        assert_eq!(got, rendered, "seed {seed} changed the rendered report");
    }
}
