//! Rendering of static reliability certificates: spanned `C0xx`
//! diagnostics, the human-readable report of `htlc certify` and the
//! machine-readable `logrel-certificate-v1` JSON document.
//!
//! The C-code catalog:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | C001 | error    | LRC refuted: even the upper enclosure endpoint misses `µ` |
//! | C002 | warning  | LRC indeterminate: the enclosure straddles `µ` |
//! | C003 | warning  | certified, but with slack below `1e-9` (near-threshold) |
//! | C004 | error    | certified at the declared point, but not under the requested reliability box |
//! | C005 | error    | certification could not run (cyclic dependencies, unbound input, …) |
//!
//! Diagnostics are anchored at the communicator declaration's span, so
//! they render through the ordinary lint machinery (`ci_line`, sorting,
//! `--deny` promotion) like any other finding.

use crate::diagnostic::{json_escape, sort_diagnostics, Diagnostic, Severity};
use logrel_lang::ast::Program;
use logrel_lang::token::Span;
use logrel_reliability::certify::{Certificate, CommCertificate};
use logrel_reliability::{CertStatus, ReliabilityError, NEAR_THRESHOLD_SLACK};

/// The span of the declaration of `name`, if the program declares it.
fn comm_span(program: &Program, name: &str) -> Span {
    program
        .communicators
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.span)
        .unwrap_or_default()
}

/// Derives the spanned `C001`–`C004` diagnostics from a certificate.
pub fn certify_diagnostics(program: &Program, cert: &Certificate) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for row in &cert.comms {
        let Some(mu) = row.lrc else { continue };
        let span = comm_span(program, &row.name);
        let bottleneck = row.bottleneck.as_deref().unwrap_or("-");
        match row.status {
            Some(CertStatus::Refuted) => {
                diags.push(
                    Diagnostic::new(
                        "C001",
                        Severity::Error,
                        span,
                        format!(
                            "communicator `{}`: REFUTED — certified upper bound {} < lrc {}",
                            row.name,
                            row.interval.hi(),
                            mu
                        ),
                    )
                    .with_help(format!(
                        "the architecture cannot meet this constraint; strengthen the \
                         writer chain (bottleneck: {bottleneck}) or weaken the lrc"
                    )),
                );
            }
            Some(CertStatus::Indeterminate) => {
                diags.push(
                    Diagnostic::new(
                        "C002",
                        Severity::Warning,
                        span,
                        format!(
                            "communicator `{}`: INDETERMINATE — enclosure {} straddles lrc {} \
                             (width {:e})",
                            row.name,
                            row.interval,
                            mu,
                            row.interval.width()
                        ),
                    )
                    .with_help(String::from(
                        "neither verdict is sound at this rounding width; move the lrc \
                         away from the enclosure or strengthen the architecture",
                    )),
                );
            }
            Some(CertStatus::Certified) => {
                let slack = row.slack.unwrap_or(0.0);
                if slack < NEAR_THRESHOLD_SLACK {
                    diags.push(
                        Diagnostic::new(
                            "C003",
                            Severity::Warning,
                            span,
                            format!(
                                "communicator `{}`: certified with slack {:e} below 1e-9",
                                row.name, slack
                            ),
                        )
                        .with_help(format!(
                            "the certificate is one analysis change away from \
                             indeterminate; consider strengthening {bottleneck}"
                        )),
                    );
                }
                if let (Some(bs), Some(bi), Some(delta)) =
                    (row.box_status, row.box_interval, cert.box_delta)
                {
                    if bs != CertStatus::Certified {
                        diags.push(
                            Diagnostic::new(
                                "C004",
                                Severity::Error,
                                span,
                                format!(
                                    "communicator `{}`: certification is not robust under \
                                     reliability box δ={} — degraded enclosure {} vs lrc {}",
                                    row.name, delta, bi, mu
                                ),
                            )
                            .with_help(format!(
                                "some architecture inside the box violates the lrc; add \
                                 replication around {bottleneck} or shrink the box"
                            )),
                        );
                    }
                }
            }
            None => {}
        }
    }
    sort_diagnostics(&mut diags);
    diags
}

/// Wraps an analysis failure (cycle, unbound input, …) as the `C005`
/// diagnostic so `htlc certify` reports through the same channel as every
/// other finding.
pub fn certify_error_diagnostic(err: &ReliabilityError) -> Diagnostic {
    Diagnostic::new(
        "C005",
        Severity::Error,
        Span::default(),
        format!("certification failed: {err}"),
    )
}

/// One row of the human-readable report.
fn render_row(row: &CommCertificate) -> String {
    let mut line = format!(
        "  {:<16} point {:.9}  enclosure {}",
        row.name, row.point, row.interval
    );
    if let Some(mu) = row.lrc {
        line.push_str(&format!("  lrc {mu}"));
        if let Some(s) = row.status {
            line.push_str(&format!("  {s}"));
        }
        if let Some(slack) = row.slack {
            line.push_str(&format!("  slack {slack:e}"));
        }
        if let Some(bs) = row.box_status {
            line.push_str(&format!("  box {bs}"));
        }
    }
    line
}

/// The human-readable certificate report printed by `htlc certify`.
pub fn render_certificate(name: &str, cert: &Certificate) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "certificate for `{}` ({} of {} communicator(s) constrained):\n",
        name,
        cert.constrained,
        cert.comms.len()
    ));
    for row in &cert.comms {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    let constrained: Vec<&CommCertificate> =
        cert.comms.iter().filter(|c| c.lrc.is_some()).collect();
    if constrained.iter().any(|c| c.bottleneck.is_some()) {
        out.push_str("bottlenecks (largest Birnbaum importance):\n");
        for row in &constrained {
            if let Some(b) = &row.bottleneck {
                let shape = if row.multilinear {
                    "multilinear"
                } else {
                    "shared-path"
                };
                out.push_str(&format!("  {:<16} {b}  ({shape})\n", row.name));
            }
        }
    }
    if !cert.margins.is_empty() {
        out.push_str("component degradation margins:\n");
        for m in &cert.margins {
            out.push_str(&format!(
                "  {:<16} reliability {}  margin {:.9}\n",
                m.name, m.reliability, m.margin
            ));
        }
    }
    out.push_str(&format!("verdict: {}\n", cert.overall));
    if let (Some(delta), Some(bo)) = (cert.box_delta, cert.box_overall) {
        out.push_str(&format!("box verdict (δ={delta}): {bo}\n"));
    }
    out
}

fn json_f64(x: f64) -> String {
    // Shortest-roundtrip Display is deterministic and re-parses exactly;
    // the `_bits` fields pin the value even against decimal parsers.
    format!("{x}")
}

fn json_opt_f64(x: Option<f64>) -> String {
    x.map_or_else(|| String::from("null"), json_f64)
}

fn json_opt_str(s: Option<&str>) -> String {
    s.map_or_else(
        || String::from("null"),
        |s| format!("\"{}\"", json_escape(s)),
    )
}

/// The stable `logrel-certificate-v1` JSON document: the full certificate
/// plus its diagnostics (same object shape as `logrel-diagnostics-v1`).
/// Every float carries a sibling `*_bits` hex field with its exact IEEE-754
/// bit pattern.
pub fn certificate_json(
    file: &str,
    name: &str,
    cert: &Certificate,
    diags: &[Diagnostic],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"logrel-certificate-v1\",\n");
    out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(file)));
    out.push_str(&format!("  \"program\": \"{}\",\n", json_escape(name)));
    out.push_str(&format!("  \"overall\": \"{}\",\n", cert.overall));
    out.push_str(&format!("  \"constrained\": {},\n", cert.constrained));
    out.push_str(&format!(
        "  \"box_delta\": {},\n",
        json_opt_f64(cert.box_delta)
    ));
    out.push_str(&format!(
        "  \"box_overall\": {},\n",
        json_opt_str(cert.box_overall.map(CertStatus::label))
    ));
    out.push_str("  \"communicators\": [");
    for (i, row) in cert.comms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&format!(
            r#"{{"name":"{}","point":{},"point_bits":"{:016x}","lo":{},"lo_bits":"{:016x}","hi":{},"hi_bits":"{:016x}","lrc":{},"status":{},"slack":{},"box_status":{},"bottleneck":{},"multilinear":{}}}"#,
            json_escape(&row.name),
            json_f64(row.point),
            row.point.to_bits(),
            json_f64(row.interval.lo()),
            row.interval.lo().to_bits(),
            json_f64(row.interval.hi()),
            row.interval.hi().to_bits(),
            json_opt_f64(row.lrc),
            json_opt_str(row.status.map(CertStatus::label)),
            json_opt_f64(row.slack),
            json_opt_str(row.box_status.map(CertStatus::label)),
            json_opt_str(row.bottleneck.as_deref()),
            row.multilinear
        ));
    }
    if !cert.comms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str("  \"margins\": [");
    for (i, m) in cert.margins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&format!(
            r#"{{"component":"{}","reliability":{},"margin":{},"margin_bits":"{:016x}"}}"#,
            json_escape(&m.name),
            json_f64(m.reliability),
            json_f64(m.margin),
            m.margin.to_bits()
        ));
    }
    if !cert.margins.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&d.to_json());
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_lang::{elaborate, parse};
    use logrel_reliability::certify;

    const SOURCE: &str = "program demo {\n\
         \x20   communicator s : float period 10 sensor;\n\
         \x20   communicator u : float period 10 lrc LRC;\n\
         \x20   module m {\n\
         \x20       start mode main period 10 {\n\
         \x20           invoke ctrl reads s[0] writes u[1];\n\
         \x20       }\n\
         \x20   }\n\
         \x20   architecture {\n\
         \x20       host h1 reliability 0.99;\n\
         \x20       host h2 reliability 0.98;\n\
         \x20       sensor sen reliability 0.999;\n\
         \x20       wcet ctrl on h1 2; wcet ctrl on h2 2;\n\
         \x20       wctt ctrl on h1 1; wctt ctrl on h2 1;\n\
         \x20   }\n\
         \x20   map {\n\
         \x20       ctrl -> h1, h2;\n\
         \x20       bind s -> sen;\n\
         \x20   }\n\
         }\n";

    fn certified(lrc: &str, delta: Option<f64>) -> (Program, Certificate) {
        let program = parse(&SOURCE.replace("LRC", lrc)).unwrap();
        let sys = elaborate(&program).unwrap();
        let cert = certify::certify(&sys.spec, &sys.arch, &sys.imp, delta).unwrap();
        (program, cert)
    }

    #[test]
    fn clean_certificate_has_no_diagnostics() {
        let (program, cert) = certified("0.9", None);
        assert!(certify_diagnostics(&program, &cert).is_empty());
        let text = render_certificate("demo", &cert);
        assert!(text.contains("verdict: CERTIFIED"));
        assert!(text.contains("component degradation margins:"));
        assert!(text.contains("bottlenecks"));
    }

    #[test]
    fn refuted_lrc_raises_c001_at_the_declaration() {
        let (program, cert) = certified("0.9999", None);
        let diags = certify_diagnostics(&program, &cert);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "C001");
        assert_eq!(diags[0].severity, Severity::Error);
        // Anchored at the `communicator u` declaration (line 3).
        assert_eq!(diags[0].span.line, 3);
        assert!(diags[0].message.contains("REFUTED"));
    }

    #[test]
    fn fragile_box_raises_c004() {
        let (program, cert) = certified("0.995", Some(0.1));
        let diags = certify_diagnostics(&program, &cert);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "C004");
        assert!(diags[0].message.contains("δ=0.1"));
        let text = render_certificate("demo", &cert);
        assert!(text.contains("box verdict (δ=0.1): INDETERMINATE"));
    }

    #[test]
    fn c005_wraps_analysis_errors() {
        let err = ReliabilityError::UnboundInput {
            communicator: "s".into(),
        };
        let d = certify_error_diagnostic(&err);
        assert_eq!(d.code, "C005");
        assert!(d.message.contains("`s`"));
    }

    #[test]
    fn json_document_is_complete_and_typed() {
        let (program, cert) = certified("0.9", Some(0.001));
        let diags = certify_diagnostics(&program, &cert);
        let doc = certificate_json("demo.htl", "demo", &cert, &diags);
        assert!(doc.contains("\"schema\": \"logrel-certificate-v1\""));
        assert!(doc.contains("\"overall\": \"CERTIFIED\""));
        assert!(doc.contains("\"box_delta\": 0.001"));
        assert!(doc.contains(r#""name":"u""#));
        assert!(doc.contains("point_bits"));
        assert!(doc.contains(r#""multilinear":true"#));
        assert!(doc.contains(r#""component":"h1""#));
        // Unconstrained rows carry explicit nulls, not absent fields.
        assert!(doc.contains(r#""lrc":null"#));
    }
}
