//! R-code diagnostics: refinement-checker violations rendered with
//! source spans.
//!
//! `logrel-refine` reports violations in core-model terms (task and host
//! names, no positions). This module maps each violation back to the
//! construct of the *refining* program's AST that caused it, so `htlc`
//! can emit them through the shared renderer in the stable
//! `code:severity:file:line:col:` form like every other finding:
//!
//! | code | violation |
//! |------|-----------|
//! | R001 | κ is not total or not injective |
//! | R002 | host sets differ (constraint a) |
//! | R003 | replication mapping differs (b1) |
//! | R004 | WCET/WCTT grew (b2) |
//! | R005 | LET not contained (b3) |
//! | R006 | output LRC exceeds the admissible maximum (b4) |
//! | R007 | input failure model changed (b5) |
//! | R008 | input set does not shrink/grow as the model requires (b6) |
//! | R009 | κ references an unknown task |

use crate::diagnostic::{sort_diagnostics, Diagnostic, Severity};
use logrel_lang::ast::{ArchItem, MapItem, Program};
use logrel_lang::token::Span;
use logrel_refine::{RefineError, Violation};

/// Span of the first invocation of `task`, or `0:0`.
fn invocation_span(program: &Program, task: &str) -> Span {
    for module in &program.modules {
        for mode in &module.modes {
            for inv in &mode.invocations {
                if inv.task == task {
                    return inv.span;
                }
            }
        }
    }
    Span::default()
}

/// Span of the communicator declaration `comm`, or `0:0`.
fn comm_span(program: &Program, comm: &str) -> Span {
    program
        .communicators
        .iter()
        .find(|c| c.name == comm)
        .map_or_else(Span::default, |c| c.span)
}

/// Span of the `map` assignment of `task`, or `0:0`.
fn assign_span(program: &Program, task: &str) -> Span {
    for item in &program.map {
        if let MapItem::Assign { task: t, span, .. } = item {
            if t == task {
                return *span;
            }
        }
    }
    Span::default()
}

/// Span of the `wcet`/`wctt` row for (`task`, `host`), or `0:0`.
fn metric_span(program: &Program, metric: &str, task: &str, host: &str) -> Span {
    for item in &program.arch {
        match item {
            ArchItem::Wcet { task: t, host: h, span, .. }
                if metric == "WCET" && t == task && h == host =>
            {
                return *span;
            }
            ArchItem::Wctt { task: t, host: h, span, .. }
                if metric == "WCTT" && t == task && h == host =>
            {
                return *span;
            }
            _ => {}
        }
    }
    Span::default()
}

/// Span of the first architecture item, or `0:0`.
fn arch_span(program: &Program) -> Span {
    program.arch.first().map_or_else(Span::default, |i| match i {
        ArchItem::Host { span, .. }
        | ArchItem::Sensor { span, .. }
        | ArchItem::Broadcast { span, .. }
        | ArchItem::Wcet { span, .. }
        | ArchItem::Wctt { span, .. } => *span,
    })
}

/// Maps one refinement violation to a spanned R-code diagnostic against
/// the refining program's source.
#[must_use]
pub fn violation_diagnostic(program: &Program, v: &Violation) -> Diagnostic {
    match v {
        Violation::KappaNotTotal { task } => Diagnostic::new(
            "R001",
            Severity::Error,
            invocation_span(program, task),
            format!("κ does not map task `{task}`"),
        )
        .with_help("name the task in the refinement's mapping block or match it by name"),
        Violation::KappaNotInjective {
            refined,
            first,
            second,
        } => Diagnostic::new(
            "R001",
            Severity::Error,
            invocation_span(program, first),
            format!("κ maps both `{first}` and `{second}` to `{refined}`"),
        )
        .with_label(
            invocation_span(program, second),
            format!("`{second}` also maps to `{refined}`"),
        ),
        Violation::HostSetMismatch { detail } => Diagnostic::new(
            "R002",
            Severity::Error,
            arch_span(program),
            format!("host sets differ: {detail}"),
        )
        .with_help("a refinement must keep the refined architecture's host set"),
        Violation::MappingMismatch { task } => Diagnostic::new(
            "R003",
            Severity::Error,
            assign_span(program, task),
            format!("task `{task}` is mapped to different hosts than its image"),
        )
        .with_help("constraint (b1): the replication mapping must be identical"),
        Violation::MetricIncreased {
            metric,
            task,
            host,
            refining,
            refined,
        } => Diagnostic::new(
            "R004",
            Severity::Error,
            metric_span(program, metric, task, host),
            format!("{metric} of `{task}` on `{host}` grew from {refined} to {refining}"),
        )
        .with_help("constraint (b2): execution metrics must not grow under refinement"),
        Violation::LetNotContained { task, read_side } => {
            let side = if *read_side {
                "reads earlier"
            } else {
                "writes later"
            };
            Diagnostic::new(
                "R005",
                Severity::Error,
                invocation_span(program, task),
                format!("task `{task}` {side} than its image"),
            )
            .with_help("constraint (b3): the refining LET must be contained in the refined one")
        }
        Violation::LrcExceeded {
            task,
            comm,
            lrc,
            max,
        } => {
            let message = match max {
                Some(m) => {
                    format!("output `{comm}` of `{task}` requires LRC {lrc} > admissible {m}")
                }
                None => format!(
                    "output `{comm}` of `{task}` requires LRC {lrc} but the image's outputs \
                     declare none"
                ),
            };
            Diagnostic::new("R006", Severity::Error, comm_span(program, comm), message)
                .with_label(
                    invocation_span(program, task),
                    format!("written by `{task}` here"),
                )
                .with_help("constraint (b4): refining outputs may not demand stronger LRCs")
        }
        Violation::ModelChanged { task } => Diagnostic::new(
            "R007",
            Severity::Error,
            invocation_span(program, task),
            format!("task `{task}` changed its input failure model"),
        )
        .with_help("constraint (b5): the input failure model must be identical"),
        Violation::InputSetMismatch {
            task,
            subset_required,
        } => {
            let req = if *subset_required {
                "a subset"
            } else {
                "a superset"
            };
            Diagnostic::new(
                "R008",
                Severity::Error,
                invocation_span(program, task),
                format!("inputs of `{task}` are not {req} of its image's inputs"),
            )
            .with_help(
                "constraint (b6): inputs shrink under the series model and grow under parallel",
            )
        }
        // `Violation` is non_exhaustive; render unknown future variants
        // through their Display form at the file head.
        other => Diagnostic::new("R000", Severity::Error, Span::default(), other.to_string()),
    }
}

/// Maps a refinement-checker error to spanned diagnostics in reporting
/// order (one per violation).
#[must_use]
pub fn refine_error_diagnostics(program: &Program, err: &RefineError) -> Vec<Diagnostic> {
    let mut diags = match err {
        RefineError::NotARefinement { violations } => violations
            .iter()
            .map(|v| violation_diagnostic(program, v))
            .collect(),
        RefineError::UnknownTask { id } => vec![Diagnostic::new(
            "R009",
            Severity::Error,
            Span::default(),
            format!("κ references unknown task {id}"),
        )],
        other => vec![Diagnostic::new(
            "R000",
            Severity::Error,
            Span::default(),
            other.to_string(),
        )],
    };
    sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_lang::parse;

    const SRC: &str = r#"
program p {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.99;
    module m {
        start mode main period 10 {
            invoke ctrl reads s[0] writes u[1];
        }
    }
    architecture {
        host h1 reliability 0.99;
        sensor sn reliability 0.999;
        wcet ctrl on h1 2;
        wctt ctrl on h1 1;
    }
    map {
        ctrl -> h1;
        bind s -> sn;
    }
}
"#;

    #[test]
    fn metric_violation_points_at_the_wcet_row() {
        let p = parse(SRC).unwrap();
        let d = violation_diagnostic(
            &p,
            &Violation::MetricIncreased {
                metric: "WCET",
                task: "ctrl".into(),
                host: "h1".into(),
                refining: 5,
                refined: 2,
            },
        );
        assert_eq!(d.code, "R004");
        assert_ne!(d.span, Span::default());
        assert!(d.ci_line("a.htl").starts_with("R004:error:a.htl:"));
        assert!(d.ci_line("a.htl").contains("grew from 2 to 5"));
    }

    #[test]
    fn lrc_violation_points_at_the_communicator() {
        let p = parse(SRC).unwrap();
        let d = violation_diagnostic(
            &p,
            &Violation::LrcExceeded {
                task: "ctrl".into(),
                comm: "u".into(),
                lrc: 0.999,
                max: Some(0.99),
            },
        );
        assert_eq!(d.code, "R006");
        let comm_line = p.communicators.iter().find(|c| c.name == "u").unwrap().span.line;
        assert_eq!(d.span.line, comm_line);
    }

    #[test]
    fn every_violation_kind_gets_a_distinct_code() {
        let p = parse(SRC).unwrap();
        let vs = [
            (
                Violation::KappaNotTotal { task: "ctrl".into() },
                "R001",
            ),
            (
                Violation::HostSetMismatch { detail: "x".into() },
                "R002",
            ),
            (Violation::MappingMismatch { task: "ctrl".into() }, "R003"),
            (
                Violation::LetNotContained {
                    task: "ctrl".into(),
                    read_side: true,
                },
                "R005",
            ),
            (Violation::ModelChanged { task: "ctrl".into() }, "R007"),
            (
                Violation::InputSetMismatch {
                    task: "ctrl".into(),
                    subset_required: false,
                },
                "R008",
            ),
        ];
        for (v, code) in vs {
            assert_eq!(violation_diagnostic(&p, &v).code, code);
        }
    }

    #[test]
    fn error_expands_to_sorted_per_violation_diagnostics() {
        let p = parse(SRC).unwrap();
        let err = RefineError::NotARefinement {
            violations: vec![
                Violation::ModelChanged { task: "ctrl".into() },
                Violation::HostSetMismatch {
                    detail: "h2 only in refining".into(),
                },
            ],
        };
        let diags = refine_error_diagnostics(&p, &err);
        assert_eq!(diags.len(), 2);
        let mut sorted = diags.clone();
        sort_diagnostics(&mut sorted);
        assert_eq!(diags, sorted);
        let unknown = refine_error_diagnostics(
            &p,
            &RefineError::UnknownTask { id: "t9".into() },
        );
        assert_eq!(unknown[0].code, "R009");
    }
}
