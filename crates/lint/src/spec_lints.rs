//! Specification-level lints (`L0xx`).
//!
//! Each lint inspects the parsed program (for spans) together with the
//! elaborated system (for semantics) and reports [`Diagnostic`]s with
//! stable codes:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | L001 | warning  | dead communicator: declared but never read or written |
//! | L002 | warning  | unread task output with no LRC besides consumed siblings |
//! | L003 | error    | LRC unsatisfiable even with full replication |
//! | L004 | error    | reliability-sink cycle (§3 "specification with memory") |
//! | L005 | warning  | replicas co-located on one host (degenerate RBD block) |
//! | L006 | warning  | stale read: a fresher instance arrives before release |
//! | L007 | warning  | phase aliasing in a time-dependent mapping |
//! | L008 | warning  | mode unreachable from the start mode |
//! | L009 | warning  | host with no task mapped to it |
//! | L010 | warning  | sensor never bound to a communicator |
//! | L011 | error    | restriction 1: task without inputs or outputs |
//! | L012 | error    | restriction 2: read time not before write time |
//! | L013 | error    | restriction 3: two writers for one communicator |
//! | L014 | error    | restriction 4: duplicate instance write |
//! | L015 | error    | write to an environment (sensor) communicator |
//!
//! L011–L015 are spanned front-ends for the core race-freedom
//! restrictions: `SpecificationBuilder::build` rejects these programs with
//! a (span-less) [`CoreError`]; the lint pass re-derives the violation from
//! the AST so the CLI can point at the offending invocation.
//!
//! [`CoreError`]: logrel_core::CoreError

use crate::diagnostic::{Diagnostic, Severity};
use logrel_core::graph::{CommDependencyGraph, SpecGraph};
use logrel_core::{CommunicatorId, TimeDependentImplementation};
use logrel_lang::ast::{Access, MapItem, Mode, Program};
use logrel_lang::ElaboratedSystem;
use logrel_reliability::compute_srgs;
use logrel_sched::data_ages;
use std::collections::{BTreeMap, BTreeSet};

/// Runs every specification lint over an elaborated program.
pub fn spec_lints(program: &Program, sys: &ElaboratedSystem) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    dead_communicators(program, &mut diags);
    unread_outputs(program, sys, &mut diags);
    sink_cycles_and_lrc(program, sys, &mut diags);
    colocated_replicas(program, &mut diags);
    stale_reads(program, sys, &mut diags);
    unreachable_modes(program, &mut diags);
    unused_architecture(program, &mut diags);
    diags
}

/// The start mode of a module: the one marked `start`, or the first.
fn start_mode(modes: &[Mode]) -> Option<&Mode> {
    modes.iter().find(|m| m.start).or_else(|| modes.first())
}

/// All accesses of every mode (not only start modes): `(reads, writes)`.
fn all_accesses(program: &Program) -> (Vec<&Access>, Vec<&Access>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for module in &program.modules {
        for mode in &module.modes {
            for inv in &mode.invocations {
                reads.extend(inv.reads.iter());
                writes.extend(inv.writes.iter());
            }
        }
    }
    (reads, writes)
}

/// L001: a communicator that no mode of any module ever reads or writes
/// and that is not sensor-fed is dead weight — it only stores its initial
/// value.
fn dead_communicators(program: &Program, diags: &mut Vec<Diagnostic>) {
    let (reads, writes) = all_accesses(program);
    let touched: BTreeSet<&str> = reads
        .iter()
        .chain(writes.iter())
        .map(|a| a.comm.as_str())
        .collect();
    for c in &program.communicators {
        if !c.sensor && !touched.contains(c.name.as_str()) {
            diags.push(
                Diagnostic::new(
                    "L001",
                    Severity::Warning,
                    c.span,
                    format!(
                        "communicator `{}` is never read or written; it only holds its \
                         initial value",
                        c.name
                    ),
                )
                .with_help("remove the declaration or connect it to a task"),
            );
        }
    }
}

/// L002: a task output that nobody reads and that carries no LRC, while a
/// sibling output of the same task *is* consumed or constrained. A task
/// whose outputs are all unconsumed is assumed to drive an actuator or
/// monitor; a task with both consumed and dangling outputs most likely
/// carries a leftover write.
fn unread_outputs(program: &Program, sys: &ElaboratedSystem, diags: &mut Vec<Diagnostic>) {
    let (reads, _) = all_accesses(program);
    let read_comms: BTreeSet<&str> = reads.iter().map(|a| a.comm.as_str()).collect();
    let lrc: BTreeMap<&str, bool> = program
        .communicators
        .iter()
        .map(|c| (c.name.as_str(), c.lrc.is_some()))
        .collect();
    let consumed =
        |name: &str| read_comms.contains(name) || lrc.get(name).copied().unwrap_or(false);
    for module in &program.modules {
        let Some(mode) = start_mode(&module.modes) else {
            continue;
        };
        for inv in &mode.invocations {
            if sys.spec.find_task(&inv.task).is_none() {
                continue;
            }
            let any_consumed = inv.writes.iter().any(|w| consumed(&w.comm));
            if !any_consumed {
                continue; // a pure sink task: assumed to feed the environment
            }
            for w in &inv.writes {
                if !consumed(&w.comm) {
                    diags.push(
                        Diagnostic::new(
                            "L002",
                            Severity::Warning,
                            w.span,
                            format!(
                                "output `{}` of task `{}` is never read and has no LRC",
                                w.comm, inv.task
                            ),
                        )
                        .with_help(
                            "remove the write, add a consumer, or state a reliability \
                             constraint with `lrc`",
                        ),
                    );
                }
            }
        }
    }
}

/// L004 (reliability-sink cycles) and L003 (unsatisfiable LRCs).
///
/// The SRG induction of §3 requires the communicator dependency graph to
/// be acyclic after dropping edges into `independent`-model writers; a
/// remaining cycle means every feeding task has the model-1 or model-2
/// input model and the long-run reliability sinks to zero — the paper's
/// "specification with memory" pathology (L004). When the graph *is*
/// acyclic we compute an upper bound on every achievable SRG by
/// replicating every task on every host; an LRC above that bound can never
/// be met by any mapping (L003).
fn sink_cycles_and_lrc(program: &Program, sys: &ElaboratedSystem, diags: &mut Vec<Diagnostic>) {
    let comm_span = |c: CommunicatorId| {
        let name = sys.spec.communicator(c).name();
        program
            .communicators
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.span)
            .unwrap_or_default()
    };
    let dep = CommDependencyGraph::new(&sys.spec);
    match dep.analysis_order() {
        Err(cyclic) => {
            let names: Vec<&str> = cyclic
                .iter()
                .map(|&c| sys.spec.communicator(c).name())
                .collect();
            let witness = SpecGraph::new(&sys.spec)
                .communicator_cycles()
                .witnesses
                .first()
                .map(|w| {
                    let path: Vec<String> =
                        w.path.iter().map(|v| v.to_string()).collect();
                    format!(" (witness: {})", path.join(" -> "))
                })
                .unwrap_or_default();
            let mut d = Diagnostic::new(
                "L004",
                Severity::Error,
                comm_span(cyclic[0]),
                format!(
                    "communicator cycle through {} is fed only by series/parallel-model \
                     tasks; its long-run reliability sinks to zero{witness}",
                    names
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            )
            .with_help(
                "give one task on the cycle the `independent` input model (§3's remedy \
                 for specifications with memory)",
            );
            for &c in cyclic.iter().skip(1) {
                d = d.with_label(
                    comm_span(c),
                    format!("`{}` is on the cycle", sys.spec.communicator(c).name()),
                );
            }
            diags.push(d);
        }
        Ok(_) => {
            // Upper-bound SRG: every task replicated on every host.
            let hosts: Vec<_> = sys.arch.host_ids().collect();
            let mut full = sys.imp.clone();
            for t in sys.spec.task_ids() {
                full = full.with_assignment(t, hosts.iter().copied());
            }
            let Ok(best) = compute_srgs(&sys.spec, &sys.arch, &full) else {
                return;
            };
            for c in sys.spec.communicator_ids() {
                let Some(mu) = sys.spec.communicator(c).lrc() else {
                    continue;
                };
                let lambda = best.communicator(c);
                if !lambda.meets(mu) {
                    diags.push(
                        Diagnostic::new(
                            "L003",
                            Severity::Error,
                            comm_span(c),
                            format!(
                                "LRC {} on `{}` is unsatisfiable: even with every task \
                                 replicated on every host the SRG is {:.9}",
                                mu.get(),
                                sys.spec.communicator(c).name(),
                                lambda.get()
                            ),
                        )
                        .with_help(
                            "add hosts, improve host/sensor reliability, or relax the \
                             constraint",
                        ),
                    );
                }
            }
        }
    }
}

/// L005: duplicate hosts in a task's replication list. The elaborator
/// collects hosts into a set, so `t -> h1, h1;` silently degenerates to a
/// single replica — the parallel block of the RBD collapses and the
/// declared redundancy does not exist.
fn colocated_replicas(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for item in &program.map {
        let MapItem::Assign { task, hosts, span } = item else {
            continue;
        };
        let assigned = seen.entry(task.as_str()).or_default();
        for h in hosts {
            if !assigned.insert(h.as_str()) {
                diags.push(
                    Diagnostic::new(
                        "L005",
                        Severity::Warning,
                        *span,
                        format!(
                            "task `{task}` is mapped to host `{h}` more than once; \
                             co-located replicas add no redundancy"
                        ),
                    )
                    .with_help("map each replica to a distinct host"),
                );
            }
        }
    }
}

/// L006: a task latches an instance of a communicator although a strictly
/// fresher instance is produced (task write or sensor refresh) before the
/// task is even released. The LET semantics permits this — the latch
/// happens at the access instant — but reading data one or more periods
/// older than available is usually an off-by-one in the instance number.
fn stale_reads(program: &Program, sys: &ElaboratedSystem, diags: &mut Vec<Diagnostic>) {
    let spec = &sys.spec;
    let round = spec.round_period().as_u64();
    let ages = data_ages(spec);
    // Refresh instants per communicator: sensor updates or written
    // instances.
    let mut refreshed: BTreeMap<CommunicatorId, BTreeSet<u64>> = BTreeMap::new();
    for c in spec.communicator_ids() {
        let period = spec.communicator(c).period().as_u64();
        let entry = refreshed.entry(c).or_default();
        if spec.is_sensor_input(c) {
            let mut t = 0;
            while t < round {
                entry.insert(t);
                t += period;
            }
        }
    }
    for t in spec.task_ids() {
        for &w in spec.task(t).outputs() {
            refreshed
                .entry(w.comm)
                .or_default()
                .insert(spec.access_instant(w).as_u64());
        }
    }
    for module in &program.modules {
        let Some(mode) = start_mode(&module.modes) else {
            continue;
        };
        for inv in &mode.invocations {
            let Some(tid) = spec.find_task(&inv.task) else {
                continue;
            };
            let release = spec.read_time(tid).as_u64();
            for r in &inv.reads {
                let Some(cid) = spec.find_communicator(&r.comm) else {
                    continue;
                };
                let period = spec.communicator(cid).period().as_u64();
                let latch_at = r.instance * period;
                let fresher = refreshed
                    .get(&cid)
                    .into_iter()
                    .flatten()
                    .find(|&&s| latch_at < s && s <= release);
                if let Some(&s) = fresher {
                    let age = ages
                        .age(cid)
                        .map_or(String::new(), |a| format!("; worst data age {a}"));
                    diags.push(
                        Diagnostic::new(
                            "L006",
                            Severity::Warning,
                            r.span,
                            format!(
                                "task `{}` latches `{}[{}]` (instant {latch_at}) but a \
                                 fresher value arrives at instant {s}, before its \
                                 release at instant {release}{age}",
                                inv.task, r.comm, r.instance
                            ),
                        )
                        .with_help(format!(
                            "read instance {} instead, or release the task earlier",
                            s / period
                        )),
                    );
                }
            }
        }
    }
}

/// L008: a mode that no chain of switches can reach from the start mode
/// will never execute.
fn unreachable_modes(program: &Program, diags: &mut Vec<Diagnostic>) {
    for module in &program.modules {
        if module.modes.len() < 2 {
            continue;
        }
        let index: BTreeMap<&str, usize> = module
            .modes
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.as_str(), i))
            .collect();
        let start = module
            .modes
            .iter()
            .position(|m| m.start)
            .unwrap_or(0);
        let mut reach = BTreeSet::from([start]);
        let mut work = vec![start];
        while let Some(i) = work.pop() {
            for sw in &module.modes[i].switches {
                if let Some(&j) = index.get(sw.target.as_str()) {
                    if reach.insert(j) {
                        work.push(j);
                    }
                }
            }
        }
        for (i, mode) in module.modes.iter().enumerate() {
            if !reach.contains(&i) {
                diags.push(
                    Diagnostic::new(
                        "L008",
                        Severity::Warning,
                        mode.span,
                        format!(
                            "mode `{}` of module `{}` is unreachable from the start mode",
                            mode.name, module.name
                        ),
                    )
                    .with_help("add a switch into the mode or remove it"),
                );
            }
        }
    }
}

/// L009/L010: architecture elements that the mapping never uses.
fn unused_architecture(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut mapped_hosts: BTreeSet<&str> = BTreeSet::new();
    let mut bound_sensors: BTreeSet<&str> = BTreeSet::new();
    for item in &program.map {
        match item {
            MapItem::Assign { hosts, .. } => {
                mapped_hosts.extend(hosts.iter().map(String::as_str));
            }
            MapItem::Bind { sensors, .. } => {
                bound_sensors.extend(sensors.iter().map(String::as_str));
            }
        }
    }
    for item in &program.arch {
        match item {
            logrel_lang::ast::ArchItem::Host { name, span, .. }
                if !mapped_hosts.contains(name.as_str()) =>
            {
                diags.push(
                    Diagnostic::new(
                        "L009",
                        Severity::Warning,
                        *span,
                        format!("host `{name}` has no task mapped to it"),
                    )
                    .with_help("map a replica to the host or remove it"),
                );
            }
            logrel_lang::ast::ArchItem::Sensor { name, span, .. }
                if !bound_sensors.contains(name.as_str()) =>
            {
                diags.push(
                    Diagnostic::new(
                        "L010",
                        Severity::Warning,
                        *span,
                        format!("sensor `{name}` is never bound to a communicator"),
                    )
                    .with_help("bind the sensor with `bind <comm> -> <sensor>;`"),
                );
            }
            _ => {}
        }
    }
}

/// L007: phase aliasing in a time-dependent mapping. If the declared
/// phase sequence has a shorter period `q < p` (every phase repeats after
/// `q` steps), the extra phases never introduce a new mapping and the
/// rotation silently collapses.
pub fn lint_time_dependent(td: &TimeDependentImplementation) -> Vec<Diagnostic> {
    let phases = td.phases();
    let p = phases.len();
    for q in 1..p {
        if !p.is_multiple_of(q) {
            continue;
        }
        if (q..p).all(|i| phases[i] == phases[i % q]) {
            let msg = if q == 1 {
                format!(
                    "time-dependent mapping declares {p} phases but all are identical; \
                     the rotation is a no-op"
                )
            } else {
                format!(
                    "time-dependent mapping declares {p} phases but repeats with \
                     period {q}; phases {q}..{p} alias earlier ones"
                )
            };
            return vec![Diagnostic::new(
                "L007",
                Severity::Warning,
                Default::default(),
                msg,
            )
            .with_help("declare only the distinct phases")];
        }
    }
    Vec::new()
}

/// Spanned re-derivation of the core race-freedom restrictions (§2) plus
/// the environment-write rule, emitted when elaboration fails with a
/// core-model error so the CLI can report a source position.
pub fn spanned_restriction_checks(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let periods: BTreeMap<&str, u64> = program
        .communicators
        .iter()
        .map(|c| (c.name.as_str(), c.period))
        .collect();
    let sensors: BTreeSet<&str> = program
        .communicators
        .iter()
        .filter(|c| c.sensor)
        .map(|c| c.name.as_str())
        .collect();
    let instant = |a: &Access| periods.get(a.comm.as_str()).map(|p| p * a.instance);
    // Writers across every flattened (start) mode, for restriction 3.
    let mut writers: BTreeMap<&str, (&str, &Access)> = BTreeMap::new();
    for module in &program.modules {
        let Some(mode) = start_mode(&module.modes) else {
            continue;
        };
        for inv in &mode.invocations {
            // Restriction 1: at least one input and one output.
            if inv.reads.is_empty() || inv.writes.is_empty() {
                let what = if inv.reads.is_empty() {
                    "reads"
                } else {
                    "writes"
                };
                diags.push(
                    Diagnostic::new(
                        "L011",
                        Severity::Error,
                        inv.span,
                        format!(
                            "task `{}` {what} no communicator (restriction 1: every \
                             task reads and writes at least one)",
                            inv.task
                        ),
                    )
                    .with_help("connect the task to a communicator instance"),
                );
            }
            // Restriction 2: read time strictly before write time.
            let read = inv.reads.iter().filter_map(|a| instant(a).map(|i| (i, a)));
            let write = inv.writes.iter().filter_map(|a| instant(a).map(|i| (i, a)));
            if let (Some((rt, ra)), Some((wt, wa))) = (
                read.max_by_key(|(i, _)| *i),
                write.min_by_key(|(i, _)| *i),
            ) {
                if rt >= wt {
                    diags.push(
                        Diagnostic::new(
                            "L012",
                            Severity::Error,
                            inv.span,
                            format!(
                                "task `{}` reads at instant {rt} but writes at instant \
                                 {wt} (restriction 2: read time must be strictly \
                                 before write time)",
                                inv.task
                            ),
                        )
                        .with_label(ra.span, format!("latest read `{}[{}]`", ra.comm, ra.instance))
                        .with_label(
                            wa.span,
                            format!("earliest write `{}[{}]`", wa.comm, wa.instance),
                        )
                        .with_help("read an earlier instance or write a later one"),
                    );
                }
            }
            let mut written_instances: BTreeSet<(&str, u64)> = BTreeSet::new();
            for w in &inv.writes {
                // Environment communicators are written by sensors only.
                if sensors.contains(w.comm.as_str()) {
                    diags.push(
                        Diagnostic::new(
                            "L015",
                            Severity::Error,
                            w.span,
                            format!(
                                "task `{}` writes sensor communicator `{}`; environment \
                                 communicators are updated by sensors only",
                                inv.task, w.comm
                            ),
                        )
                        .with_help("drop the `sensor` attribute or write another \
                                    communicator"),
                    );
                }
                // Restriction 4: one write per instance per task.
                if !written_instances.insert((w.comm.as_str(), w.instance)) {
                    diags.push(
                        Diagnostic::new(
                            "L014",
                            Severity::Error,
                            w.span,
                            format!(
                                "task `{}` writes `{}[{}]` more than once \
                                 (restriction 4)",
                                inv.task, w.comm, w.instance
                            ),
                        )
                        .with_help("write each instance at most once"),
                    );
                }
                // Restriction 3: a single writer per communicator.
                match writers.get(w.comm.as_str()) {
                    Some((first_task, first)) if *first_task != inv.task.as_str() => {
                        diags.push(
                            Diagnostic::new(
                                "L013",
                                Severity::Error,
                                w.span,
                                format!(
                                    "communicator `{}` is written by both `{first_task}` \
                                     and `{}` (restriction 3: single writer)",
                                    w.comm, inv.task
                                ),
                            )
                            .with_label(first.span, "first writer declared here".to_owned())
                            .with_help("route one task through its own communicator"),
                        );
                    }
                    Some(_) => {}
                    None => {
                        writers.insert(w.comm.as_str(), (inv.task.as_str(), w));
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        Architecture, CommunicatorDecl, HostDecl, Implementation, Reliability, SensorDecl,
        SensorId, Specification, TaskDecl, ValueType,
    };

    /// A one-task system on two hosts, with a phase mapping per host.
    fn two_phase_fixture() -> (Implementation, Implementation) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("t").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let r = |v| Reliability::new(v).unwrap();
        let h1 = ab.host(HostDecl::new("h1", r(0.99))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.99))).unwrap();
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        for h in [h1, h2] {
            ab.wcet(t, h, 1).unwrap();
            ab.wctt(t, h, 1).unwrap();
        }
        let arch = ab.build();
        let p0 = Implementation::builder()
            .assign(t, [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        let p1 = p0.with_assignment(t, [h2]);
        (p0, p1)
    }

    #[test]
    fn aliasing_rotation_warns() {
        let (p0, p1) = two_phase_fixture();
        // a b a b: repeats with period 2 out of 4 declared phases.
        let td = TimeDependentImplementation::new(vec![p0.clone(), p1.clone(), p0, p1])
            .unwrap();
        let diags = lint_time_dependent(&td);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "L007");
        assert!(diags[0].message.contains("period 2"));
    }

    #[test]
    fn identical_phases_warn_as_noop() {
        let (p0, _) = two_phase_fixture();
        let td = TimeDependentImplementation::new(vec![p0.clone(), p0]).unwrap();
        let diags = lint_time_dependent(&td);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no-op"));
    }

    #[test]
    fn distinct_rotation_is_clean() {
        let (p0, p1) = two_phase_fixture();
        let td = TimeDependentImplementation::new(vec![p0, p1]).unwrap();
        assert!(lint_time_dependent(&td).is_empty());
    }
}
