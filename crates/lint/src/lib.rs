//! Static analysis for the logrel toolchain: specification lints and
//! E-code verification.
//!
//! The paper's pitch is catching reliability and timing defects *before*
//! deployment; the core model only enforces hard well-formedness (the four
//! race-freedom restrictions of §2). This crate adds the two missing
//! layers:
//!
//! * [`spec_lints`] — a registry of lints over the parsed and elaborated
//!   program, from dead communicators to provably unsatisfiable LRCs (see
//!   the module docs for the `L0xx` catalog);
//! * [`ecode`] — an abstract interpreter over per-host
//!   [`logrel_emachine`] programs proving the invariants the
//!   co-simulation otherwise only observes at runtime (`E0xx`).
//!
//! [`lint_source`] is the one-call entry point used by `htlc lint`: it
//! parses, elaborates, lints, generates E-code for every host (modal code
//! when the program has several modes) and verifies it.

pub mod certify_diag;
pub mod diagnostic;
pub mod ecode;
pub mod refine_diag;
pub mod spec_lints;

pub use certify_diag::{
    certificate_json, certify_diagnostics, certify_error_diagnostic, render_certificate,
};
pub use diagnostic::{
    deny_warnings, diagnostics_json, json_escape, sort_diagnostics, Diagnostic, Label, Severity,
};
pub use ecode::{verify, verify_instructions, ModeCtx, VerifyCtx};
pub use refine_diag::{refine_error_diagnostics, violation_diagnostic};
pub use spec_lints::{lint_time_dependent, spanned_restriction_checks, spec_lints};

use logrel_emachine::{generate, generate_modal, ModalMode, ModeSwitch};
use logrel_lang::ast::Program;
use logrel_lang::{elaborate, elaborate_modes, parse, ElaboratedSystem, LangError};
use std::collections::BTreeMap;

/// Lints a source text end to end: parse, elaborate, specification lints,
/// E-code generation and verification for every host. Front-end failures
/// are reported as diagnostics (`L090`–`L093`), with the spanned
/// restriction checks (`L011`–`L015`) standing in for span-less core
/// errors.
pub fn lint_source(source: &str) -> Vec<Diagnostic> {
    let program = match parse(source) {
        Ok(p) => p,
        Err(e) => return vec![Diagnostic::from_lang_error(&e)],
    };
    lint_program(&program)
}

/// Lints an already-parsed program. See [`lint_source`].
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = match elaborate(program) {
        Ok(sys) => {
            let mut diags = spec_lints(program, &sys);
            diags.extend(verify_generated(program, &sys));
            diags
        }
        Err(e @ LangError::Core(_)) => {
            let spanned = spanned_restriction_checks(program);
            if spanned.is_empty() {
                vec![Diagnostic::from_lang_error(&e)]
            } else {
                spanned
            }
        }
        Err(e) => vec![Diagnostic::from_lang_error(&e)],
    };
    sort_diagnostics(&mut diags);
    diags
}

/// Generates and statically verifies the E-code of every host: the
/// single-mode program of the start mode, plus the modal program when the
/// source declares one module with several modes.
pub fn verify_generated(program: &Program, sys: &ElaboratedSystem) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for host in sys.arch.host_ids() {
        let code = generate(&sys.spec, &sys.imp, host);
        diags.extend(verify(
            &code,
            &VerifyCtx::single(&sys.spec, &sys.imp, host),
        ));
    }
    let modal_source = program.modules.len() == 1
        && program.modules.first().is_some_and(|m| m.modes.len() > 1);
    if modal_source {
        if let Ok(modal) = elaborate_modes(program) {
            let modes: Vec<ModalMode<'_>> = modal
                .modes
                .iter()
                .map(|m| ModalMode {
                    name: &m.name,
                    spec: &m.spec,
                    imp: &m.imp,
                })
                .collect();
            // Stable event numbering: first occurrence order.
            let mut events: BTreeMap<&str, u32> = BTreeMap::new();
            let switches: Vec<ModeSwitch> = modal
                .switches
                .iter()
                .map(|(from, event, to)| {
                    let next = events.len() as u32;
                    let id = *events.entry(event.as_str()).or_insert(next);
                    ModeSwitch {
                        from: *from,
                        event: id,
                        to: *to,
                    }
                })
                .collect();
            for host in modal.arch.host_ids() {
                if let Ok(code) = generate_modal(&modes, &switches, host) {
                    diags.extend(verify(&code, &VerifyCtx::modal(&modes, host)));
                }
            }
        }
    }
    diags
}
