//! The diagnostic model shared by the spec lints and the E-code verifier.
//!
//! Every finding carries a stable code (`L0xx` for specification lints,
//! `E0xx` for E-code verification failures), a severity, a primary source
//! span (line/column of the offending construct; `0:0` when the finding has
//! no source location, e.g. for generated E-code), optional secondary
//! labels and an optional help text. Two renderings are provided:
//!
//! * [`Diagnostic::render`] — a human-readable multi-line form;
//! * [`Diagnostic::ci_line`] — the stable, greppable single-line form
//!   `code:severity:file:line:col: message` used by `htlc` for CI.

use logrel_lang::token::Span;
use logrel_lang::LangError;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; promoted to [`Severity::Error`]
    /// under `--deny`.
    Warning,
    /// Definitely wrong: the program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A secondary label pointing at related source.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Label {
    /// Position of the related construct.
    pub span: Span,
    /// What it contributes to the finding.
    pub message: String,
}

/// One finding of the lint pass or the E-code verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`L001`, …, `E001`, …). Codes are never reused.
    pub code: &'static str,
    /// The finding's severity.
    pub severity: Severity,
    /// Primary position (default `0:0` for findings without source).
    pub span: Span,
    /// One-line statement of the problem.
    pub message: String,
    /// Secondary positions with context.
    pub labels: Vec<Label>,
    /// Suggested remedy, if one exists.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no labels and no help.
    pub fn new(
        code: &'static str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            labels: Vec::new(),
            help: None,
        }
    }

    /// Attaches a secondary label.
    #[must_use]
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Attaches a help text.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// The stable single-line CI form `code:severity:file:line:col: message`.
    pub fn ci_line(&self, file: &str) -> String {
        format!(
            "{}:{}:{}:{}:{}: {}",
            self.code, self.severity, file, self.span.line, self.span.col, self.message
        )
    }

    /// The human-readable multi-line form: the CI line followed by indented
    /// labels and help.
    pub fn render(&self, file: &str) -> String {
        let mut out = self.ci_line(file);
        for label in &self.labels {
            out.push_str(&format!(
                "\n    note: {}:{}:{}: {}",
                file, label.span.line, label.span.col, label.message
            ));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("\n    help: {help}"));
        }
        out
    }

    /// Wraps a front-end error as a diagnostic. Lexical, syntax and
    /// resolution errors keep their spans; core-model errors (which carry
    /// none) report at `0:0`.
    pub fn from_lang_error(err: &LangError) -> Self {
        let (code, span) = match err {
            LangError::Lex { span, .. } => ("L090", *span),
            LangError::Parse { span, .. } => ("L091", *span),
            LangError::Resolve { span, .. } => ("L092", *span),
            LangError::Core(_) => ("L093", Span::default()),
            _ => ("L093", Span::default()),
        };
        let message = match err {
            LangError::Lex { message, .. } => format!("lexical error: {message}"),
            LangError::Parse {
                expected, found, ..
            } => format!("expected {expected}, found {found}"),
            LangError::Resolve { message, .. } => message.clone(),
            other => other.to_string(),
        };
        Diagnostic::new(code, Severity::Error, span, message)
    }
}

/// Sorts diagnostics into reporting order (position, then code) and
/// removes exact duplicates.
///
/// The order is **total** over every field: two distinct diagnostics
/// never compare equal, so the sorted sequence is independent of
/// emission order. (A key over position/code/message alone would let
/// findings that differ only in labels or help keep their emission
/// order — an order-dependence that breaks cached-vs-fresh diffs.)
pub fn sort_diagnostics(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| {
        (a.span, a.code, &a.message, a.severity, &a.labels, &a.help).cmp(&(
            b.span,
            b.code,
            &b.message,
            b.severity,
            &b.labels,
            &b.help,
        ))
    });
    diags.dedup();
}

/// Promotes every warning to an error (`--deny`).
pub fn deny_warnings(diags: &mut [Diagnostic]) {
    for d in diags {
        if d.severity == Severity::Warning {
            d.severity = Severity::Error;
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
///
/// Hand-rolled (the workspace deliberately carries no serde) but complete:
/// quotes, backslashes and all control characters are escaped, so any
/// diagnostic message round-trips through strict parsers.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// The diagnostic as a single-line JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let labels = self
            .labels
            .iter()
            .map(|l| {
                format!(
                    r#"{{"line":{},"col":{},"message":"{}"}}"#,
                    l.span.line,
                    l.span.col,
                    json_escape(&l.message)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let help = match &self.help {
            Some(h) => format!(r#""{}""#, json_escape(h)),
            None => String::from("null"),
        };
        format!(
            r#"{{"code":"{}","severity":"{}","line":{},"col":{},"message":"{}","labels":[{}],"help":{}}}"#,
            self.code,
            self.severity,
            self.span.line,
            self.span.col,
            json_escape(&self.message),
            labels,
            help
        )
    }
}

/// Renders a diagnostic list as the stable `logrel-diagnostics-v1` JSON
/// document consumed by CI (`htlc lint --format json`). The rendering is
/// deterministic: callers pass the diagnostics already sorted by
/// [`sort_diagnostics`], and every field appears in a fixed order.
pub fn diagnostics_json(file: &str, diags: &[Diagnostic]) -> String {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"logrel-diagnostics-v1\",\n");
    out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(file)));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {warnings},\n"));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&d.to_json());
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_line_is_stable() {
        let d = Diagnostic::new(
            "L001",
            Severity::Warning,
            Span { line: 3, col: 7 },
            "communicator `x` is never accessed",
        );
        assert_eq!(
            d.ci_line("pump.htl"),
            "L001:warning:pump.htl:3:7: communicator `x` is never accessed"
        );
    }

    #[test]
    fn render_includes_labels_and_help() {
        let d = Diagnostic::new("L003", Severity::Error, Span { line: 2, col: 5 }, "boom")
            .with_label(Span { line: 9, col: 1 }, "architecture declared here")
            .with_help("add a host");
        let r = d.render("a.htl");
        assert!(r.contains("note: a.htl:9:1: architecture declared here"));
        assert!(r.contains("help: add a host"));
    }

    #[test]
    fn deny_promotes_warnings() {
        let mut diags = vec![Diagnostic::new(
            "L001",
            Severity::Warning,
            Span::default(),
            "w",
        )];
        deny_warnings(&mut diags);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn sort_orders_by_position_then_code() {
        let mut diags = vec![
            Diagnostic::new("L009", Severity::Warning, Span { line: 5, col: 1 }, "b"),
            Diagnostic::new("L001", Severity::Warning, Span { line: 2, col: 1 }, "a"),
            Diagnostic::new("L001", Severity::Warning, Span { line: 2, col: 1 }, "a"),
        ];
        sort_diagnostics(&mut diags);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn diagnostic_json_is_single_line_and_complete() {
        let d = Diagnostic::new("L003", Severity::Error, Span { line: 2, col: 5 }, "boom")
            .with_label(Span { line: 9, col: 1 }, "declared here")
            .with_help("add a host");
        let j = d.to_json();
        assert!(!j.contains('\n'));
        assert!(j.contains(r#""code":"L003""#));
        assert!(j.contains(r#""severity":"error""#));
        assert!(j.contains(r#""labels":[{"line":9,"col":1,"message":"declared here"}]"#));
        assert!(j.contains(r#""help":"add a host""#));
        let none = Diagnostic::new("L001", Severity::Warning, Span::default(), "w");
        assert!(none.to_json().contains(r#""help":null"#));
    }

    #[test]
    fn diagnostics_json_counts_and_stays_parseable() {
        let diags = vec![
            Diagnostic::new("L001", Severity::Warning, Span { line: 1, col: 1 }, "w"),
            Diagnostic::new("L003", Severity::Error, Span { line: 2, col: 1 }, "e"),
        ];
        let doc = diagnostics_json("a.htl", &diags);
        assert!(doc.contains("\"schema\": \"logrel-diagnostics-v1\""));
        assert!(doc.contains("\"errors\": 1"));
        assert!(doc.contains("\"warnings\": 1"));
        // Empty list renders a closed array, not a dangling bracket.
        let empty = diagnostics_json("a.htl", &[]);
        assert!(empty.contains("\"diagnostics\": []"));
    }

    #[test]
    fn lang_errors_map_to_stable_codes() {
        let parse = LangError::Parse {
            expected: "`;`".into(),
            found: "`}`".into(),
            span: Span { line: 4, col: 2 },
        };
        let d = Diagnostic::from_lang_error(&parse);
        assert_eq!(d.code, "L091");
        assert_eq!(d.span.line, 4);
        let core = LangError::Core(logrel_core::CoreError::ZeroPeriod);
        assert_eq!(Diagnostic::from_lang_error(&core).code, "L093");
    }
}
