//! Static verification of generated E-code (`E0xx`).
//!
//! The verifier abstractly interprets a per-host E-code program over its
//! *reaction graph*: a reaction starts at the entry or at the target of an
//! armed `future` trigger and runs in logical zero time through calls,
//! releases, jumps and conditional jumps until `return`. Each reaction is
//! assigned a *phase* — its logical offset within the round — and a
//! must-latch dataflow fact (the set of task input slots latched since the
//! last round boundary, intersected over all incoming paths). The
//! traversal proves:
//!
//! | code | obligation |
//! |------|------------|
//! | E001 | the entry and every jump/future target are in bounds |
//! | E002 | control never falls off the end of the program |
//! | E003 | future offsets are consistent: every reaction has a unique phase, so each cycle's deltas sum to the round length |
//! | E004 | mode switches (`jump_if_event`) are tested only at round boundaries (phase 0) |
//! | E005 | every `release` happens at the releasing mode's read time for a task mapped to this host |
//! | E006 | every `latch` addresses a real slot at its access instant, and every `release` finds all of its task's inputs latched on every path |
//! | E007 | every reaction arms exactly one trigger before returning |
//! | E008 | no same-instant control loop (the reaction terminates) |
//! | E009 | each reaction updates exactly the communicator instances due at its phase, refreshes sensors first, and updates before dependent latches (the paper's semantics assumption 3) |
//!
//! Together these imply the co-simulation invariants checked at runtime:
//! E003/E007/E008 make the program a productive round-periodic machine,
//! E009 + E006 give the "all replications are first updated and then read"
//! ordering, and E005 + the spec-level restriction *read < write* give
//! release-before-result-read in logical time.

use crate::diagnostic::{Diagnostic, Severity};
use logrel_core::{HostId, Implementation, Specification};
use logrel_emachine::modal::ModalMode;
use logrel_emachine::{Addr, DriverOp, ECode, Instruction};
use std::collections::{BTreeMap, BTreeSet};

/// One mode's specification and mapping, as seen by the verifier.
#[derive(Debug, Clone, Copy)]
pub struct ModeCtx<'a> {
    /// The mode's flattened specification.
    pub spec: &'a Specification,
    /// The mode's replication mapping.
    pub imp: &'a Implementation,
}

/// What the verifier knows about the program under verification.
#[derive(Debug, Clone)]
pub struct VerifyCtx<'a> {
    /// The host the program was generated for.
    pub host: HostId,
    /// The modes (one for single-mode programs). All modes share the
    /// communicator declarations and the round period.
    pub modes: Vec<ModeCtx<'a>>,
}

impl<'a> VerifyCtx<'a> {
    /// Context for a single-mode program.
    pub fn single(spec: &'a Specification, imp: &'a Implementation, host: HostId) -> Self {
        VerifyCtx {
            host,
            modes: vec![ModeCtx { spec, imp }],
        }
    }

    /// Context for a modal program.
    pub fn modal(modes: &'a [ModalMode<'a>], host: HostId) -> Self {
        VerifyCtx {
            host,
            modes: modes
                .iter()
                .map(|m| ModeCtx {
                    spec: m.spec,
                    imp: m.imp,
                })
                .collect(),
        }
    }

    fn round(&self) -> u64 {
        self.modes[0].spec.round_period().as_u64()
    }
}

/// Verifies an assembled program.
pub fn verify(code: &ECode, ctx: &VerifyCtx<'_>) -> Vec<Diagnostic> {
    verify_instructions(code.instructions(), code.entry(), ctx)
}

/// A latched task input slot: `(task index, input index)`.
type Slot = (u32, u32);

/// Verifies a raw instruction sequence (also usable for programs that
/// [`ECode::new`] would reject, e.g. with out-of-range targets).
pub fn verify_instructions(
    ins: &[Instruction],
    entry: Addr,
    ctx: &VerifyCtx<'_>,
) -> Vec<Diagnostic> {
    let mut v = Verifier {
        ins,
        ctx,
        round: ctx.round(),
        diags: Vec::new(),
        phases: BTreeMap::new(),
        latched_in: BTreeMap::new(),
    };
    if !v.check_bounds(entry) {
        return v.diags;
    }
    v.traverse(entry);
    v.diags
}

struct Verifier<'a, 'b> {
    ins: &'a [Instruction],
    ctx: &'a VerifyCtx<'b>,
    round: u64,
    diags: Vec<Diagnostic>,
    /// The phase each reaction head was first reached at.
    phases: BTreeMap<usize, u64>,
    /// Must-latch fact at each reaction head (intersection over paths).
    latched_in: BTreeMap<usize, BTreeSet<Slot>>,
}

impl Verifier<'_, '_> {
    fn error(&mut self, code: &'static str, message: String) {
        self.diags
            .push(Diagnostic::new(code, Severity::Error, Default::default(), message));
    }

    /// E001: entry and all targets in bounds. Returns `false` when the
    /// program cannot be traversed safely.
    fn check_bounds(&mut self, entry: Addr) -> bool {
        let len = self.ins.len();
        let mut ok = true;
        if entry.0 >= len {
            self.error("E001", format!("entry {entry} is out of bounds (len {len})"));
            ok = false;
        }
        for (i, instr) in self.ins.iter().enumerate() {
            let target = match instr {
                Instruction::Future { target, .. }
                | Instruction::Jump(target)
                | Instruction::JumpIfEvent { target, .. } => *target,
                _ => continue,
            };
            if target.0 >= len {
                self.error(
                    "E001",
                    format!("@{i}: target {target} is out of bounds (len {len})"),
                );
                ok = false;
            }
        }
        ok
    }

    /// Expected communicator updates at `phase`: instance `phase / period`
    /// of every communicator whose period divides the phase.
    fn expected_updates(&self, phase: u64) -> BTreeSet<(u32, u64)> {
        let spec = self.ctx.modes[0].spec;
        spec.communicator_ids()
            .filter_map(|c| {
                let period = spec.communicator(c).period().as_u64();
                phase
                    .is_multiple_of(period)
                    .then_some((c.index() as u32, phase / period))
            })
            .collect()
    }

    /// Worklist traversal of the reaction graph from `entry` at phase 0.
    fn traverse(&mut self, entry: Addr) {
        let mut work: Vec<(usize, u64, BTreeSet<Slot>)> =
            vec![(entry.0, 0, BTreeSet::new())];
        while let Some((head, phase, latched)) = work.pop() {
            match self.phases.get(&head) {
                None => {
                    self.phases.insert(head, phase);
                }
                Some(&known) if known != phase => {
                    self.error(
                        "E003",
                        format!(
                            "reaction @{head} is reached at phase {phase} and at phase \
                             {known}; future offsets do not sum to the round length \
                             ({}) on every path",
                            self.round
                        ),
                    );
                    continue;
                }
                Some(_) => {}
            }
            // Must-latch meet: intersect with what is already known.
            let state = match self.latched_in.get(&head) {
                None => latched,
                Some(known) => {
                    let meet: BTreeSet<Slot> = known.intersection(&latched).copied().collect();
                    if meet == *known {
                        continue; // no new information
                    }
                    meet
                }
            };
            self.latched_in.insert(head, state.clone());
            for succ in self.walk_reaction(head, phase, state) {
                work.push(succ);
            }
        }
    }

    /// Interprets one reaction (all intra-instant paths) starting at
    /// `head`, returning the successor reactions.
    fn walk_reaction(
        &mut self,
        head: usize,
        phase: u64,
        latched: BTreeSet<Slot>,
    ) -> Vec<(usize, u64, BTreeSet<Slot>)> {
        let expected = self.expected_updates(phase);
        let mut successors = Vec::new();
        // Each in-flight path: (pc, armed trigger, visited pcs, latched,
        // sensors read, communicators updated).
        struct Path {
            pc: usize,
            armed: Option<(u64, usize)>,
            visited: BTreeSet<usize>,
            latched: BTreeSet<Slot>,
            sensors_read: BTreeSet<u32>,
            updated: BTreeSet<(u32, u64)>,
        }
        let mut paths = vec![Path {
            pc: head,
            armed: None,
            visited: BTreeSet::new(),
            latched,
            sensors_read: BTreeSet::new(),
            updated: BTreeSet::new(),
        }];
        while let Some(mut p) = paths.pop() {
            loop {
                if p.pc >= self.ins.len() {
                    self.error(
                        "E002",
                        format!(
                            "control falls off the end of the program in the reaction \
                             at phase {phase} (started @{head})"
                        ),
                    );
                    break;
                }
                if !p.visited.insert(p.pc) {
                    self.error(
                        "E008",
                        format!(
                            "same-instant control loop through @{} in the reaction at \
                             phase {phase}",
                            p.pc
                        ),
                    );
                    break;
                }
                match self.ins[p.pc] {
                    Instruction::Call(op) => {
                        self.check_call(p.pc, phase, op, &mut p.latched, &mut p.sensors_read, &mut p.updated);
                        p.pc += 1;
                    }
                    Instruction::Release { task } => {
                        self.check_release(p.pc, phase, task.index() as u32, &p.latched);
                        p.pc += 1;
                    }
                    Instruction::Future { delta, target } => {
                        if p.armed.is_some() {
                            self.error(
                                "E007",
                                format!(
                                    "@{}: reaction at phase {phase} arms more than one \
                                     trigger",
                                    p.pc
                                ),
                            );
                        }
                        p.armed = Some((delta, target.0));
                        p.pc += 1;
                    }
                    Instruction::Jump(target) => {
                        p.pc = target.0;
                    }
                    Instruction::JumpIfEvent { event, target } => {
                        if phase != 0 {
                            self.error(
                                "E004",
                                format!(
                                    "@{}: mode-switch test for event e{event} at phase \
                                     {phase}; switches may only be tested at round \
                                     boundaries (phase 0)",
                                    p.pc
                                ),
                            );
                        }
                        // Branch: event fired.
                        paths.push(Path {
                            pc: target.0,
                            armed: p.armed,
                            visited: p.visited.clone(),
                            latched: p.latched.clone(),
                            sensors_read: p.sensors_read.clone(),
                            updated: p.updated.clone(),
                        });
                        p.pc += 1;
                    }
                    Instruction::Return => {
                        for &(c, i) in expected.difference(&p.updated) {
                            self.error(
                                "E009",
                                format!(
                                    "reaction at phase {phase} (started @{head}) never \
                                     updates communicator c{c} instance {i}, which is \
                                     due at this instant"
                                ),
                            );
                        }
                        match p.armed {
                            None => self.error(
                                "E007",
                                format!(
                                    "@{}: reaction at phase {phase} returns without \
                                     arming a trigger; the machine would halt",
                                    p.pc
                                ),
                            ),
                            Some((delta, target)) => {
                                let raw = phase + delta;
                                let next_phase = raw % self.round;
                                let state = if raw >= self.round {
                                    BTreeSet::new() // round boundary: new round
                                } else {
                                    p.latched.clone()
                                };
                                successors.push((target, next_phase, state));
                            }
                        }
                        break;
                    }
                }
            }
        }
        successors
    }

    /// Checks one driver call and records its effect on the path state.
    fn check_call(
        &mut self,
        pc: usize,
        phase: u64,
        op: DriverOp,
        latched: &mut BTreeSet<Slot>,
        sensors_read: &mut BTreeSet<u32>,
        updated: &mut BTreeSet<(u32, u64)>,
    ) {
        let spec = self.ctx.modes[0].spec;
        match op {
            DriverOp::ReadSensors { comm } => {
                let c = comm.index() as u32;
                let valid = (comm.index() < spec.communicator_count())
                    && spec.is_sensor_input(comm)
                    && phase.is_multiple_of(spec.communicator(comm).period().as_u64());
                if !valid {
                    self.error(
                        "E009",
                        format!(
                            "@{pc}: read_sensors({comm}) at phase {phase}: the \
                             communicator is not a sensor input due at this instant"
                        ),
                    );
                }
                sensors_read.insert(c);
            }
            DriverOp::UpdateCommunicator { comm, instance } => {
                if comm.index() >= spec.communicator_count() {
                    self.error("E009", format!("@{pc}: update of unknown communicator {comm}"));
                    return;
                }
                let period = spec.communicator(comm).period().as_u64();
                if !phase.is_multiple_of(period) || instance != phase / period {
                    self.error(
                        "E009",
                        format!(
                            "@{pc}: update({comm}, {instance}) at phase {phase}: \
                             instance {instance} is not due at this instant"
                        ),
                    );
                }
                if spec.is_sensor_input(comm) && !sensors_read.contains(&(comm.index() as u32)) {
                    self.error(
                        "E009",
                        format!(
                            "@{pc}: update({comm}, {instance}) without a preceding \
                             read_sensors in the same reaction"
                        ),
                    );
                }
                updated.insert((comm.index() as u32, instance));
            }
            DriverOp::LatchInput { task, index } => {
                // A latch is well-placed if *some* mode has this slot, maps
                // the task to this host and accesses it at this instant.
                let mut known_slot = false;
                let mut placed = false;
                let mut source = None;
                for mode in &self.ctx.modes {
                    if task.index() >= mode.spec.task_count() {
                        continue;
                    }
                    let inputs = mode.spec.task(task).inputs();
                    let Some(&access) = inputs.get(index as usize) else {
                        continue;
                    };
                    known_slot = true;
                    source = Some(access.comm);
                    let at = mode.spec.access_instant(access).as_u64() % self.round;
                    if mode.imp.hosts_of(task).contains(&self.ctx.host) && at == phase {
                        placed = true;
                        break;
                    }
                }
                if !known_slot {
                    self.error(
                        "E006",
                        format!(
                            "@{pc}: latch({task}, {index}) addresses a slot no mode \
                             declares"
                        ),
                    );
                } else if !placed {
                    self.error(
                        "E006",
                        format!(
                            "@{pc}: latch({task}, {index}) at phase {phase} does not \
                             match the slot's access instant on this host in any mode"
                        ),
                    );
                }
                // Assumption 3: if the source communicator is due at this
                // phase it must have been updated earlier in the reaction.
                if let Some(c) = source {
                    let period = spec.communicator(c).period().as_u64();
                    let due = phase.is_multiple_of(period);
                    let instance = phase / period;
                    if due && !updated.contains(&(c.index() as u32, instance)) {
                        self.error(
                            "E009",
                            format!(
                                "@{pc}: latch({task}, {index}) reads {c} before its \
                                 instance {instance} is updated in this reaction \
                                 (assumption 3: update before read)"
                            ),
                        );
                    }
                }
                latched.insert((task.index() as u32, index));
            }
        }
    }

    /// Checks a task release: right instant, mapped host, inputs latched.
    fn check_release(&mut self, pc: usize, phase: u64, task: u32, latched: &BTreeSet<Slot>) {
        let mut known = false;
        let mut placed_mode = None;
        for mode in &self.ctx.modes {
            let Some(tid) = mode
                .spec
                .task_ids()
                .find(|t| t.index() as u32 == task)
            else {
                continue;
            };
            known = true;
            let at = mode.spec.read_time(tid).as_u64() % self.round;
            if mode.imp.hosts_of(tid).contains(&self.ctx.host) && at == phase {
                placed_mode = Some((mode, tid));
                break;
            }
        }
        if !known {
            self.error("E005", format!("@{pc}: release of unknown task t{task}"));
            return;
        }
        let Some((mode, tid)) = placed_mode else {
            self.error(
                "E005",
                format!(
                    "@{pc}: release of t{task} at phase {phase} does not match the \
                     task's read time on this host in any mode"
                ),
            );
            return;
        };
        for (index, _) in mode.spec.task(tid).inputs().iter().enumerate() {
            if !latched.contains(&(task, index as u32)) {
                self.error(
                    "E006",
                    format!(
                        "@{pc}: release of t{task} at phase {phase} but input slot \
                         {index} is not latched on every path since the round start"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_emachine::generate;
    use logrel_lang::{elaborate, parse, ElaboratedSystem};

    const TINY: &str = "
        program tiny {
            communicator s : float period 5 sensor;
            communicator u : float period 10;
            module m {
                start mode main period 10 {
                    invoke ctrl reads s[1] writes u[1] defaults 0.0;
                }
            }
            architecture {
                host h reliability 0.99;
                sensor sn reliability 0.999;
                wcet ctrl on h 1;
                wctt ctrl on h 1;
            }
            map {
                ctrl -> h;
                bind s -> sn;
            }
        }
    ";

    /// The tiny system and its single host's generated program: two
    /// reactions (phase 0 and phase 5) linked by `future +5` triggers.
    fn tiny() -> (ElaboratedSystem, ECode) {
        let sys = elaborate(&parse(TINY).unwrap()).unwrap();
        let host = sys.arch.host_ids().next().unwrap();
        let code = generate(&sys.spec, &sys.imp, host);
        (sys, code)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn check(sys: &ElaboratedSystem, ins: &[Instruction], entry: Addr) -> Vec<&'static str> {
        let host = sys.arch.host_ids().next().unwrap();
        let ctx = VerifyCtx::single(&sys.spec, &sys.imp, host);
        codes(&verify_instructions(ins, entry, &ctx))
    }

    /// Replaces the first instruction matching `pick` with the result of
    /// `make(index)`; panics if none matches.
    fn mutate(
        code: &ECode,
        pick: impl Fn(&Instruction) -> bool,
        make: impl Fn(usize) -> Instruction,
    ) -> (Vec<Instruction>, Addr) {
        let mut ins = code.instructions().to_vec();
        let i = ins.iter().position(pick).expect("no matching instruction");
        ins[i] = make(i);
        (ins, code.entry())
    }

    #[test]
    fn clean_generated_program_verifies() {
        let (sys, code) = tiny();
        let host = sys.arch.host_ids().next().unwrap();
        let diags = verify(&code, &VerifyCtx::single(&sys.spec, &sys.imp, host));
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    #[test]
    fn dropped_latch_is_rejected() {
        let (sys, code) = tiny();
        // Overwrite the latch with a harmless jump-to-next: the release
        // then finds its input slot unlatched.
        let (ins, entry) = mutate(
            &code,
            |i| matches!(i, Instruction::Call(DriverOp::LatchInput { .. })),
            |i| Instruction::Jump(Addr(i + 1)),
        );
        let codes = check(&sys, &ins, entry);
        assert!(codes.contains(&"E006"), "got {codes:?}");
    }

    #[test]
    fn mid_round_mode_switch_is_rejected() {
        let (sys, code) = tiny();
        // A switch test in the phase-5 reaction (where the release lives)
        // violates the round-boundary rule.
        let (ins, entry) = mutate(
            &code,
            |i| matches!(i, Instruction::Release { .. }),
            |i| Instruction::JumpIfEvent {
                event: 0,
                target: Addr(i + 1),
            },
        );
        let codes = check(&sys, &ins, entry);
        assert!(codes.contains(&"E004"), "got {codes:?}");
    }

    #[test]
    fn short_future_is_rejected() {
        let (sys, code) = tiny();
        // Shrink the entry reaction's trigger: the next reaction is then
        // reached at phase 4 and the cycle no longer sums to the round.
        let (ins, entry) = mutate(
            &code,
            |i| matches!(i, Instruction::Future { .. }),
            |i| match code.instruction(Addr(i)) {
                Instruction::Future { delta, target } => Instruction::Future {
                    delta: delta - 1,
                    target,
                },
                _ => unreachable!(),
            },
        );
        let codes = check(&sys, &ins, entry);
        assert!(codes.contains(&"E003"), "got {codes:?}");
    }

    #[test]
    fn dropped_future_is_rejected() {
        let (sys, code) = tiny();
        let (ins, entry) = mutate(
            &code,
            |i| matches!(i, Instruction::Future { .. }),
            |i| Instruction::Jump(Addr(i + 1)),
        );
        let codes = check(&sys, &ins, entry);
        assert!(codes.contains(&"E007"), "got {codes:?}");
    }

    #[test]
    fn out_of_bounds_entry_and_target_are_rejected() {
        let (sys, code) = tiny();
        let ins = code.instructions().to_vec();
        let codes = check(&sys, &ins, Addr(ins.len()));
        assert_eq!(codes, ["E001"]);
        let (ins, entry) = mutate(
            &code,
            |i| matches!(i, Instruction::Future { .. }),
            |_| Instruction::Future {
                delta: 5,
                target: Addr(9999),
            },
        );
        let codes = check(&sys, &ins, entry);
        assert!(codes.contains(&"E001"), "got {codes:?}");
    }

    #[test]
    fn wrong_update_instance_is_rejected() {
        let (sys, code) = tiny();
        let (ins, entry) = mutate(
            &code,
            |i| matches!(i, Instruction::Call(DriverOp::UpdateCommunicator { .. })),
            |i| match code.instruction(Addr(i)) {
                Instruction::Call(DriverOp::UpdateCommunicator { comm, instance }) => {
                    Instruction::Call(DriverOp::UpdateCommunicator {
                        comm,
                        instance: instance + 7,
                    })
                }
                _ => unreachable!(),
            },
        );
        let codes = check(&sys, &ins, entry);
        assert!(codes.contains(&"E009"), "got {codes:?}");
    }

    #[test]
    fn control_falling_off_the_end_is_rejected() {
        let (sys, code) = tiny();
        // Turn the last Return into a jump past itself... not possible
        // in-bounds; instead overwrite a Return with a no-op jump to the
        // next pc, so the following reaction head is executed inline and
        // the final Return is replaced where the sequence ends.
        let mut ins = code.instructions().to_vec();
        let last_ret = ins
            .iter()
            .rposition(|i| matches!(i, Instruction::Return))
            .unwrap();
        // Removing the final Return makes that path run off the end when
        // it is the last instruction.
        if last_ret == ins.len() - 1 {
            ins.pop();
        } else {
            ins[last_ret] = Instruction::Jump(Addr(last_ret + 1));
        }
        let codes = check(&sys, &ins, code.entry());
        assert!(
            codes.contains(&"E002") || codes.contains(&"E008"),
            "got {codes:?}"
        );
    }
}
