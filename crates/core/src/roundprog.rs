//! The round calendar and the compiled round program.
//!
//! One round (hyperperiod π_S) of a race-free specification is a fixed
//! schedule: communicator updates at every multiple of each period, input
//! latches at the access instants `i·π_c`, and task reads at their read
//! times. [`Calendar`] derives that schedule from the specification alone;
//! [`RoundProgram`] lowers it, together with a replication mapping, into
//! dense index-addressed instruction lists.
//!
//! Both types are *data* — they contain no execution machinery. The
//! simulator (`logrel-sim`) interprets a [`RoundProgram`] in its hot loop;
//! the translation validator (`logrel-validate`) symbolically executes the
//! same program and certifies it against the specification's denotational
//! dataflow. Keeping the model here, with public fields, is what lets the
//! validator inspect compiled kernels without reaching into simulator
//! internals — and lets tests corrupt programs deliberately.

use crate::ids::{CommunicatorId, HostId, SensorId, TaskId};
use crate::implmap::TimeDependentImplementation;
use crate::spec::{FailureModel, Specification};
use crate::value::Value;
use std::collections::BTreeMap;

/// The per-round event schedule of a specification: which instants exist,
/// what lands where, what is latched and read when.
///
/// A pure function of the [`Specification`]; independent of any
/// implementation mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Calendar {
    /// Sorted event instants within one round (offsets in `[0, π_S)`).
    events: Vec<u64>,
    /// `(comm, slot)` → (writer, positional output index, rounds back).
    ///
    /// `rounds_back` is 1 when the write instant equals the round period
    /// (the output lands at slot 0 of the *next* round), 0 otherwise.
    landing: BTreeMap<(CommunicatorId, u64), (TaskId, usize, u64)>,
    /// slot → task input accesses to latch: (task, input index).
    latch_at: BTreeMap<u64, Vec<(TaskId, usize)>>,
    /// slot → tasks whose read time is this slot.
    reads_at: BTreeMap<u64, Vec<TaskId>>,
}

impl Calendar {
    /// Derives the event calendar of one round from the specification's
    /// read/write instants.
    pub fn new(spec: &Specification) -> Self {
        let round = spec.round_period().as_u64();
        let mut events = std::collections::BTreeSet::new();
        for c in spec.communicator_ids() {
            let p = spec.communicator(c).period().as_u64();
            let mut t = 0;
            while t < round {
                events.insert(t);
                t += p;
            }
        }
        let mut landing = BTreeMap::new();
        let mut latch_at: BTreeMap<u64, Vec<(TaskId, usize)>> = BTreeMap::new();
        let mut reads_at: BTreeMap<u64, Vec<TaskId>> = BTreeMap::new();
        for t in spec.task_ids() {
            let read = spec.read_time(t).as_u64();
            events.insert(read);
            reads_at.entry(read).or_default().push(t);
            for (idx, &a) in spec.task(t).inputs().iter().enumerate() {
                let at = spec.access_instant(a).as_u64();
                events.insert(at);
                latch_at.entry(at).or_default().push((t, idx));
            }
            for (idx, &a) in spec.task(t).outputs().iter().enumerate() {
                let abs = spec.access_instant(a).as_u64();
                let slot = abs % round;
                let rounds_back = abs / round; // 0, or 1 when abs == round
                landing.insert((a.comm, slot), (t, idx, rounds_back));
            }
        }
        Calendar {
            events: events.into_iter().collect(),
            landing,
            latch_at,
            reads_at,
        }
    }

    /// Sorted event instants within one round.
    pub fn events(&self) -> &[u64] {
        &self.events
    }

    /// `(comm, slot)` → (writer, positional output index, rounds back).
    pub fn landing(&self) -> &BTreeMap<(CommunicatorId, u64), (TaskId, usize, u64)> {
        &self.landing
    }

    /// slot → task input accesses latched at that instant.
    pub fn latch_at(&self) -> &BTreeMap<u64, Vec<(TaskId, usize)>> {
        &self.latch_at
    }

    /// slot → tasks whose read time is that instant.
    pub fn reads_at(&self) -> &BTreeMap<u64, Vec<TaskId>> {
        &self.reads_at
    }
}

/// The flat output layout shared by the round program, the co-simulation
/// platform and the validator: per task the base index of its outputs in
/// the flat result buffer, plus the total buffer length.
pub fn output_layout(spec: &Specification) -> (Vec<usize>, usize) {
    let mut out_base = Vec::with_capacity(spec.task_count());
    let mut total = 0usize;
    for t in spec.task_ids() {
        out_base.push(total);
        total += spec.task(t).outputs().len();
    }
    (out_base, total)
}

/// One communicator update in a slot's compiled instruction list.
///
/// Update order within a slot is ascending communicator id, exactly the
/// iteration order of the reference interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Sensor-fed communicator: sample every bound sensor of the current
    /// phase, then sense or ⊥.
    Sensor { comm: u32 },
    /// Task-written instance: take the voted round result landing here.
    /// `out_slot` is the flat index of the writing task's output value.
    Landed {
        comm: u32,
        task: u32,
        out_slot: u32,
        rounds_back: u32,
    },
    /// Non-sensor instance nothing lands on: the value persists.
    Persist { comm: u32 },
}

impl UpdateOp {
    /// The communicator this update writes, uniformly across variants.
    #[must_use]
    pub fn comm(&self) -> usize {
        match *self {
            UpdateOp::Sensor { comm }
            | UpdateOp::Landed { comm, .. }
            | UpdateOp::Persist { comm } => comm as usize,
        }
    }
}

/// One input latch: `latched[dst] = comm_values[comm]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatchOp {
    /// Destination index in the flat latch buffer.
    pub dst: u32,
    /// Source communicator index.
    pub comm: u32,
}

/// The compiled instruction lists of one event instant within a round.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotProgram {
    /// Offset of this instant within the round.
    pub offset: u64,
    /// Communicator updates due at this instant.
    pub updates: Vec<UpdateOp>,
    /// Input latches due at this instant.
    pub latches: Vec<LatchOp>,
    /// Tasks whose read time is this instant, in ascending id order.
    pub reads: Vec<u32>,
}

/// Per-task constants, flattened out of the specification.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTable {
    /// The task's input failure model.
    pub model: FailureModel,
    /// Base of this task's inputs in the flat latch buffer.
    pub in_base: usize,
    /// Input arity.
    pub n_in: usize,
    /// Base of this task's outputs in the flat round-result buffers.
    pub out_base: usize,
    /// Output arity.
    pub n_out: usize,
    /// Default input values, padded to the input arity (the pad values are
    /// unreachable: they would only be read for an unreliable input of a
    /// task validated to declare defaults).
    pub defaults: Vec<Value>,
    /// Reads at least one task-written communicator: a rejoining replica
    /// must warm up for one full round before voting again.
    pub stateful: bool,
}

impl TaskTable {
    /// The task's slice of the flat latch buffer.
    #[must_use]
    pub fn in_range(&self) -> std::ops::Range<usize> {
        self.in_base..self.in_base + self.n_in
    }

    /// The task's slice of the flat round-result buffers.
    #[must_use]
    pub fn out_range(&self) -> std::ops::Range<usize> {
        self.out_base..self.out_base + self.n_out
    }
}

/// Phase-resolved replication tables: who senses and who executes, with
/// the `BTreeSet` host/sensor sets of the implementation flattened into
/// dense, cache-friendly lists (ascending id order is preserved, which
/// fixes the RNG draw order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTables {
    /// Per communicator: the bound sensors (empty for non-sensor comms).
    pub sensors: Vec<Vec<SensorId>>,
    /// Per task: the replica hosts.
    pub hosts: Vec<Vec<HostId>>,
}

/// A whole system, lowered to dense index-addressed form once so the
/// simulator's hot loop performs no map lookups and no per-replica
/// allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundProgram {
    /// The instruction lists, one per event instant, in instant order.
    pub slots: Vec<SlotProgram>,
    /// Replication tables, one per mapping phase.
    pub phases: Vec<PhaseTables>,
    /// Per-task constants, indexed by task.
    pub tasks: Vec<TaskTable>,
    /// Total input accesses across tasks (= flat latch buffer length).
    pub total_inputs: usize,
    /// Total outputs across tasks (= flat result buffer length).
    pub total_outputs: usize,
    /// Largest input arity of any task.
    pub max_inputs: usize,
    /// Largest output arity of any task.
    pub max_outputs: usize,
    /// Largest replica count of any task in any phase.
    pub max_replicas: usize,
}

impl RoundProgram {
    /// Lowers the event calendar and replication mapping into the dense
    /// round program interpreted by the simulator.
    pub fn compile(
        spec: &Specification,
        imp: &TimeDependentImplementation,
        calendar: &Calendar,
    ) -> RoundProgram {
        let mut tasks = Vec::with_capacity(spec.task_count());
        let mut in_base = 0usize;
        let (out_bases, total_outputs) = output_layout(spec);
        for t in spec.task_ids() {
            let decl = spec.task(t);
            let (n_in, n_out) = (decl.inputs().len(), decl.outputs().len());
            let defaults = (0..n_in)
                .map(|i| {
                    decl.default_values()
                        .get(i)
                        .copied()
                        .unwrap_or(Value::Unreliable)
                })
                .collect();
            tasks.push(TaskTable {
                model: decl.failure_model(),
                in_base,
                n_in,
                out_base: out_bases[t.index()],
                n_out,
                defaults,
                stateful: decl.inputs().iter().any(|a| !spec.is_sensor_input(a.comm)),
            });
            in_base += n_in;
        }
        let tasks: Vec<TaskTable> = tasks;

        let phases = imp
            .phases()
            .iter()
            .map(|phase| PhaseTables {
                sensors: spec
                    .communicator_ids()
                    .map(|c| {
                        if spec.is_sensor_input(c) {
                            phase.sensors_of(c).iter().copied().collect()
                        } else {
                            Vec::new()
                        }
                    })
                    .collect(),
                hosts: spec
                    .task_ids()
                    .map(|t| phase.hosts_of(t).iter().copied().collect())
                    .collect(),
            })
            .collect::<Vec<PhaseTables>>();

        let slots = calendar
            .events()
            .iter()
            .map(|&slot| {
                let updates = spec
                    .communicator_ids()
                    .filter(|&c| slot % spec.communicator(c).period().as_u64() == 0)
                    .map(|c| {
                        let comm = c.index() as u32;
                        if spec.is_sensor_input(c) {
                            UpdateOp::Sensor { comm }
                        } else if let Some(&(t, out_idx, rounds_back)) =
                            calendar.landing().get(&(c, slot))
                        {
                            UpdateOp::Landed {
                                comm,
                                task: t.index() as u32,
                                out_slot: (tasks[t.index()].out_base + out_idx) as u32,
                                rounds_back: rounds_back as u32,
                            }
                        } else {
                            UpdateOp::Persist { comm }
                        }
                    })
                    .collect();
                let latches = calendar
                    .latch_at()
                    .get(&slot)
                    .map(|l| {
                        l.iter()
                            .map(|&(t, idx)| LatchOp {
                                dst: (tasks[t.index()].in_base + idx) as u32,
                                comm: spec.task(t).inputs()[idx].comm.index() as u32,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let reads = calendar
                    .reads_at()
                    .get(&slot)
                    .map(|ts| ts.iter().map(|t| t.index() as u32).collect())
                    .unwrap_or_default();
                SlotProgram {
                    offset: slot,
                    updates,
                    latches,
                    reads,
                }
            })
            .collect();

        RoundProgram {
            slots,
            max_replicas: phases
                .iter()
                .flat_map(|p| p.hosts.iter().map(Vec::len))
                .max()
                .unwrap_or(0),
            phases,
            total_inputs: in_base,
            total_outputs,
            max_inputs: tasks.iter().map(|t| t.n_in).max().unwrap_or(0),
            max_outputs: tasks.iter().map(|t| t.n_out).max().unwrap_or(0),
            tasks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, HostDecl, SensorDecl};
    use crate::implmap::Implementation;
    use crate::prob::Reliability;
    use crate::spec::{CommunicatorDecl, TaskDecl};
    use crate::value::ValueType;

    fn fig1_like() -> (Specification, Architecture, TimeDependentImplementation) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 5)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("f").reads(s, 1).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab
            .host(HostDecl::new("h1", Reliability::new(0.9).unwrap()))
            .unwrap();
        let sn = ab
            .sensor(SensorDecl::new("sn", Reliability::new(0.9).unwrap()))
            .unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(s, sn)
            .build(&spec, &arch)
            .unwrap();
        (spec, arch, imp.into())
    }

    #[test]
    fn calendar_collects_update_latch_and_read_instants() {
        let (spec, _, _) = fig1_like();
        let cal = Calendar::new(&spec);
        // s updates at 0 and 5; u at 0; read of (s,1) latches at 5; read
        // time is 5; write (u,1) lands at slot 0 of the next round.
        assert_eq!(cal.events(), &[0, 5]);
        let u = spec.find_communicator("u").unwrap();
        let t = spec.find_task("f").unwrap();
        assert_eq!(cal.landing().get(&(u, 0)), Some(&(t, 0, 1)));
        assert_eq!(cal.latch_at().get(&5), Some(&vec![(t, 0)]));
        assert_eq!(cal.reads_at().get(&5), Some(&vec![t]));
    }

    #[test]
    fn compile_lays_out_flat_indices() {
        let (spec, _, imp) = fig1_like();
        let cal = Calendar::new(&spec);
        let prog = RoundProgram::compile(&spec, &imp, &cal);
        assert_eq!(prog.slots.len(), 2);
        assert_eq!(prog.total_inputs, 1);
        assert_eq!(prog.total_outputs, 1);
        assert_eq!(prog.tasks[0].in_base, 0);
        assert_eq!(prog.tasks[0].out_base, 0);
        assert!(!prog.tasks[0].stateful);
        // Slot 0 carries the landing of u (rounds_back 1).
        let landed = prog.slots[0]
            .updates
            .iter()
            .find(|op| matches!(op, UpdateOp::Landed { .. }))
            .unwrap();
        assert_eq!(
            *landed,
            UpdateOp::Landed {
                comm: 1,
                task: 0,
                out_slot: 0,
                rounds_back: 1
            }
        );
        let (out_bases, total) = output_layout(&spec);
        assert_eq!(out_bases, vec![0]);
        assert_eq!(total, 1);
    }
}
