//! Dense index-based identifiers for model entities.
//!
//! Ids are assigned by the respective builders ([`crate::spec`],
//! [`crate::arch`]) in declaration order and index directly into the owning
//! container's storage, which keeps analyses allocation-light.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Returns the dense index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a communicator within a [`crate::Specification`].
    CommunicatorId,
    "c"
);
define_id!(
    /// Identifier of a task within a [`crate::Specification`].
    TaskId,
    "t"
);
define_id!(
    /// Identifier of a host within an [`crate::Architecture`].
    HostId,
    "h"
);
define_id!(
    /// Identifier of a sensor within an [`crate::Architecture`].
    SensorId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let c = CommunicatorId::new(3);
        assert_eq!(c.index(), 3);
        assert_eq!(c.to_string(), "c3");
        let t = TaskId::new(0);
        assert_eq!(t.to_string(), "t0");
        let h = HostId::new(7);
        assert_eq!(h.to_string(), "h7");
        let s = SensorId::new(1);
        assert_eq!(s.to_string(), "s1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert_eq!(usize::from(HostId::new(4)), 4);
    }
}
