//! Core model for the DATE'08 paper *Logical Reliability of Interacting
//! Real-Time Tasks*.
//!
//! This crate defines the vocabulary shared by every other `logrel` crate:
//!
//! * [`time`] — integer logical time ([`Tick`]), periods and hyper-periods;
//! * [`prob`] — the [`Reliability`] newtype with the paper's `(0, 1]`
//!   invariant and series/parallel combination;
//! * [`value`] — communicator values including the distinguished
//!   *unreliable* symbol ⊥ ([`Value::Unreliable`]);
//! * [`spec`] — communicator and task declarations, failure models and the
//!   race-free [`Specification`] with its four well-formedness restrictions;
//! * [`graph`] — the specification graph, communicator cycles and the
//!   memory-free check of §3;
//! * [`arch`] — architectures: fail-silent hosts, sensors, WCET/WCTT maps;
//! * [`implmap`] — implementations: replication mappings from tasks to host
//!   sets, sensor bindings, and periodic time-dependent mappings;
//! * [`roundprog`] — the per-round event [`Calendar`] and the compiled
//!   [`RoundProgram`] shared by the simulator and the translation
//!   validator.
//!
//! # Example
//!
//! Build the single-task specification of the paper's Fig. 1 (communicators
//! `c1..c4` with periods 2, 3, 4, 2; task `t` reads the second instances of
//! `c1`, `c2` and updates the third and sixth instances of `c3`, `c4`):
//!
//! ```
//! use logrel_core::prelude::*;
//!
//! # fn main() -> Result<(), logrel_core::CoreError> {
//! let mut b = Specification::builder();
//! let c1 = b.communicator(CommunicatorDecl::new("c1", ValueType::Float, 2)?)?;
//! let c2 = b.communicator(CommunicatorDecl::new("c2", ValueType::Float, 3)?)?;
//! let c3 = b.communicator(CommunicatorDecl::new("c3", ValueType::Float, 4)?)?;
//! let c4 = b.communicator(CommunicatorDecl::new("c4", ValueType::Float, 2)?)?;
//! let t = b.task(
//!     TaskDecl::new("t")
//!         .reads(c1, 1)
//!         .reads(c2, 1)
//!         .writes(c3, 2)
//!         .writes(c4, 5),
//! )?;
//! let spec = b.build()?;
//! assert_eq!(spec.read_time(t), Tick::new(3));
//! assert_eq!(spec.write_time(t), Tick::new(8));
//! assert_eq!(spec.round_period(), Period::new(12)?);
//! # Ok(())
//! # }
//! ```

pub mod arch;
pub mod error;
pub mod graph;
pub mod ids;
pub mod implmap;
pub mod prob;
pub mod roundprog;
pub mod spec;
pub mod time;
pub mod value;

pub use arch::{Architecture, ArchitectureBuilder, HostDecl, SensorDecl};
pub use error::CoreError;
pub use graph::{CommDependencyGraph, CycleReport, SpecGraph, SpecVertex};
pub use ids::{CommunicatorId, HostId, SensorId, TaskId};
pub use implmap::{Implementation, ImplementationBuilder, TimeDependentImplementation};
pub use prob::Reliability;
pub use roundprog::{Calendar, RoundProgram};
pub use spec::{
    CommAccess, CommunicatorDecl, FailureModel, Specification, SpecificationBuilder, TaskDecl,
};
pub use time::{Period, Tick};
pub use value::{Value, ValueType};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::arch::{Architecture, HostDecl, SensorDecl};
    pub use crate::error::CoreError;
    pub use crate::graph::{CommDependencyGraph, SpecGraph};
    pub use crate::ids::{CommunicatorId, HostId, SensorId, TaskId};
    pub use crate::implmap::{Implementation, TimeDependentImplementation};
    pub use crate::prob::Reliability;
    pub use crate::spec::{CommAccess, CommunicatorDecl, FailureModel, Specification, TaskDecl};
    pub use crate::time::{Period, Tick};
    pub use crate::value::{Value, ValueType};
}
