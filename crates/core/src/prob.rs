//! Reliability values and their combination.
//!
//! The paper uses numbers in `(0, 1]` both for *logical reliability
//! constraints* (LRCs, `µ_c`) and for *singular reliability guarantees*
//! (SRGs, `λ_c`) and host/sensor reliabilities. [`Reliability`] enforces the
//! interval invariant at construction and offers the two combinators the
//! reliability analysis is built from:
//!
//! * [`Reliability::series`] — all blocks must work: `Π r_i`;
//! * [`Reliability::parallel`] — at least one block must work:
//!   `1 − Π (1 − r_i)`.

use crate::error::CoreError;
use std::fmt;

/// A reliability (probability of correct operation) in the half-open
/// interval `(0, 1]`.
///
/// # Example
///
/// ```
/// use logrel_core::Reliability;
///
/// # fn main() -> Result<(), logrel_core::CoreError> {
/// let host = Reliability::new(0.999)?;
/// // Replicating a task on two such hosts (parallel block):
/// let replicated = Reliability::parallel([host, host])?;
/// assert!((replicated.get() - 0.999_999).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Reliability(f64);

impl Reliability {
    /// Perfect reliability.
    pub const ONE: Reliability = Reliability(1.0);

    /// Creates a reliability value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidReliability`] unless `value` is finite
    /// and `0 < value <= 1`.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if value.is_finite() && value > 0.0 && value <= 1.0 {
            Ok(Reliability(value))
        } else {
            Err(CoreError::InvalidReliability { value })
        }
    }

    /// Returns the inner probability.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Probability of failure, `1 − r`, in `[0, 1)`.
    pub fn failure(self) -> f64 {
        1.0 - self.0
    }

    /// Series combination: every component must be reliable.
    ///
    /// Returns [`Reliability::ONE`] for an empty iterator (an empty series
    /// block never fails).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidReliability`] if the product underflows
    /// to exactly `0` (possible only for pathological inputs).
    pub fn series<I: IntoIterator<Item = Reliability>>(items: I) -> Result<Self, CoreError> {
        let p = items.into_iter().fold(1.0_f64, |acc, r| acc * r.0);
        Reliability::new(p)
    }

    /// Parallel combination: at least one component must be reliable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidReliability`] for an empty iterator (an
    /// empty parallel block always fails, which is outside `(0, 1]`).
    pub fn parallel<I: IntoIterator<Item = Reliability>>(items: I) -> Result<Self, CoreError> {
        let mut any = false;
        let q = items.into_iter().fold(1.0_f64, |acc, r| {
            any = true;
            acc * (1.0 - r.0)
        });
        if !any {
            return Err(CoreError::InvalidReliability { value: 0.0 });
        }
        Reliability::new(1.0 - q)
    }

    /// Returns `true` if this reliability meets the constraint `other`
    /// (i.e. `self >= other`), with a tiny tolerance for floating-point
    /// round-off in long series products.
    pub fn meets(self, constraint: Reliability) -> bool {
        self.0 + 1e-12 >= constraint.0
    }

    /// The pointwise minimum of two reliabilities.
    pub fn min(self, other: Reliability) -> Reliability {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The pointwise maximum of two reliabilities.
    pub fn max(self, other: Reliability) -> Reliability {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Reliability> for f64 {
    fn from(r: Reliability) -> f64 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn construction_validates_interval() {
        assert!(Reliability::new(0.0).is_err());
        assert!(Reliability::new(-0.1).is_err());
        assert!(Reliability::new(1.0 + 1e-9).is_err());
        assert!(Reliability::new(f64::NAN).is_err());
        assert!(Reliability::new(f64::INFINITY).is_err());
        assert!(Reliability::new(1.0).is_ok());
        assert!(Reliability::new(1e-300).is_ok());
    }

    #[test]
    fn series_multiplies() {
        let s = Reliability::series([r(0.9), r(0.9)]).unwrap();
        assert!((s.get() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_one() {
        assert_eq!(Reliability::series([]).unwrap(), Reliability::ONE);
    }

    #[test]
    fn parallel_of_two_hosts_matches_paper_intro() {
        // §1: two hosts with SRG 0.8 give 1 - 0.2*0.2 = 0.96 >= 0.9.
        let p = Reliability::parallel([r(0.8), r(0.8)]).unwrap();
        assert!((p.get() - 0.96).abs() < 1e-12);
        assert!(p.meets(r(0.9)));
    }

    #[test]
    fn empty_parallel_is_error() {
        assert!(Reliability::parallel([]).is_err());
    }

    #[test]
    fn meets_has_tolerance() {
        let a = Reliability::series(std::iter::repeat_n(r(0.999_999_999), 10)).unwrap();
        // a is analytically >= 0.99999999 but products accumulate error.
        assert!(a.meets(a));
    }

    #[test]
    fn min_max() {
        assert_eq!(r(0.5).min(r(0.7)), r(0.5));
        assert_eq!(r(0.5).max(r(0.7)), r(0.7));
    }

    proptest! {
        #[test]
        fn series_never_exceeds_components(a in 0.01f64..=1.0, b in 0.01f64..=1.0) {
            let s = Reliability::series([r(a), r(b)]).unwrap();
            prop_assert!(s.get() <= a + 1e-15);
            prop_assert!(s.get() <= b + 1e-15);
        }

        #[test]
        fn parallel_never_below_components(a in 0.01f64..=1.0, b in 0.01f64..=1.0) {
            let p = Reliability::parallel([r(a), r(b)]).unwrap();
            prop_assert!(p.get() + 1e-15 >= a);
            prop_assert!(p.get() + 1e-15 >= b);
            prop_assert!(p.get() <= 1.0);
        }

        #[test]
        fn parallel_is_commutative(a in 0.01f64..=1.0, b in 0.01f64..=1.0) {
            let p1 = Reliability::parallel([r(a), r(b)]).unwrap();
            let p2 = Reliability::parallel([r(b), r(a)]).unwrap();
            prop_assert!((p1.get() - p2.get()).abs() < 1e-15);
        }
    }
}
