//! Specifications: communicators, tasks and the race-freedom restrictions.
//!
//! A specification `S = (tset, cset)` (§2 of the paper) consists of
//! communicator declarations — typed variables accessible with a fixed
//! period and carrying a *logical reliability constraint* (LRC) — and task
//! declarations — atomic periodic functions reading and writing communicator
//! *instances*. The latest read instant and earliest write instant of a task
//! implicitly define its *logical execution time* (LET).
//!
//! [`SpecificationBuilder::build`] enforces the paper's four restrictions:
//!
//! 1. every task reads and writes at least one communicator;
//! 2. the read time is strictly earlier than the write time;
//! 3. no two tasks write to the same communicator;
//! 4. no task writes a communicator instance multiple times.
//!
//! Together these make the specification *race-free*: each communicator is
//! written by at most one task at any instant.

use crate::error::CoreError;
use crate::ids::{CommunicatorId, TaskId};
use crate::prob::Reliability;
use crate::time::{lcm_all, Period, Tick};
use crate::value::{Value, ValueType};
use std::collections::BTreeSet;
use std::fmt;

/// The input failure model of a task (§2): what a task does when one or
/// more of its inputs carry the unreliable value ⊥ at read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureModel {
    /// Model 1: if *any* input is unreliable, the task fails to execute.
    Series,
    /// Model 2: unreliable inputs are replaced by defaults; the task fails
    /// only if *all* inputs are unreliable.
    Parallel,
    /// Model 3: unreliable inputs are replaced by defaults; the task
    /// executes even if all inputs are unreliable.
    Independent,
}

impl FailureModel {
    /// The paper's numeric encoding (1, 2, 3).
    pub fn number(self) -> u8 {
        match self {
            FailureModel::Series => 1,
            FailureModel::Parallel => 2,
            FailureModel::Independent => 3,
        }
    }
}

impl fmt::Display for FailureModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureModel::Series => write!(f, "series"),
            FailureModel::Parallel => write!(f, "parallel"),
            FailureModel::Independent => write!(f, "independent"),
        }
    }
}

/// An access to a specific instance of a communicator.
///
/// Instance numbers are 0-based: instance `i` of a communicator with period
/// `π` denotes the update due at instant `π · i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommAccess {
    /// The accessed communicator.
    pub comm: CommunicatorId,
    /// The 0-based instance number.
    pub instance: u64,
}

impl CommAccess {
    /// Creates an access to instance `instance` of `comm`.
    pub const fn new(comm: CommunicatorId, instance: u64) -> Self {
        CommAccess { comm, instance }
    }
}

impl fmt::Display for CommAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.comm, self.instance)
    }
}

/// Declaration of a communicator: name, type, initial value, accessibility
/// period and (optionally) a logical reliability constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunicatorDecl {
    name: String,
    ty: ValueType,
    init: Value,
    period: Period,
    lrc: Option<Reliability>,
    sensor_input: bool,
}

impl CommunicatorDecl {
    /// Creates a declaration with initial value [`ValueType::zero`] and no
    /// LRC.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroPeriod`] if `period_ticks` is zero.
    pub fn new(
        name: impl Into<String>,
        ty: ValueType,
        period_ticks: u64,
    ) -> Result<Self, CoreError> {
        Ok(CommunicatorDecl {
            name: name.into(),
            ty,
            init: ty.zero(),
            period: Period::new(period_ticks)?,
            lrc: None,
            sensor_input: false,
        })
    }

    /// Sets the logical reliability constraint µ ∈ (0, 1].
    pub fn with_lrc(mut self, lrc: Reliability) -> Self {
        self.lrc = Some(lrc);
        self
    }

    /// Sets the initial value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DefaultMismatch`] if `init` does not inhabit the
    /// declared type.
    pub fn with_init(mut self, init: Value) -> Result<Self, CoreError> {
        if !init.has_type(self.ty) {
            return Err(CoreError::DefaultMismatch {
                task: self.name.clone(),
                detail: format!("initial value {init} does not have type {}", self.ty),
            });
        }
        self.init = init;
        Ok(self)
    }

    /// Marks this communicator as an *input communicator* updated by the
    /// environment through one or more sensors. Input communicators must
    /// not be written by any task.
    pub fn from_sensor(mut self) -> Self {
        self.sensor_input = true;
        self
    }

    /// The communicator's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The payload type.
    pub fn value_type(&self) -> ValueType {
        self.ty
    }

    /// The initial value.
    pub fn init(&self) -> Value {
        self.init
    }

    /// The accessibility period π.
    pub fn period(&self) -> Period {
        self.period
    }

    /// The logical reliability constraint, if declared.
    pub fn lrc(&self) -> Option<Reliability> {
        self.lrc
    }

    /// `true` if updated by the environment (sensors) rather than a task.
    pub fn is_sensor_input(&self) -> bool {
        self.sensor_input
    }
}

/// Declaration of a task: name, input/output accesses, input failure model
/// and default values.
///
/// Built fluently:
///
/// ```
/// use logrel_core::{FailureModel, TaskDecl, Value, CommunicatorId};
///
/// let c0 = CommunicatorId::new(0);
/// let c1 = CommunicatorId::new(1);
/// let t = TaskDecl::new("ctrl")
///     .reads(c0, 1)
///     .writes(c1, 3)
///     .model(FailureModel::Parallel)
///     .default_value(Value::Float(0.0));
/// assert_eq!(t.name(), "ctrl");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDecl {
    name: String,
    inputs: Vec<CommAccess>,
    outputs: Vec<CommAccess>,
    model: FailureModel,
    defaults: Vec<Value>,
}

impl TaskDecl {
    /// Creates a task declaration with no accesses and the series failure
    /// model.
    pub fn new(name: impl Into<String>) -> Self {
        TaskDecl {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            model: FailureModel::Series,
            defaults: Vec::new(),
        }
    }

    /// Adds an input access to instance `instance` of `comm`.
    pub fn reads(mut self, comm: CommunicatorId, instance: u64) -> Self {
        self.inputs.push(CommAccess::new(comm, instance));
        self
    }

    /// Adds an output access to instance `instance` of `comm`.
    pub fn writes(mut self, comm: CommunicatorId, instance: u64) -> Self {
        self.outputs.push(CommAccess::new(comm, instance));
        self
    }

    /// Sets the input failure model.
    pub fn model(mut self, model: FailureModel) -> Self {
        self.model = model;
        self
    }

    /// Appends one default value (aligned positionally with the inputs).
    pub fn default_value(mut self, value: Value) -> Self {
        self.defaults.push(value);
        self
    }

    /// Replaces the full default list.
    pub fn defaults(mut self, values: Vec<Value>) -> Self {
        self.defaults = values;
        self
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input access list.
    pub fn inputs(&self) -> &[CommAccess] {
        &self.inputs
    }

    /// The output access list.
    pub fn outputs(&self) -> &[CommAccess] {
        &self.outputs
    }

    /// The input failure model.
    pub fn failure_model(&self) -> FailureModel {
        self.model
    }

    /// The default value list (positional with [`TaskDecl::inputs`]).
    pub fn default_values(&self) -> &[Value] {
        &self.defaults
    }

    /// The set of communicators read by the task (`icset_t` in the paper),
    /// deduplicated.
    pub fn input_comm_set(&self) -> BTreeSet<CommunicatorId> {
        self.inputs.iter().map(|a| a.comm).collect()
    }

    /// The set of communicators written by the task, deduplicated.
    pub fn output_comm_set(&self) -> BTreeSet<CommunicatorId> {
        self.outputs.iter().map(|a| a.comm).collect()
    }
}

/// A validated, race-free specification `S = (tset, cset)`.
///
/// Obtain one through [`Specification::builder`]. All derived quantities
/// (read/write times, round period π_S, the writer of each communicator)
/// are precomputed at build time.
#[derive(Debug, Clone, PartialEq)]
pub struct Specification {
    comms: Vec<CommunicatorDecl>,
    tasks: Vec<TaskDecl>,
    round: Period,
    read_times: Vec<Tick>,
    write_times: Vec<Tick>,
    writer_of: Vec<Option<TaskId>>,
}

impl Specification {
    /// Creates a fresh [`SpecificationBuilder`].
    pub fn builder() -> SpecificationBuilder {
        SpecificationBuilder::default()
    }

    /// Number of communicators.
    pub fn communicator_count(&self) -> usize {
        self.comms.len()
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The declaration of communicator `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this specification's builder.
    pub fn communicator(&self, id: CommunicatorId) -> &CommunicatorDecl {
        &self.comms[id.index()]
    }

    /// The declaration of task `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this specification's builder.
    pub fn task(&self, id: TaskId) -> &TaskDecl {
        &self.tasks[id.index()]
    }

    /// Iterates over all communicator ids in declaration order.
    pub fn communicator_ids(&self) -> impl Iterator<Item = CommunicatorId> + '_ {
        (0..self.comms.len() as u32).map(CommunicatorId::new)
    }

    /// Iterates over all task ids in declaration order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId::new)
    }

    /// Looks up a communicator by name.
    pub fn find_communicator(&self, name: &str) -> Option<CommunicatorId> {
        self.comms
            .iter()
            .position(|c| c.name() == name)
            .map(|i| CommunicatorId::new(i as u32))
    }

    /// Looks up a task by name.
    pub fn find_task(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t.name() == name)
            .map(|i| TaskId::new(i as u32))
    }

    /// The round period π_S with which all tasks repeat: the least multiple
    /// of `lcm(cset)` covering every declared access instant.
    pub fn round_period(&self) -> Period {
        self.round
    }

    /// The read time of task `t`: the latest input access instant.
    pub fn read_time(&self, t: TaskId) -> Tick {
        self.read_times[t.index()]
    }

    /// The write time of task `t`: the earliest output access instant.
    pub fn write_time(&self, t: TaskId) -> Tick {
        self.write_times[t.index()]
    }

    /// The unique task writing communicator `c`, if any (`None` means the
    /// communicator is environment-fed or constant).
    pub fn writer(&self, c: CommunicatorId) -> Option<TaskId> {
        self.writer_of[c.index()]
    }

    /// `true` if communicator `c` is updated by the environment through
    /// sensors.
    pub fn is_sensor_input(&self, c: CommunicatorId) -> bool {
        self.comms[c.index()].is_sensor_input()
    }

    /// The instant of an access within a round: `period(comm) · instance`.
    pub fn access_instant(&self, access: CommAccess) -> Tick {
        // Validated at build time, so the multiplication cannot overflow.
        Tick::new(self.comms[access.comm.index()].period().as_u64() * access.instance)
    }

    /// The largest admissible instance number of communicator `c`
    /// (`π_S / π_c`).
    pub fn max_instance(&self, c: CommunicatorId) -> u64 {
        self.comms[c.index()].period().instances_per(self.round)
    }

    /// Iterates over the update instants of communicator `c` within one
    /// round, i.e. `0, π_c, 2·π_c, …` strictly below π_S.
    pub fn update_instants(&self, c: CommunicatorId) -> impl Iterator<Item = Tick> + '_ {
        let period = self.comms[c.index()].period().as_u64();
        (0..self.round.as_u64() / period).map(move |k| Tick::new(k * period))
    }

    /// The tasks whose write time falls at instant `at` within a round for
    /// communicator updates — i.e. all `(task, access)` pairs writing
    /// instance `at / π_c` of some communicator at `at`.
    pub fn writes_at(&self, at: Tick) -> Vec<(TaskId, CommAccess)> {
        let mut out = Vec::new();
        for t in self.task_ids() {
            for &a in self.tasks[t.index()].outputs() {
                if self.access_instant(a) == at {
                    out.push((t, a));
                }
            }
        }
        out
    }
}

/// Incremental builder for [`Specification`].
#[derive(Debug, Default, Clone)]
pub struct SpecificationBuilder {
    comms: Vec<CommunicatorDecl>,
    tasks: Vec<TaskDecl>,
}

impl SpecificationBuilder {
    /// Declares a communicator, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if the name is taken.
    pub fn communicator(&mut self, decl: CommunicatorDecl) -> Result<CommunicatorId, CoreError> {
        if self.comms.iter().any(|c| c.name() == decl.name()) {
            return Err(CoreError::DuplicateName {
                kind: "communicator",
                name: decl.name().to_owned(),
            });
        }
        let id = CommunicatorId::new(self.comms.len() as u32);
        self.comms.push(decl);
        Ok(id)
    }

    /// Declares a task, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if the name is taken, or
    /// [`CoreError::UnknownId`] if the task references an undeclared
    /// communicator.
    pub fn task(&mut self, decl: TaskDecl) -> Result<TaskId, CoreError> {
        if self.tasks.iter().any(|t| t.name() == decl.name()) {
            return Err(CoreError::DuplicateName {
                kind: "task",
                name: decl.name().to_owned(),
            });
        }
        for a in decl.inputs().iter().chain(decl.outputs()) {
            if a.comm.index() >= self.comms.len() {
                return Err(CoreError::UnknownId {
                    kind: "communicator",
                    id: a.comm.to_string(),
                });
            }
        }
        let id = TaskId::new(self.tasks.len() as u32);
        self.tasks.push(decl);
        Ok(id)
    }

    /// Validates all restrictions and produces the [`Specification`].
    ///
    /// # Errors
    ///
    /// Any violation of the well-formedness restrictions listed in the
    /// [module documentation](self) yields the corresponding
    /// [`CoreError`] variant.
    pub fn build(self) -> Result<Specification, CoreError> {
        let SpecificationBuilder { comms, tasks } = self;
        if tasks.is_empty() {
            return Err(CoreError::EmptySpecification);
        }

        // Restriction (1) + LET computation + restriction (2).
        let mut read_times = Vec::with_capacity(tasks.len());
        let mut write_times = Vec::with_capacity(tasks.len());
        let mut max_access = Tick::ZERO;
        for task in &tasks {
            if task.inputs().is_empty() {
                return Err(CoreError::TaskWithoutAccess {
                    task: task.name().to_owned(),
                    missing_inputs: true,
                });
            }
            if task.outputs().is_empty() {
                return Err(CoreError::TaskWithoutAccess {
                    task: task.name().to_owned(),
                    missing_inputs: false,
                });
            }
            let mut read = Tick::ZERO;
            for &a in task.inputs() {
                let at = Tick::of_instance(comms[a.comm.index()].period(), a.instance)?;
                read = read.max(at);
                max_access = max_access.max(at);
            }
            let mut write: Option<Tick> = None;
            for &a in task.outputs() {
                let at = Tick::of_instance(comms[a.comm.index()].period(), a.instance)?;
                write = Some(write.map_or(at, |w| w.min(at)));
                max_access = max_access.max(at);
            }
            let write = write.expect("outputs nonempty");
            if read >= write {
                return Err(CoreError::ReadNotBeforeWrite {
                    task: task.name().to_owned(),
                    read: read.as_u64(),
                    write: write.as_u64(),
                });
            }
            read_times.push(read);
            write_times.push(write);
        }

        // Round period π_S = lcm(cset) · ⌈max access instant / lcm⌉.
        let lcm = lcm_all(comms.iter().map(|c| c.period()))?;
        let multiples = max_access.as_u64().div_ceil(lcm.as_u64()).max(1);
        let round = Period::new(lcm.as_u64().checked_mul(multiples).ok_or(
            CoreError::TimeOverflow {
                context: "computing round period".to_owned(),
            },
        )?)?;

        // Instance range checks.
        for task in &tasks {
            for &a in task.inputs().iter().chain(task.outputs()) {
                let max = comms[a.comm.index()].period().instances_per(round);
                if a.instance > max {
                    return Err(CoreError::InstanceOutOfRange {
                        task: task.name().to_owned(),
                        communicator: comms[a.comm.index()].name().to_owned(),
                        instance: a.instance,
                        max,
                    });
                }
            }
        }

        // Restrictions (3) and (4), plus environment-communicator checks.
        let mut writer_of: Vec<Option<TaskId>> = vec![None; comms.len()];
        for (ti, task) in tasks.iter().enumerate() {
            let tid = TaskId::new(ti as u32);
            let mut written_instances: BTreeSet<CommAccess> = BTreeSet::new();
            for &a in task.outputs() {
                let comm = &comms[a.comm.index()];
                if comm.is_sensor_input() {
                    return Err(CoreError::WriteToEnvironment {
                        task: task.name().to_owned(),
                        communicator: comm.name().to_owned(),
                    });
                }
                if !written_instances.insert(a) {
                    return Err(CoreError::DuplicateInstanceWrite {
                        task: task.name().to_owned(),
                        communicator: comm.name().to_owned(),
                        instance: a.instance,
                    });
                }
                match writer_of[a.comm.index()] {
                    None => writer_of[a.comm.index()] = Some(tid),
                    Some(other) if other == tid => {}
                    Some(other) => {
                        return Err(CoreError::MultipleWriters {
                            communicator: comm.name().to_owned(),
                            first: tasks[other.index()].name().to_owned(),
                            second: task.name().to_owned(),
                        });
                    }
                }
            }
        }

        // Default list validation.
        for task in &tasks {
            let needs_defaults = !matches!(task.failure_model(), FailureModel::Series);
            if needs_defaults && task.default_values().len() != task.inputs().len() {
                return Err(CoreError::DefaultMismatch {
                    task: task.name().to_owned(),
                    detail: format!(
                        "failure model {} requires {} defaults, found {}",
                        task.failure_model(),
                        task.inputs().len(),
                        task.default_values().len()
                    ),
                });
            }
            for (i, v) in task.default_values().iter().enumerate() {
                if i >= task.inputs().len() {
                    return Err(CoreError::DefaultMismatch {
                        task: task.name().to_owned(),
                        detail: format!(
                            "{} defaults for {} inputs",
                            task.default_values().len(),
                            task.inputs().len()
                        ),
                    });
                }
                let comm = &comms[task.inputs()[i].comm.index()];
                if !v.is_reliable() || !v.has_type(comm.value_type()) {
                    return Err(CoreError::DefaultMismatch {
                        task: task.name().to_owned(),
                        detail: format!(
                            "default {v} for input `{}` must be a reliable {}",
                            comm.name(),
                            comm.value_type()
                        ),
                    });
                }
            }
        }

        Ok(Specification {
            comms,
            tasks,
            round,
            read_times,
            write_times,
            writer_of,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn comm(name: &str, period: u64) -> CommunicatorDecl {
        CommunicatorDecl::new(name, ValueType::Float, period).unwrap()
    }

    /// Builds the paper's Fig. 1 specification.
    fn fig1() -> (Specification, TaskId) {
        let mut b = Specification::builder();
        let c1 = b.communicator(comm("c1", 2)).unwrap();
        let c2 = b.communicator(comm("c2", 3)).unwrap();
        let c3 = b.communicator(comm("c3", 4)).unwrap();
        let c4 = b.communicator(comm("c4", 2)).unwrap();
        let t = b
            .task(
                TaskDecl::new("t")
                    .reads(c1, 1)
                    .reads(c2, 1)
                    .writes(c3, 2)
                    .writes(c4, 5),
            )
            .unwrap();
        (b.build().unwrap(), t)
    }

    #[test]
    fn fig1_let_is_three_to_eight() {
        let (spec, t) = fig1();
        assert_eq!(spec.read_time(t), Tick::new(3));
        assert_eq!(spec.write_time(t), Tick::new(8));
        assert_eq!(spec.round_period().as_u64(), 12);
    }

    #[test]
    fn fig1_lookup_and_writers() {
        let (spec, t) = fig1();
        let c3 = spec.find_communicator("c3").unwrap();
        let c1 = spec.find_communicator("c1").unwrap();
        assert_eq!(spec.writer(c3), Some(t));
        assert_eq!(spec.writer(c1), None);
        assert_eq!(spec.find_task("t"), Some(t));
        assert_eq!(spec.find_task("nope"), None);
        assert_eq!(spec.max_instance(c1), 6);
        assert_eq!(spec.max_instance(c3), 3);
    }

    #[test]
    fn update_instants_enumerate_one_round() {
        let (spec, _) = fig1();
        let c2 = spec.find_communicator("c2").unwrap();
        let instants: Vec<u64> = spec.update_instants(c2).map(|t| t.as_u64()).collect();
        assert_eq!(instants, vec![0, 3, 6, 9]);
    }

    #[test]
    fn writes_at_finds_the_write_instant() {
        let (spec, t) = fig1();
        let c3 = spec.find_communicator("c3").unwrap();
        let at8 = spec.writes_at(Tick::new(8));
        assert!(at8.contains(&(t, CommAccess::new(c3, 2))));
        assert!(spec.writes_at(Tick::new(7)).is_empty());
    }

    #[test]
    fn empty_spec_rejected() {
        let mut b = Specification::builder();
        b.communicator(comm("c", 2)).unwrap();
        assert_eq!(b.build().unwrap_err(), CoreError::EmptySpecification);
    }

    #[test]
    fn restriction_one_missing_inputs() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        b.task(TaskDecl::new("t").writes(c, 1)).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::TaskWithoutAccess {
                missing_inputs: true,
                ..
            }
        ));
    }

    #[test]
    fn restriction_one_missing_outputs() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        b.task(TaskDecl::new("t").reads(c, 0)).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::TaskWithoutAccess {
                missing_inputs: false,
                ..
            }
        ));
    }

    #[test]
    fn restriction_two_read_before_write() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        b.task(TaskDecl::new("t").reads(c, 1).writes(d, 1)).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::ReadNotBeforeWrite { read: 2, write: 2, .. }
        ));
    }

    #[test]
    fn restriction_three_single_writer() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        b.task(TaskDecl::new("a").reads(c, 0).writes(d, 1)).unwrap();
        b.task(TaskDecl::new("b").reads(c, 0).writes(d, 2)).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::MultipleWriters { .. }
        ));
    }

    #[test]
    fn restriction_four_duplicate_instance_write() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        b.task(TaskDecl::new("a").reads(c, 0).writes(d, 1).writes(d, 1))
            .unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::DuplicateInstanceWrite { instance: 1, .. }
        ));
    }

    #[test]
    fn multiple_distinct_instance_writes_are_allowed() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        b.task(TaskDecl::new("a").reads(c, 0).writes(d, 1).writes(d, 2))
            .unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn instance_out_of_range_rejected() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        // round will be lcm=2 scaled to max access 20 -> 20; instance 10 of c ok,
        // instance 11 (instant 22) exceeds.
        b.task(TaskDecl::new("a").reads(c, 0).writes(d, 10)).unwrap();
        assert!(b.clone().build().is_ok());
        let mut b2 = b;
        b2.task(TaskDecl::new("b").reads(c, 11).writes(d, 9)).unwrap();
        // read 22 >= write 18 triggers ReadNotBeforeWrite first, so use a
        // fresh builder exercising only the range check.
        let mut b3 = Specification::builder();
        let c = b3.communicator(comm("c", 3)).unwrap();
        let d = b3.communicator(comm("d", 2)).unwrap();
        // accesses: read c@0=0, write d@1=2 -> round lcm(3,2)=6; instance 1 of c fine.
        // Add a second task reading c instance 2 (instant 6 = round, allowed: max=2).
        let e = b3.communicator(comm("e", 6)).unwrap();
        b3.task(TaskDecl::new("a").reads(c, 0).writes(d, 1)).unwrap();
        b3.task(TaskDecl::new("b").reads(c, 1).writes(e, 1)).unwrap();
        assert!(b3.build().is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = Specification::builder();
        b.communicator(comm("c", 2)).unwrap();
        assert!(matches!(
            b.communicator(comm("c", 3)).unwrap_err(),
            CoreError::DuplicateName { kind: "communicator", .. }
        ));
        let c = CommunicatorId::new(0);
        b.task(TaskDecl::new("t").reads(c, 0).writes(c, 1)).unwrap();
        assert!(matches!(
            b.task(TaskDecl::new("t")).unwrap_err(),
            CoreError::DuplicateName { kind: "task", .. }
        ));
    }

    #[test]
    fn unknown_communicator_in_task_rejected() {
        let mut b = Specification::builder();
        let bogus = CommunicatorId::new(9);
        assert!(matches!(
            b.task(TaskDecl::new("t").reads(bogus, 0)).unwrap_err(),
            CoreError::UnknownId { .. }
        ));
    }

    #[test]
    fn sensor_input_cannot_be_written() {
        let mut b = Specification::builder();
        let s = b
            .communicator(comm("s", 2).from_sensor())
            .unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        b.task(TaskDecl::new("t").reads(d, 0).writes(s, 1)).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::WriteToEnvironment { .. }
        ));
    }

    #[test]
    fn parallel_model_requires_defaults() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        b.task(
            TaskDecl::new("t")
                .reads(c, 0)
                .writes(d, 1)
                .model(FailureModel::Parallel),
        )
        .unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::DefaultMismatch { .. }
        ));
    }

    #[test]
    fn default_type_must_match() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        b.task(
            TaskDecl::new("t")
                .reads(c, 0)
                .writes(d, 1)
                .model(FailureModel::Independent)
                .default_value(Value::Bool(true)),
        )
        .unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            CoreError::DefaultMismatch { .. }
        ));
    }

    #[test]
    fn valid_parallel_task_with_defaults() {
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 2)).unwrap();
        b.task(
            TaskDecl::new("t")
                .reads(c, 0)
                .writes(d, 1)
                .model(FailureModel::Parallel)
                .default_value(Value::Float(0.5)),
        )
        .unwrap();
        let spec = b.build().unwrap();
        let t = spec.find_task("t").unwrap();
        assert_eq!(spec.task(t).failure_model(), FailureModel::Parallel);
        assert_eq!(spec.task(t).default_values(), &[Value::Float(0.5)]);
    }

    #[test]
    fn lrc_and_init_roundtrip() {
        let decl = comm("c", 10)
            .with_lrc(Reliability::new(0.99).unwrap())
            .with_init(Value::Float(7.0))
            .unwrap();
        assert_eq!(decl.lrc().unwrap().get(), 0.99);
        assert_eq!(decl.init(), Value::Float(7.0));
        assert!(comm("c", 10).with_init(Value::Bool(true)).is_err());
    }

    #[test]
    fn icset_and_ocset_deduplicate() {
        let c0 = CommunicatorId::new(0);
        let c1 = CommunicatorId::new(1);
        let t = TaskDecl::new("t").reads(c0, 0).reads(c0, 1).writes(c1, 1);
        assert_eq!(t.input_comm_set().len(), 1);
        assert_eq!(t.output_comm_set().len(), 1);
    }

    #[test]
    fn failure_model_numbers() {
        assert_eq!(FailureModel::Series.number(), 1);
        assert_eq!(FailureModel::Parallel.number(), 2);
        assert_eq!(FailureModel::Independent.number(), 3);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Random layered pipelines that are valid by construction.
        fn arb_spec() -> impl Strategy<Value = Specification> {
            (
                proptest::collection::vec(1u64..20, 2..6), // comm periods
                1u64..8,                                    // write gap
            )
                .prop_map(|(periods, gap)| {
                    let mut b = Specification::builder();
                    let comms: Vec<CommunicatorId> = periods
                        .iter()
                        .enumerate()
                        .map(|(i, &p)| {
                            b.communicator(comm(&format!("c{i}"), p)).unwrap()
                        })
                        .collect();
                    for w in comms.windows(2) {
                        let (from, to) = (w[0], w[1]);
                        // read instance 0 (instant 0), write instance `gap`
                        // clamped later by validation -- choose instance 1..
                        let name = format!("t{}_{}", from.index(), to.index());
                        b.task(
                            TaskDecl::new(name)
                                .reads(from, 0)
                                .writes(to, gap),
                        )
                        .unwrap();
                    }
                    b.build().unwrap()
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn valid_specs_satisfy_global_invariants(spec in arb_spec()) {
                let round = spec.round_period().as_u64();
                for c in spec.communicator_ids() {
                    // The round is a common multiple of every period.
                    prop_assert_eq!(round % spec.communicator(c).period().as_u64(), 0);
                }
                for t in spec.task_ids() {
                    prop_assert!(spec.read_time(t) < spec.write_time(t));
                    prop_assert!(spec.write_time(t).as_u64() <= round);
                    for &a in spec.task(t).inputs().iter().chain(spec.task(t).outputs()) {
                        prop_assert!(a.instance <= spec.max_instance(a.comm));
                    }
                }
                // Single-writer: every communicator's writer is consistent
                // with the task output lists.
                for c in spec.communicator_ids() {
                    let writers: Vec<_> = spec
                        .task_ids()
                        .filter(|&t| spec.task(t).output_comm_set().contains(&c))
                        .collect();
                    prop_assert!(writers.len() <= 1);
                    prop_assert_eq!(spec.writer(c), writers.first().copied());
                }
            }

            #[test]
            fn update_instants_cover_exactly_one_round(spec in arb_spec()) {
                let round = spec.round_period().as_u64();
                for c in spec.communicator_ids() {
                    let period = spec.communicator(c).period().as_u64();
                    let instants: Vec<u64> =
                        spec.update_instants(c).map(|t| t.as_u64()).collect();
                    prop_assert_eq!(instants.len() as u64, round / period);
                    for (k, at) in instants.iter().enumerate() {
                        prop_assert_eq!(*at, k as u64 * period);
                    }
                }
            }
        }
    }

    #[test]
    fn round_period_covers_latest_access() {
        // lcm(2,3)=6 but task writes at instant 10 -> round = 12.
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        let d = b.communicator(comm("d", 3)).unwrap();
        b.task(TaskDecl::new("t").reads(d, 1).writes(c, 5)).unwrap();
        let spec = b.build().unwrap();
        assert_eq!(spec.round_period().as_u64(), 12);
    }
}
