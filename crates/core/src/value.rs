//! Communicator values, including the distinguished unreliable symbol ⊥.
//!
//! The paper extends every communicator data type with "a special symbol ⊥
//! to represent unreliable communicator values; a non-⊥ value indicates that
//! the communicator has a reliable value". [`Value::Unreliable`] is that
//! symbol; it inhabits every [`ValueType`].

use std::fmt;

/// The type of a communicator's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Boolean values.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit IEEE floating point.
    Float,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Bool => write!(f, "bool"),
            ValueType::Int => write!(f, "int"),
            ValueType::Float => write!(f, "float"),
        }
    }
}

impl ValueType {
    /// A canonical zero-like default of this type (used when a declaration
    /// omits an initial value).
    pub fn zero(self) -> Value {
        match self {
            ValueType::Bool => Value::Bool(false),
            ValueType::Int => Value::Int(0),
            ValueType::Float => Value::Float(0.0),
        }
    }
}

/// A communicator value: either the unreliable symbol ⊥ or a typed payload.
///
/// # Example
///
/// ```
/// use logrel_core::{Value, ValueType};
///
/// let v = Value::Float(1.5);
/// assert!(v.is_reliable());
/// assert!(v.has_type(ValueType::Float));
/// // ⊥ inhabits every type:
/// assert!(Value::Unreliable.has_type(ValueType::Bool));
/// assert!(!Value::Unreliable.is_reliable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// The unreliable symbol ⊥.
    Unreliable,
    /// A reliable boolean.
    Bool(bool),
    /// A reliable integer.
    Int(i64),
    /// A reliable float.
    Float(f64),
}

impl Value {
    /// Returns `true` for any non-⊥ value.
    pub fn is_reliable(&self) -> bool {
        !matches!(self, Value::Unreliable)
    }

    /// Returns `true` if this value inhabits `ty` (⊥ inhabits every type).
    pub fn has_type(&self, ty: ValueType) -> bool {
        matches!(
            (self, ty),
            (Value::Unreliable, _)
                | (Value::Bool(_), ValueType::Bool)
                | (Value::Int(_), ValueType::Int)
                | (Value::Float(_), ValueType::Float)
        )
    }

    /// Extracts a float payload.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Extracts an integer payload.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// Extracts a boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(x) => Some(*x),
            _ => None,
        }
    }

    /// The reliability abstraction of §2: maps a value to `1` if reliable,
    /// `0` if ⊥.
    pub fn abstraction(&self) -> u8 {
        if self.is_reliable() {
            1
        } else {
            0
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unreliable => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_inhabits_every_type() {
        for ty in [ValueType::Bool, ValueType::Int, ValueType::Float] {
            assert!(Value::Unreliable.has_type(ty));
        }
    }

    #[test]
    fn typed_values_match_only_their_type() {
        assert!(Value::Bool(true).has_type(ValueType::Bool));
        assert!(!Value::Bool(true).has_type(ValueType::Int));
        assert!(Value::Int(3).has_type(ValueType::Int));
        assert!(!Value::Int(3).has_type(ValueType::Float));
        assert!(Value::Float(0.5).has_type(ValueType::Float));
        assert!(!Value::Float(0.5).has_type(ValueType::Bool));
    }

    #[test]
    fn abstraction_matches_reliability() {
        assert_eq!(Value::Unreliable.abstraction(), 0);
        assert_eq!(Value::Int(0).abstraction(), 1);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Unreliable.as_float(), None);
        assert_eq!(Value::Float(1.0).as_int(), None);
    }

    #[test]
    fn zero_defaults_have_right_type() {
        for ty in [ValueType::Bool, ValueType::Int, ValueType::Float] {
            assert!(ty.zero().has_type(ty));
            assert!(ty.zero().is_reliable());
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Value::Unreliable.to_string(), "⊥");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(ValueType::Float.to_string(), "float");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
    }
}
