//! Architectures: fail-silent hosts, sensors and execution metrics.
//!
//! An architecture `A = (hset, sset, C_S)` (§2) consists of hosts connected
//! over a reliable broadcast network, sensors, and architectural constraints
//! for a given specification: per-host/per-sensor reliabilities (`hrel`,
//! `srel`) and per-task/per-host worst-case execution and transmission
//! times (WCET, WCTT). Hosts are fail-silent: a failed host produces no
//! (garbage) output.

use crate::error::CoreError;
use crate::ids::{HostId, SensorId, TaskId};
use crate::prob::Reliability;
use std::collections::BTreeMap;

/// Declaration of a fail-silent host.
#[derive(Debug, Clone, PartialEq)]
pub struct HostDecl {
    name: String,
    reliability: Reliability,
}

impl HostDecl {
    /// Creates a host declaration.
    pub fn new(name: impl Into<String>, reliability: Reliability) -> Self {
        HostDecl {
            name: name.into(),
            reliability,
        }
    }

    /// The host's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The host's per-invocation reliability `hrel(h)`.
    pub fn reliability(&self) -> Reliability {
        self.reliability
    }
}

/// Declaration of a sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorDecl {
    name: String,
    reliability: Reliability,
}

impl SensorDecl {
    /// Creates a sensor declaration.
    pub fn new(name: impl Into<String>, reliability: Reliability) -> Self {
        SensorDecl {
            name: name.into(),
            reliability,
        }
    }

    /// The sensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sensor's per-reading reliability `srel(s)`.
    pub fn reliability(&self) -> Reliability {
        self.reliability
    }
}

/// A validated architecture.
///
/// # Example
///
/// ```
/// use logrel_core::{Architecture, HostDecl, Reliability, SensorDecl};
///
/// # fn main() -> Result<(), logrel_core::CoreError> {
/// let r = Reliability::new(0.999)?;
/// let mut b = Architecture::builder();
/// let h1 = b.host(HostDecl::new("h1", r))?;
/// let s1 = b.sensor(SensorDecl::new("s1", r))?;
/// let arch = b.build();
/// assert_eq!(arch.host(h1).name(), "h1");
/// assert_eq!(arch.sensor(s1).reliability(), r);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    hosts: Vec<HostDecl>,
    sensors: Vec<SensorDecl>,
    wcet: BTreeMap<(TaskId, HostId), u64>,
    wctt: BTreeMap<(TaskId, HostId), u64>,
    broadcast_reliability: Reliability,
}

impl Architecture {
    /// Creates a fresh [`ArchitectureBuilder`].
    pub fn builder() -> ArchitectureBuilder {
        ArchitectureBuilder::default()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// The declaration of host `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this architecture's builder.
    pub fn host(&self, id: HostId) -> &HostDecl {
        &self.hosts[id.index()]
    }

    /// The declaration of sensor `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this architecture's builder.
    pub fn sensor(&self, id: SensorId) -> &SensorDecl {
        &self.sensors[id.index()]
    }

    /// Iterates over all host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId::new)
    }

    /// Iterates over all sensor ids.
    pub fn sensor_ids(&self) -> impl Iterator<Item = SensorId> + '_ {
        (0..self.sensors.len() as u32).map(SensorId::new)
    }

    /// Looks up a host by name.
    pub fn find_host(&self, name: &str) -> Option<HostId> {
        self.hosts
            .iter()
            .position(|h| h.name() == name)
            .map(|i| HostId::new(i as u32))
    }

    /// Looks up a sensor by name.
    pub fn find_sensor(&self, name: &str) -> Option<SensorId> {
        self.sensors
            .iter()
            .position(|s| s.name() == name)
            .map(|i| SensorId::new(i as u32))
    }

    /// The worst-case execution time of `task` on `host`, if declared.
    pub fn wcet(&self, task: TaskId, host: HostId) -> Option<u64> {
        self.wcet.get(&(task, host)).copied()
    }

    /// The worst-case (broadcast) transmission time of `task`'s outputs
    /// from `host`, if declared.
    pub fn wctt(&self, task: TaskId, host: HostId) -> Option<u64> {
        self.wctt.get(&(task, host)).copied()
    }

    /// The reliability of one atomic broadcast. [`Reliability::ONE`] models
    /// the paper's perfectly reliable broadcast network; lower values model
    /// an atomic-but-lossy broadcast (§2: "non-reliability in broadcast
    /// networks can be accounted for … as long as the faulty behavior is
    /// atomic").
    pub fn broadcast_reliability(&self) -> Reliability {
        self.broadcast_reliability
    }

    /// The most reliable host, if any host is declared.
    pub fn most_reliable_host(&self) -> Option<HostId> {
        self.host_ids().max_by(|&a, &b| {
            self.hosts[a.index()]
                .reliability()
                .get()
                .total_cmp(&self.hosts[b.index()].reliability().get())
        })
    }
}

/// Incremental builder for [`Architecture`].
#[derive(Debug, Clone)]
pub struct ArchitectureBuilder {
    hosts: Vec<HostDecl>,
    sensors: Vec<SensorDecl>,
    wcet: BTreeMap<(TaskId, HostId), u64>,
    wctt: BTreeMap<(TaskId, HostId), u64>,
    broadcast_reliability: Reliability,
}

impl Default for ArchitectureBuilder {
    fn default() -> Self {
        ArchitectureBuilder {
            hosts: Vec::new(),
            sensors: Vec::new(),
            wcet: BTreeMap::new(),
            wctt: BTreeMap::new(),
            broadcast_reliability: Reliability::ONE,
        }
    }
}

impl ArchitectureBuilder {
    /// Declares a host, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if the name is taken.
    pub fn host(&mut self, decl: HostDecl) -> Result<HostId, CoreError> {
        if self.hosts.iter().any(|h| h.name() == decl.name()) {
            return Err(CoreError::DuplicateName {
                kind: "host",
                name: decl.name().to_owned(),
            });
        }
        let id = HostId::new(self.hosts.len() as u32);
        self.hosts.push(decl);
        Ok(id)
    }

    /// Declares a sensor, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateName`] if the name is taken.
    pub fn sensor(&mut self, decl: SensorDecl) -> Result<SensorId, CoreError> {
        if self.sensors.iter().any(|s| s.name() == decl.name()) {
            return Err(CoreError::DuplicateName {
                kind: "sensor",
                name: decl.name().to_owned(),
            });
        }
        let id = SensorId::new(self.sensors.len() as u32);
        self.sensors.push(decl);
        Ok(id)
    }

    /// Declares the WCET of `task` on `host` (in ticks, must be positive).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroPeriod`] if `ticks` is zero (execution
    /// takes at least one tick) or [`CoreError::UnknownId`] if the host is
    /// undeclared.
    pub fn wcet(&mut self, task: TaskId, host: HostId, ticks: u64) -> Result<&mut Self, CoreError> {
        self.check_host(host)?;
        if ticks == 0 {
            return Err(CoreError::ZeroPeriod);
        }
        self.wcet.insert((task, host), ticks);
        Ok(self)
    }

    /// Declares the WCTT of `task`'s broadcast from `host` (in ticks; zero
    /// is allowed for negligible transmissions).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownId`] if the host is undeclared.
    pub fn wctt(&mut self, task: TaskId, host: HostId, ticks: u64) -> Result<&mut Self, CoreError> {
        self.check_host(host)?;
        self.wctt.insert((task, host), ticks);
        Ok(self)
    }

    /// Sets the same WCET for `task` on every declared host.
    pub fn wcet_all(&mut self, task: TaskId, ticks: u64) -> Result<&mut Self, CoreError> {
        for h in 0..self.hosts.len() as u32 {
            self.wcet(task, HostId::new(h), ticks)?;
        }
        Ok(self)
    }

    /// Sets the same WCTT for `task` on every declared host.
    pub fn wctt_all(&mut self, task: TaskId, ticks: u64) -> Result<&mut Self, CoreError> {
        for h in 0..self.hosts.len() as u32 {
            self.wctt(task, HostId::new(h), ticks)?;
        }
        Ok(self)
    }

    /// Sets the atomic-broadcast reliability (defaults to
    /// [`Reliability::ONE`]).
    pub fn broadcast_reliability(&mut self, r: Reliability) -> &mut Self {
        self.broadcast_reliability = r;
        self
    }

    /// Finalises the architecture.
    pub fn build(self) -> Architecture {
        Architecture {
            hosts: self.hosts,
            sensors: self.sensors,
            wcet: self.wcet,
            wctt: self.wctt,
            broadcast_reliability: self.broadcast_reliability,
        }
    }

    fn check_host(&self, host: HostId) -> Result<(), CoreError> {
        if host.index() >= self.hosts.len() {
            return Err(CoreError::UnknownId {
                kind: "host",
                id: host.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = Architecture::builder();
        let h1 = b.host(HostDecl::new("h1", r(0.9))).unwrap();
        let h2 = b.host(HostDecl::new("h2", r(0.8))).unwrap();
        assert_eq!(h1.index(), 0);
        assert_eq!(h2.index(), 1);
        let arch = b.build();
        assert_eq!(arch.host_count(), 2);
        assert_eq!(arch.find_host("h2"), Some(h2));
        assert_eq!(arch.find_host("h3"), None);
    }

    #[test]
    fn duplicate_host_name_rejected() {
        let mut b = Architecture::builder();
        b.host(HostDecl::new("h", r(0.9))).unwrap();
        assert!(matches!(
            b.host(HostDecl::new("h", r(0.8))).unwrap_err(),
            CoreError::DuplicateName { kind: "host", .. }
        ));
    }

    #[test]
    fn duplicate_sensor_name_rejected() {
        let mut b = Architecture::builder();
        b.sensor(SensorDecl::new("s", r(0.9))).unwrap();
        assert!(b.sensor(SensorDecl::new("s", r(0.9))).is_err());
    }

    #[test]
    fn metrics_roundtrip() {
        let mut b = Architecture::builder();
        let h = b.host(HostDecl::new("h", r(0.9))).unwrap();
        let t = TaskId::new(0);
        b.wcet(t, h, 5).unwrap();
        b.wctt(t, h, 2).unwrap();
        let arch = b.build();
        assert_eq!(arch.wcet(t, h), Some(5));
        assert_eq!(arch.wctt(t, h), Some(2));
        assert_eq!(arch.wcet(TaskId::new(1), h), None);
    }

    #[test]
    fn zero_wcet_rejected_but_zero_wctt_allowed() {
        let mut b = Architecture::builder();
        let h = b.host(HostDecl::new("h", r(0.9))).unwrap();
        let t = TaskId::new(0);
        assert!(b.wcet(t, h, 0).is_err());
        assert!(b.wctt(t, h, 0).is_ok());
    }

    #[test]
    fn metric_for_unknown_host_rejected() {
        let mut b = Architecture::builder();
        assert!(matches!(
            b.wcet(TaskId::new(0), HostId::new(3), 1).unwrap_err(),
            CoreError::UnknownId { kind: "host", .. }
        ));
    }

    #[test]
    fn wcet_all_covers_every_host() {
        let mut b = Architecture::builder();
        let h1 = b.host(HostDecl::new("h1", r(0.9))).unwrap();
        let h2 = b.host(HostDecl::new("h2", r(0.9))).unwrap();
        let t = TaskId::new(0);
        b.wcet_all(t, 7).unwrap();
        b.wctt_all(t, 3).unwrap();
        let arch = b.build();
        assert_eq!(arch.wcet(t, h1), Some(7));
        assert_eq!(arch.wcet(t, h2), Some(7));
        assert_eq!(arch.wctt(t, h2), Some(3));
    }

    #[test]
    fn broadcast_reliability_defaults_to_one() {
        let arch = Architecture::builder().build();
        assert_eq!(arch.broadcast_reliability(), Reliability::ONE);
    }

    #[test]
    fn most_reliable_host() {
        let mut b = Architecture::builder();
        b.host(HostDecl::new("h1", r(0.95))).unwrap();
        let h2 = b.host(HostDecl::new("h2", r(0.99))).unwrap();
        b.host(HostDecl::new("h3", r(0.85))).unwrap();
        assert_eq!(b.build().most_reliable_host(), Some(h2));
        assert_eq!(Architecture::builder().build().most_reliable_host(), None);
    }
}
