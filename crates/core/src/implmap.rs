//! Implementations: replication mappings from tasks to host sets.
//!
//! An implementation `I : tset → 2^hset \ ∅` (§2) maps each task to a
//! non-empty set of hosts; each host executes a local *task replication*
//! and broadcasts its outputs so every host can vote on the value written
//! to its local communicator replication. We additionally record which
//! sensors feed each input communicator (the paper keeps this binding
//! implicit; sensor replication in §4's scenario 2 makes it explicit).
//!
//! [`TimeDependentImplementation`] models the paper's "general
//! implementation" discussion: a periodic sequence of mappings applied
//! round-robin over task iterations.

use crate::arch::Architecture;
use crate::error::CoreError;
use crate::ids::{CommunicatorId, HostId, SensorId, TaskId};
use crate::spec::Specification;
use std::collections::{BTreeMap, BTreeSet};

/// A static replication mapping, validated against a specification and an
/// architecture.
///
/// # Example
///
/// ```
/// use logrel_core::prelude::*;
///
/// # fn main() -> Result<(), CoreError> {
/// let mut sb = Specification::builder();
/// let s = sb.communicator(
///     CommunicatorDecl::new("s", ValueType::Float, 10)?.from_sensor(),
/// )?;
/// let u = sb.communicator(CommunicatorDecl::new("u", ValueType::Float, 10)?)?;
/// let t = sb.task(TaskDecl::new("ctrl").reads(s, 0).writes(u, 1))?;
/// let spec = sb.build()?;
///
/// let r = Reliability::new(0.999)?;
/// let mut ab = Architecture::builder();
/// let h1 = ab.host(HostDecl::new("h1", r))?;
/// let h2 = ab.host(HostDecl::new("h2", r))?;
/// let sen = ab.sensor(SensorDecl::new("level", r))?;
/// ab.wcet_all(t, 2)?;
/// ab.wctt_all(t, 1)?;
/// let arch = ab.build();
///
/// let imp = Implementation::builder()
///     .assign(t, [h1, h2])
///     .bind_sensor(s, sen)
///     .build(&spec, &arch)?;
/// assert_eq!(imp.hosts_of(t).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Implementation {
    assignment: Vec<BTreeSet<HostId>>,
    sensor_bindings: BTreeMap<CommunicatorId, BTreeSet<SensorId>>,
}

impl Implementation {
    /// Creates a fresh [`ImplementationBuilder`].
    pub fn builder() -> ImplementationBuilder {
        ImplementationBuilder::default()
    }

    /// Convenience constructor: maps every task to the single host `host`
    /// and binds every input communicator to `sensor`.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of
    /// [`ImplementationBuilder::build`].
    pub fn uniform(
        spec: &Specification,
        arch: &Architecture,
        host: HostId,
        sensor: SensorId,
    ) -> Result<Self, CoreError> {
        let mut b = Implementation::builder();
        for t in spec.task_ids() {
            b = b.assign(t, [host]);
        }
        for c in spec.communicator_ids() {
            if spec.is_sensor_input(c) {
                b = b.bind_sensor(c, sensor);
            }
        }
        b.build(spec, arch)
    }

    /// The host set executing replications of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to the specification this
    /// implementation was validated against.
    pub fn hosts_of(&self, task: TaskId) -> &BTreeSet<HostId> {
        &self.assignment[task.index()]
    }

    /// The sensors bound to input communicator `comm` (empty for
    /// task-written communicators).
    pub fn sensors_of(&self, comm: CommunicatorId) -> &BTreeSet<SensorId> {
        static EMPTY: BTreeSet<SensorId> = BTreeSet::new();
        self.sensor_bindings.get(&comm).unwrap_or(&EMPTY)
    }

    /// Total number of task replications (the paper's replication cost).
    pub fn replication_count(&self) -> usize {
        self.assignment.iter().map(BTreeSet::len).sum()
    }

    /// All `(task, host)` replication pairs.
    pub fn replications(&self) -> impl Iterator<Item = (TaskId, HostId)> + '_ {
        self.assignment.iter().enumerate().flat_map(|(t, hs)| {
            hs.iter()
                .map(move |&h| (TaskId::new(t as u32), h))
        })
    }

    /// Returns a copy with `task` remapped to `hosts` (used by the
    /// replication-synthesis search). The copy is *not* re-validated.
    pub fn with_assignment(
        &self,
        task: TaskId,
        hosts: impl IntoIterator<Item = HostId>,
    ) -> Implementation {
        let mut out = self.clone();
        out.assignment[task.index()] = hosts.into_iter().collect();
        out
    }
}

/// Incremental builder for [`Implementation`].
#[derive(Debug, Default, Clone)]
pub struct ImplementationBuilder {
    assignment: BTreeMap<TaskId, BTreeSet<HostId>>,
    sensor_bindings: BTreeMap<CommunicatorId, BTreeSet<SensorId>>,
}

impl ImplementationBuilder {
    /// Maps `task` to the given hosts (extends any previous assignment).
    pub fn assign(mut self, task: TaskId, hosts: impl IntoIterator<Item = HostId>) -> Self {
        self.assignment.entry(task).or_default().extend(hosts);
        self
    }

    /// Binds input communicator `comm` to `sensor` (cumulative; binding
    /// several sensors models sensor replication).
    pub fn bind_sensor(mut self, comm: CommunicatorId, sensor: SensorId) -> Self {
        self.sensor_bindings.entry(comm).or_default().insert(sensor);
        self
    }

    /// Validates the mapping against `spec` and `arch`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyHostSet`] if some task is unmapped or mapped to
    ///   no host;
    /// * [`CoreError::UnknownId`] for out-of-range host/sensor ids;
    /// * [`CoreError::MissingExecutionMetric`] if a mapped `(task, host)`
    ///   pair lacks a WCET or WCTT;
    /// * [`CoreError::UnboundEnvironmentCommunicator`] if an input
    ///   communicator has no sensor;
    /// * [`CoreError::BindingOnTaskCommunicator`] if a binding targets a
    ///   non-input communicator.
    pub fn build(
        self,
        spec: &Specification,
        arch: &Architecture,
    ) -> Result<Implementation, CoreError> {
        let mut assignment = Vec::with_capacity(spec.task_count());
        for t in spec.task_ids() {
            let hosts = self.assignment.get(&t).cloned().unwrap_or_default();
            if hosts.is_empty() {
                return Err(CoreError::EmptyHostSet {
                    task: spec.task(t).name().to_owned(),
                });
            }
            for &h in &hosts {
                if h.index() >= arch.host_count() {
                    return Err(CoreError::UnknownId {
                        kind: "host",
                        id: h.to_string(),
                    });
                }
                if arch.wcet(t, h).is_none() {
                    return Err(CoreError::MissingExecutionMetric {
                        metric: "WCET",
                        task: spec.task(t).name().to_owned(),
                        host: arch.host(h).name().to_owned(),
                    });
                }
                if arch.wctt(t, h).is_none() {
                    return Err(CoreError::MissingExecutionMetric {
                        metric: "WCTT",
                        task: spec.task(t).name().to_owned(),
                        host: arch.host(h).name().to_owned(),
                    });
                }
            }
            assignment.push(hosts);
        }

        for (&c, sensors) in &self.sensor_bindings {
            if c.index() >= spec.communicator_count() {
                return Err(CoreError::UnknownId {
                    kind: "communicator",
                    id: c.to_string(),
                });
            }
            if !spec.is_sensor_input(c) {
                return Err(CoreError::BindingOnTaskCommunicator {
                    communicator: spec.communicator(c).name().to_owned(),
                });
            }
            for &s in sensors {
                if s.index() >= arch.sensor_count() {
                    return Err(CoreError::UnknownId {
                        kind: "sensor",
                        id: s.to_string(),
                    });
                }
            }
        }
        for c in spec.communicator_ids() {
            if spec.is_sensor_input(c)
                && self
                    .sensor_bindings
                    .get(&c)
                    .is_none_or(BTreeSet::is_empty)
            {
                return Err(CoreError::UnboundEnvironmentCommunicator {
                    communicator: spec.communicator(c).name().to_owned(),
                });
            }
        }

        Ok(Implementation {
            assignment,
            sensor_bindings: self.sensor_bindings,
        })
    }
}

/// A periodic time-dependent implementation: iteration `k` of every task
/// uses phase `k mod n` of the mapping sequence.
///
/// The paper's example (§3, "General implementation"): two tasks alternate
/// between a reliable and an unreliable host, so that neither communicator's
/// *long-run* reliability drops below its LRC even though one of the static
/// phases alone would violate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeDependentImplementation {
    phases: Vec<Implementation>,
}

impl TimeDependentImplementation {
    /// Creates a periodic mapping from a non-empty phase sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTimeDependentImplementation`] if `phases`
    /// is empty.
    pub fn new(phases: Vec<Implementation>) -> Result<Self, CoreError> {
        if phases.is_empty() {
            return Err(CoreError::EmptyTimeDependentImplementation);
        }
        Ok(TimeDependentImplementation { phases })
    }

    /// The number of phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// The phases in order.
    pub fn phases(&self) -> &[Implementation] {
        &self.phases
    }

    /// The mapping in effect at task iteration `k`.
    pub fn at_iteration(&self, k: u64) -> &Implementation {
        &self.phases[(k % self.phases.len() as u64) as usize]
    }
}

impl From<Implementation> for TimeDependentImplementation {
    fn from(imp: Implementation) -> Self {
        TimeDependentImplementation { phases: vec![imp] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{HostDecl, SensorDecl};
    use crate::prob::Reliability;
    use crate::spec::{CommunicatorDecl, TaskDecl};
    use crate::value::ValueType;

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn small_system() -> (Specification, Architecture, TaskId, CommunicatorId) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("ctrl").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();

        let mut ab = Architecture::builder();
        ab.host(HostDecl::new("h1", r(0.999))).unwrap();
        ab.host(HostDecl::new("h2", r(0.999))).unwrap();
        ab.sensor(SensorDecl::new("level", r(0.999))).unwrap();
        ab.wcet_all(t, 2).unwrap();
        ab.wctt_all(t, 1).unwrap();
        (spec, ab.build(), t, s)
    }

    #[test]
    fn valid_mapping_builds() {
        let (spec, arch, t, s) = small_system();
        let imp = Implementation::builder()
            .assign(t, [HostId::new(0), HostId::new(1)])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        assert_eq!(imp.replication_count(), 2);
        assert_eq!(imp.hosts_of(t).len(), 2);
        assert_eq!(imp.sensors_of(s).len(), 1);
        let reps: Vec<_> = imp.replications().collect();
        assert_eq!(reps, vec![(t, HostId::new(0)), (t, HostId::new(1))]);
    }

    #[test]
    fn unmapped_task_rejected() {
        let (spec, arch, _, s) = small_system();
        let err = Implementation::builder()
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap_err();
        assert!(matches!(err, CoreError::EmptyHostSet { .. }));
    }

    #[test]
    fn unknown_host_rejected() {
        let (spec, arch, t, s) = small_system();
        let err = Implementation::builder()
            .assign(t, [HostId::new(9)])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownId { kind: "host", .. }));
    }

    #[test]
    fn missing_wcet_rejected() {
        let (spec, _, t, s) = small_system();
        let mut ab = Architecture::builder();
        ab.host(HostDecl::new("h1", r(0.9))).unwrap();
        ab.sensor(SensorDecl::new("level", r(0.9))).unwrap();
        // no wcet declared
        let arch = ab.build();
        let err = Implementation::builder()
            .assign(t, [HostId::new(0)])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::MissingExecutionMetric { metric: "WCET", .. }
        ));
    }

    #[test]
    fn unbound_input_communicator_rejected() {
        let (spec, arch, t, _) = small_system();
        let err = Implementation::builder()
            .assign(t, [HostId::new(0)])
            .build(&spec, &arch)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::UnboundEnvironmentCommunicator { .. }
        ));
    }

    #[test]
    fn binding_on_task_communicator_rejected() {
        let (spec, arch, t, s) = small_system();
        let u = spec.find_communicator("u").unwrap();
        let err = Implementation::builder()
            .assign(t, [HostId::new(0)])
            .bind_sensor(s, SensorId::new(0))
            .bind_sensor(u, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap_err();
        assert!(matches!(err, CoreError::BindingOnTaskCommunicator { .. }));
    }

    #[test]
    fn unknown_sensor_rejected() {
        let (spec, arch, t, s) = small_system();
        let err = Implementation::builder()
            .assign(t, [HostId::new(0)])
            .bind_sensor(s, SensorId::new(5))
            .build(&spec, &arch)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownId { kind: "sensor", .. }));
    }

    #[test]
    fn uniform_mapping() {
        let (spec, arch, t, _) = small_system();
        let imp =
            Implementation::uniform(&spec, &arch, HostId::new(1), SensorId::new(0)).unwrap();
        assert_eq!(imp.hosts_of(t).iter().copied().collect::<Vec<_>>(), vec![
            HostId::new(1)
        ]);
    }

    #[test]
    fn time_dependent_round_robin() {
        let (spec, arch, t, s) = small_system();
        let i0 = Implementation::builder()
            .assign(t, [HostId::new(0)])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        let i1 = i0.with_assignment(t, [HostId::new(1)]);
        let td = TimeDependentImplementation::new(vec![i0.clone(), i1.clone()]).unwrap();
        assert_eq!(td.phase_count(), 2);
        assert_eq!(td.at_iteration(0), &i0);
        assert_eq!(td.at_iteration(1), &i1);
        assert_eq!(td.at_iteration(4), &i0);
        assert!(TimeDependentImplementation::new(vec![]).is_err());
        let single: TimeDependentImplementation = i0.clone().into();
        assert_eq!(single.at_iteration(17), &i0);
    }
}
