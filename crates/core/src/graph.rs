//! Specification graphs, communicator cycles and the memory-free check.
//!
//! §3 of the paper defines the *specification graph* `G_S`: vertices are the
//! communicator instances `(c, i)` for `i ∈ {0, …, π_S/π_c}` together with
//! the tasks; edges connect input instances to tasks, tasks to output
//! instances, and instance `(c, i)` to `(c, i')` when no task writes an
//! instance in between (value persistence). A *communicator cycle* is a path
//! from some `(c, i)` to some `(c, i')` that passes through at least one
//! task; a specification is *memory-free* if no such cycle exists.
//!
//! The SRG induction of the reliability analysis works at communicator
//! granularity, so this module also provides the coarser
//! [`CommDependencyGraph`] — `c' → c` iff some task reads `c'` and writes
//! `c` — with topological ordering. The coarse graph being acyclic is
//! *stronger* than the paper's memory-free condition (it also rejects
//! cross-round feedback between distinct communicators, under which the SRG
//! induction would not terminate either); the paper's remedy applies
//! unchanged: a cycle is harmless if it passes through a task with the
//! [`FailureModel::Independent`] input model, whose SRG does not depend on
//! its inputs.
//!
//! [`FailureModel::Independent`]: crate::spec::FailureModel::Independent

use crate::ids::{CommunicatorId, TaskId};
use crate::spec::{FailureModel, Specification};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A vertex of the instance-level specification graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpecVertex {
    /// Instance `i` of a communicator.
    Comm(CommunicatorId, u64),
    /// A task.
    Task(TaskId),
}

impl fmt::Display for SpecVertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecVertex::Comm(c, i) => write!(f, "({c}, {i})"),
            SpecVertex::Task(t) => write!(f, "{t}"),
        }
    }
}

/// A witness for a communicator cycle: a path from `(comm, from)` to
/// `(comm, to)` through at least one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness {
    /// The communicator both endpoints belong to.
    pub comm: CommunicatorId,
    /// Instance number of the path's start.
    pub from: u64,
    /// Instance number of the path's end.
    pub to: u64,
    /// The full vertex path, start and end inclusive.
    pub path: Vec<SpecVertex>,
}

/// Result of the communicator-cycle search over a [`SpecGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// One witness per communicator that participates in a cycle.
    pub witnesses: Vec<CycleWitness>,
}

impl CycleReport {
    /// `true` if the specification is memory-free (no communicator cycles).
    pub fn is_memory_free(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// The instance-level specification graph `G_S` of §3.
///
/// # Example
///
/// ```
/// use logrel_core::prelude::*;
/// use logrel_core::graph::SpecGraph;
///
/// # fn main() -> Result<(), CoreError> {
/// let mut b = Specification::builder();
/// let c = b.communicator(CommunicatorDecl::new("c", ValueType::Float, 2)?)?;
/// let d = b.communicator(CommunicatorDecl::new("d", ValueType::Float, 2)?)?;
/// // t reads and writes c: a communicator cycle (memory).
/// b.task(TaskDecl::new("t").reads(c, 0).writes(c, 1).writes(d, 1))?;
/// let spec = b.build()?;
/// let graph = SpecGraph::new(&spec);
/// assert!(!graph.communicator_cycles().is_memory_free());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpecGraph {
    vertices: Vec<SpecVertex>,
    /// Adjacency list over indices into `vertices`.
    succ: Vec<Vec<usize>>,
    index: BTreeMap<SpecVertex, usize>,
}

impl SpecGraph {
    /// Builds the specification graph of `spec`.
    ///
    /// Persistence edges are stored between *consecutive* unwritten
    /// instances only; this preserves path existence relative to the
    /// paper's full edge set (a long persistence edge requires every
    /// intermediate instance to be unwritten, hence decomposes into
    /// consecutive ones).
    pub fn new(spec: &Specification) -> Self {
        let mut vertices = Vec::new();
        let mut index = BTreeMap::new();
        let mut add = |v: SpecVertex, vertices: &mut Vec<SpecVertex>| -> usize {
            *index.entry(v).or_insert_with(|| {
                vertices.push(v);
                vertices.len() - 1
            })
        };

        for c in spec.communicator_ids() {
            for i in 0..=spec.max_instance(c) {
                add(SpecVertex::Comm(c, i), &mut vertices);
            }
        }
        for t in spec.task_ids() {
            add(SpecVertex::Task(t), &mut vertices);
        }

        let mut succ = vec![Vec::new(); vertices.len()];
        let idx = |v: SpecVertex| -> usize { index[&v] };

        // Which instances are written, per communicator.
        let mut written: BTreeMap<CommunicatorId, BTreeSet<u64>> = BTreeMap::new();
        for t in spec.task_ids() {
            for &a in spec.task(t).outputs() {
                written.entry(a.comm).or_default().insert(a.instance);
            }
        }

        for t in spec.task_ids() {
            let tv = idx(SpecVertex::Task(t));
            for &a in spec.task(t).inputs() {
                succ[idx(SpecVertex::Comm(a.comm, a.instance))].push(tv);
            }
            for &a in spec.task(t).outputs() {
                succ[tv].push(idx(SpecVertex::Comm(a.comm, a.instance)));
            }
        }

        for c in spec.communicator_ids() {
            let empty = BTreeSet::new();
            let written_c = written.get(&c).unwrap_or(&empty);
            for i in 0..spec.max_instance(c) {
                if !written_c.contains(&(i + 1)) {
                    succ[idx(SpecVertex::Comm(c, i))].push(idx(SpecVertex::Comm(c, i + 1)));
                }
            }
        }

        SpecGraph {
            vertices,
            succ,
            index,
        }
    }

    /// The number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The vertices in insertion order.
    pub fn vertices(&self) -> &[SpecVertex] {
        &self.vertices
    }

    /// The successors of a vertex.
    pub fn successors(&self, v: SpecVertex) -> impl Iterator<Item = SpecVertex> + '_ {
        self.index
            .get(&v)
            .into_iter()
            .flat_map(move |&i| self.succ[i].iter().map(move |&j| self.vertices[j]))
    }

    /// Searches for communicator cycles (§3): paths from `(c, i)` to
    /// `(c, i')` through at least one task. Returns one witness per
    /// communicator found cyclic.
    pub fn communicator_cycles(&self) -> CycleReport {
        let mut witnesses = Vec::new();
        let mut done_comms: BTreeSet<CommunicatorId> = BTreeSet::new();

        for (start, &v) in self.vertices.iter().enumerate() {
            let (comm, from) = match v {
                SpecVertex::Comm(c, i) => (c, i),
                SpecVertex::Task(_) => continue,
            };
            if done_comms.contains(&comm) {
                continue;
            }
            // BFS over (vertex, passed-a-task) states, remembering parents
            // so a witness path can be reconstructed.
            let n = self.vertices.len();
            let state = |i: usize, seen: bool| i * 2 + usize::from(seen);
            let mut parent: Vec<Option<usize>> = vec![None; n * 2];
            let mut visited = vec![false; n * 2];
            let mut queue = VecDeque::new();
            visited[state(start, false)] = true;
            queue.push_back((start, false));
            'bfs: while let Some((i, seen)) = queue.pop_front() {
                for &j in &self.succ[i] {
                    let next_seen = seen || matches!(self.vertices[j], SpecVertex::Task(_));
                    let s = state(j, next_seen);
                    if visited[s] {
                        continue;
                    }
                    visited[s] = true;
                    parent[s] = Some(state(i, seen));
                    if next_seen {
                        if let SpecVertex::Comm(c2, to) = self.vertices[j] {
                            if c2 == comm {
                                // Reconstruct the path.
                                let mut path = vec![self.vertices[j]];
                                let mut cur = s;
                                while let Some(p) = parent[cur] {
                                    path.push(self.vertices[p / 2]);
                                    cur = p;
                                }
                                path.reverse();
                                witnesses.push(CycleWitness {
                                    comm,
                                    from,
                                    to,
                                    path,
                                });
                                done_comms.insert(comm);
                                break 'bfs;
                            }
                        }
                    }
                    queue.push_back((j, next_seen));
                }
            }
        }
        CycleReport { witnesses }
    }

    /// Renders the graph in Graphviz DOT format.
    pub fn to_dot(&self, spec: &Specification) -> String {
        let mut out = String::from("digraph spec {\n");
        for v in &self.vertices {
            match v {
                SpecVertex::Comm(c, i) => out.push_str(&format!(
                    "  \"{}_{i}\" [shape=ellipse,label=\"({}, {i})\"];\n",
                    spec.communicator(*c).name(),
                    spec.communicator(*c).name()
                )),
                SpecVertex::Task(t) => out.push_str(&format!(
                    "  \"{}\" [shape=box];\n",
                    spec.task(*t).name()
                )),
            }
        }
        let label = |v: &SpecVertex| match v {
            SpecVertex::Comm(c, i) => format!("{}_{i}", spec.communicator(*c).name()),
            SpecVertex::Task(t) => spec.task(*t).name().to_owned(),
        };
        for (i, v) in self.vertices.iter().enumerate() {
            for &j in &self.succ[i] {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    label(v),
                    label(&self.vertices[j])
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The communicator-level dependency graph: edge `c' → c` iff some task
/// reads `c'` and writes `c`.
#[derive(Debug, Clone)]
pub struct CommDependencyGraph {
    /// `deps[c]` = the communicators that `c`'s SRG depends on, together
    /// with the writing task (empty for environment communicators and for
    /// writers with the independent failure model).
    deps: Vec<BTreeSet<CommunicatorId>>,
    writer: Vec<Option<TaskId>>,
}

impl CommDependencyGraph {
    /// Builds the dependency graph of `spec`.
    ///
    /// Edges into communicators written by a task with the *independent*
    /// failure model are omitted, because such a task's output reliability
    /// does not depend on its inputs (λ_c = λ_t). This realises the paper's
    /// cycle remedy: "for each communicator cycle, there should exist at
    /// least one task in the cycle with an independent input failure model".
    pub fn new(spec: &Specification) -> Self {
        let n = spec.communicator_count();
        let mut deps = vec![BTreeSet::new(); n];
        let mut writer = vec![None; n];
        for c in spec.communicator_ids() {
            if let Some(t) = spec.writer(c) {
                writer[c.index()] = Some(t);
                if spec.task(t).failure_model() != FailureModel::Independent {
                    deps[c.index()] = spec.task(t).input_comm_set();
                }
            }
        }
        CommDependencyGraph { deps, writer }
    }

    /// The communicators `c`'s SRG depends on.
    pub fn dependencies(&self, c: CommunicatorId) -> &BTreeSet<CommunicatorId> {
        &self.deps[c.index()]
    }

    /// The task writing `c`, if any.
    pub fn writer(&self, c: CommunicatorId) -> Option<TaskId> {
        self.writer[c.index()]
    }

    /// A topological order in which every communicator appears after all of
    /// its dependencies — the order in which SRGs can be computed.
    ///
    /// # Errors
    ///
    /// If the dependency graph is cyclic (a communicator cycle with no
    /// independent-model task on it), returns the set of communicators on
    /// cycles as `Err`.
    pub fn analysis_order(&self) -> Result<Vec<CommunicatorId>, Vec<CommunicatorId>> {
        let n = self.deps.len();
        let mut indegree = vec![0usize; n];
        let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (c, ds) in self.deps.iter().enumerate() {
            indegree[c] = ds.len();
            for d in ds {
                rdeps[d.index()].push(c);
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&c| indegree[c] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(c) = queue.pop_front() {
            order.push(CommunicatorId::new(c as u32));
            for &d in &rdeps[c] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err((0..n)
                .filter(|&c| indegree[c] > 0)
                .map(|c| CommunicatorId::new(c as u32))
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommunicatorDecl, Specification, TaskDecl};
    use crate::value::ValueType;

    fn comm(name: &str, period: u64) -> CommunicatorDecl {
        CommunicatorDecl::new(name, ValueType::Float, period).unwrap()
    }

    /// `a -> t1 -> b -> t2 -> c`: a memory-free chain.
    fn chain_spec() -> Specification {
        let mut b = Specification::builder();
        let a = b.communicator(comm("a", 2).from_sensor()).unwrap();
        let bb = b.communicator(comm("b", 2)).unwrap();
        let c = b.communicator(comm("c", 2)).unwrap();
        b.task(TaskDecl::new("t1").reads(a, 0).writes(bb, 1)).unwrap();
        b.task(TaskDecl::new("t2").reads(bb, 1).writes(c, 2)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_is_memory_free() {
        let spec = chain_spec();
        let g = SpecGraph::new(&spec);
        assert!(g.communicator_cycles().is_memory_free());
    }

    #[test]
    fn chain_analysis_order_respects_dependencies() {
        let spec = chain_spec();
        let g = CommDependencyGraph::new(&spec);
        let order = g.analysis_order().unwrap();
        let pos = |name: &str| {
            let id = spec.find_communicator(name).unwrap();
            order.iter().position(|&c| c == id).unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn self_loop_is_a_communicator_cycle() {
        // §3: "a task t that reads and writes to a communicator c".
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        b.task(TaskDecl::new("t").reads(c, 0).writes(c, 1)).unwrap();
        let spec = b.build().unwrap();
        let g = SpecGraph::new(&spec);
        let report = g.communicator_cycles();
        assert!(!report.is_memory_free());
        let w = &report.witnesses[0];
        assert_eq!(w.comm, c);
        assert!(w
            .path
            .iter()
            .any(|v| matches!(v, SpecVertex::Task(_))));
        // Path endpoints are instances of c.
        assert_eq!(w.path.first(), Some(&SpecVertex::Comm(c, w.from)));
        assert_eq!(w.path.last(), Some(&SpecVertex::Comm(c, w.to)));
    }

    #[test]
    fn two_task_feedback_is_a_cycle_at_comm_level() {
        // t1: a -> b, t2: b -> a. The instance-level persistence keeps the
        // ends apart within one round, but the communicator-level graph is
        // cyclic, which blocks SRG induction.
        let mut b = Specification::builder();
        let a = b.communicator(comm("a", 4)).unwrap();
        let bb = b.communicator(comm("b", 4)).unwrap();
        b.task(TaskDecl::new("t1").reads(a, 0).writes(bb, 1)).unwrap();
        b.task(TaskDecl::new("t2").reads(bb, 1).writes(a, 2)).unwrap();
        let spec = b.build().unwrap();
        let g = CommDependencyGraph::new(&spec);
        let err = g.analysis_order().unwrap_err();
        assert!(err.contains(&a) && err.contains(&bb));
        // The instance-level definition also reports it: a0 -> t1 -> b1 ->
        // t2 -> a2 is a path between two instances of `a` through tasks.
        let sg = SpecGraph::new(&spec);
        assert!(!sg.communicator_cycles().is_memory_free());
    }

    #[test]
    fn independent_task_cuts_the_cycle() {
        use crate::spec::FailureModel;
        use crate::value::Value;
        let mut b = Specification::builder();
        let c = b.communicator(comm("c", 2)).unwrap();
        b.task(
            TaskDecl::new("t")
                .reads(c, 0)
                .writes(c, 1)
                .model(FailureModel::Independent)
                .default_value(Value::Float(0.0)),
        )
        .unwrap();
        let spec = b.build().unwrap();
        // Instance level: still a communicator cycle...
        assert!(!SpecGraph::new(&spec).communicator_cycles().is_memory_free());
        // ...but the analysis-level graph is cut and ordering succeeds.
        let g = CommDependencyGraph::new(&spec);
        assert!(g.analysis_order().is_ok());
    }

    #[test]
    fn persistence_edges_follow_unwritten_instances() {
        let spec = chain_spec();
        let bb = spec.find_communicator("b").unwrap();
        let g = SpecGraph::new(&spec);
        // b instance 1 is written by t1; so edge (b,0) -> (b,1) must NOT
        // exist, while (b,1) -> (b,2) (unwritten) must.
        let succ0: Vec<_> = g.successors(SpecVertex::Comm(bb, 0)).collect();
        assert!(!succ0.contains(&SpecVertex::Comm(bb, 1)));
        let succ1: Vec<_> = g.successors(SpecVertex::Comm(bb, 1)).collect();
        assert!(succ1.contains(&SpecVertex::Comm(bb, 2)));
    }

    #[test]
    fn dot_rendering_mentions_all_names() {
        let spec = chain_spec();
        let g = SpecGraph::new(&spec);
        let dot = g.to_dot(&spec);
        for name in ["t1", "t2", "a_0", "b_1", "c_2"] {
            assert!(dot.contains(name), "missing {name} in dot output");
        }
    }

    #[test]
    fn fig1_graph_vertex_count() {
        // Fig. 1: periods 2,3,4,2 over round 12 -> instances 7+5+4+7 = 23
        // communicator vertices plus 1 task.
        let mut b = Specification::builder();
        let c1 = b.communicator(comm("c1", 2)).unwrap();
        let c2 = b.communicator(comm("c2", 3)).unwrap();
        let c3 = b.communicator(comm("c3", 4)).unwrap();
        let c4 = b.communicator(comm("c4", 2)).unwrap();
        b.task(
            TaskDecl::new("t")
                .reads(c1, 1)
                .reads(c2, 1)
                .writes(c3, 2)
                .writes(c4, 5),
        )
        .unwrap();
        let spec = b.build().unwrap();
        let g = SpecGraph::new(&spec);
        assert_eq!(g.vertex_count(), 24);
        assert!(g.communicator_cycles().is_memory_free());
    }
}
