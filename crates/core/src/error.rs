//! The unified error type of the core model.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating the core model.
///
/// Every variant carries the names involved so that diagnostics remain
/// meaningful after ids have been erased.
///
/// # Example
///
/// ```
/// use logrel_core::{CoreError, Reliability};
///
/// let err = Reliability::new(1.5).unwrap_err();
/// assert!(matches!(err, CoreError::InvalidReliability { .. }));
/// assert!(err.to_string().contains("1.5"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A reliability value was outside the half-open interval `(0, 1]`.
    InvalidReliability {
        /// The offending value.
        value: f64,
    },
    /// A period was zero (periods must be strictly positive).
    ZeroPeriod,
    /// An arithmetic overflow occurred in period/hyper-period computation.
    TimeOverflow {
        /// Human-readable description of the failing operation.
        context: String,
    },
    /// Two declarations share a name that must be unique.
    DuplicateName {
        /// What kind of entity was duplicated ("communicator", "task", ...).
        kind: &'static str,
        /// The duplicated name.
        name: String,
    },
    /// An id referenced an entity that does not exist.
    UnknownId {
        /// What kind of entity was referenced.
        kind: &'static str,
        /// Debug rendering of the id.
        id: String,
    },
    /// Restriction (1) of §2: a task must read and write at least one
    /// communicator.
    TaskWithoutAccess {
        /// The offending task.
        task: String,
        /// `true` if the input list was empty, `false` if the output list.
        missing_inputs: bool,
    },
    /// Restriction (2) of §2: the read time must be strictly earlier than
    /// the write time.
    ReadNotBeforeWrite {
        /// The offending task.
        task: String,
        /// The computed read time (latest read instant).
        read: u64,
        /// The computed write time (earliest write instant).
        write: u64,
    },
    /// Restriction (3) of §2: no two tasks may write to the same
    /// communicator.
    MultipleWriters {
        /// The communicator with more than one writer.
        communicator: String,
        /// The first writer.
        first: String,
        /// The second writer.
        second: String,
    },
    /// Restriction (4) of §2: a task may not write the same communicator
    /// instance more than once.
    DuplicateInstanceWrite {
        /// The offending task.
        task: String,
        /// The communicator written twice.
        communicator: String,
        /// The duplicated instance number.
        instance: u64,
    },
    /// A communicator access named an instance beyond the round period
    /// (instances range over `0 ..= round_period / period`).
    InstanceOutOfRange {
        /// The offending task.
        task: String,
        /// The accessed communicator.
        communicator: String,
        /// The out-of-range instance number.
        instance: u64,
        /// The maximum admissible instance.
        max: u64,
    },
    /// A default value's type did not match its communicator's type, or the
    /// default list length did not match the input list length.
    DefaultMismatch {
        /// The offending task.
        task: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// A task writes a communicator that is fed by the environment
    /// (a sensor-updated input communicator must have no task writer).
    WriteToEnvironment {
        /// The offending task.
        task: String,
        /// The environment communicator.
        communicator: String,
    },
    /// The specification is empty (no tasks).
    EmptySpecification,
    /// An implementation mapped a task to an empty host set.
    EmptyHostSet {
        /// The offending task.
        task: String,
    },
    /// A WCET or WCTT entry required by the implementation is missing.
    MissingExecutionMetric {
        /// "WCET" or "WCTT".
        metric: &'static str,
        /// The task whose metric is missing.
        task: String,
        /// The host whose metric is missing.
        host: String,
    },
    /// An environment (sensor-fed) communicator has no sensor binding.
    UnboundEnvironmentCommunicator {
        /// The unbound communicator.
        communicator: String,
    },
    /// A sensor binding targets a communicator that is written by a task.
    BindingOnTaskCommunicator {
        /// The offending communicator.
        communicator: String,
    },
    /// A time-dependent implementation was built with no phases.
    EmptyTimeDependentImplementation,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidReliability { value } => {
                write!(f, "reliability {value} is outside (0, 1]")
            }
            CoreError::ZeroPeriod => write!(f, "period must be strictly positive"),
            CoreError::TimeOverflow { context } => {
                write!(f, "time arithmetic overflow while {context}")
            }
            CoreError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            CoreError::UnknownId { kind, id } => write!(f, "unknown {kind} id {id}"),
            CoreError::TaskWithoutAccess {
                task,
                missing_inputs,
            } => {
                let what = if *missing_inputs { "read" } else { "write" };
                write!(f, "task `{task}` does not {what} any communicator")
            }
            CoreError::ReadNotBeforeWrite { task, read, write } => write!(
                f,
                "task `{task}` has read time {read} not strictly before write time {write}"
            ),
            CoreError::MultipleWriters {
                communicator,
                first,
                second,
            } => write!(
                f,
                "communicator `{communicator}` is written by both `{first}` and `{second}`"
            ),
            CoreError::DuplicateInstanceWrite {
                task,
                communicator,
                instance,
            } => write!(
                f,
                "task `{task}` writes instance {instance} of `{communicator}` more than once"
            ),
            CoreError::InstanceOutOfRange {
                task,
                communicator,
                instance,
                max,
            } => write!(
                f,
                "task `{task}` accesses instance {instance} of `{communicator}` \
                 beyond maximum {max}"
            ),
            CoreError::DefaultMismatch { task, detail } => {
                write!(f, "task `{task}` has mismatched defaults: {detail}")
            }
            CoreError::WriteToEnvironment { task, communicator } => write!(
                f,
                "task `{task}` writes environment communicator `{communicator}`"
            ),
            CoreError::EmptySpecification => write!(f, "specification declares no tasks"),
            CoreError::EmptyHostSet { task } => {
                write!(f, "task `{task}` is mapped to an empty host set")
            }
            CoreError::MissingExecutionMetric { metric, task, host } => {
                write!(f, "missing {metric} for task `{task}` on host `{host}`")
            }
            CoreError::UnboundEnvironmentCommunicator { communicator } => write!(
                f,
                "environment communicator `{communicator}` has no sensor binding"
            ),
            CoreError::BindingOnTaskCommunicator { communicator } => write!(
                f,
                "sensor binding targets task-written communicator `{communicator}`"
            ),
            CoreError::EmptyTimeDependentImplementation => {
                write!(f, "time-dependent implementation has no phases")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = vec![
            CoreError::InvalidReliability { value: 2.0 },
            CoreError::ZeroPeriod,
            CoreError::TimeOverflow {
                context: "lcm".into(),
            },
            CoreError::DuplicateName {
                kind: "task",
                name: "t".into(),
            },
            CoreError::UnknownId {
                kind: "host",
                id: "h9".into(),
            },
            CoreError::TaskWithoutAccess {
                task: "t".into(),
                missing_inputs: true,
            },
            CoreError::ReadNotBeforeWrite {
                task: "t".into(),
                read: 5,
                write: 5,
            },
            CoreError::MultipleWriters {
                communicator: "c".into(),
                first: "a".into(),
                second: "b".into(),
            },
            CoreError::DuplicateInstanceWrite {
                task: "t".into(),
                communicator: "c".into(),
                instance: 1,
            },
            CoreError::InstanceOutOfRange {
                task: "t".into(),
                communicator: "c".into(),
                instance: 9,
                max: 4,
            },
            CoreError::DefaultMismatch {
                task: "t".into(),
                detail: "length".into(),
            },
            CoreError::WriteToEnvironment {
                task: "t".into(),
                communicator: "s".into(),
            },
            CoreError::EmptySpecification,
            CoreError::EmptyHostSet { task: "t".into() },
            CoreError::MissingExecutionMetric {
                metric: "WCET",
                task: "t".into(),
                host: "h".into(),
            },
            CoreError::UnboundEnvironmentCommunicator {
                communicator: "s".into(),
            },
            CoreError::BindingOnTaskCommunicator {
                communicator: "c".into(),
            },
            CoreError::EmptyTimeDependentImplementation,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty(), "{v:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
