//! Integer logical time.
//!
//! The paper's semantics generates time instants "through clock interrupts"
//! as harmonic fractions of all communicator periods; we model an instant as
//! a [`Tick`] — a `u64` count of a global base tick — and a period as a
//! strictly positive number of ticks ([`Period`]).

use crate::error::CoreError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A logical time instant, counted in global base ticks.
///
/// # Example
///
/// ```
/// use logrel_core::Tick;
///
/// let t = Tick::new(3) + 5;
/// assert_eq!(t, Tick::new(8));
/// assert_eq!(t.as_u64(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(u64);

impl Tick {
    /// The origin of logical time.
    pub const ZERO: Tick = Tick(0);

    /// Creates a tick from a raw count.
    pub const fn new(ticks: u64) -> Self {
        Tick(ticks)
    }

    /// Returns the raw tick count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` if this instant is a multiple of `period`, i.e. an
    /// access instant of a communicator with that period.
    pub fn is_multiple_of(self, period: Period) -> bool {
        self.0.is_multiple_of(period.as_u64())
    }

    /// Returns the instant of instance `instance` of a communicator with
    /// period `period` (`period * instance`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TimeOverflow`] if the product overflows `u64`.
    pub fn of_instance(period: Period, instance: u64) -> Result<Tick, CoreError> {
        period
            .as_u64()
            .checked_mul(instance)
            .map(Tick)
            .ok_or(CoreError::TimeOverflow {
                context: format!("computing instant of instance {instance} with period {period}"),
            })
    }

    /// Saturating subtraction of a tick count.
    pub fn saturating_sub(self, rhs: u64) -> Tick {
        Tick(self.0.saturating_sub(rhs))
    }

    /// Checked addition of a tick count.
    pub fn checked_add(self, rhs: u64) -> Option<Tick> {
        self.0.checked_add(rhs).map(Tick)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;
    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

impl AddAssign<u64> for Tick {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Tick> for Tick {
    type Output = u64;
    /// The duration between two instants, in ticks.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Tick) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Tick {
    fn from(v: u64) -> Self {
        Tick(v)
    }
}

/// A strictly positive accessibility period, in ticks.
///
/// # Example
///
/// ```
/// use logrel_core::Period;
///
/// # fn main() -> Result<(), logrel_core::CoreError> {
/// let p = Period::new(100)?;
/// let q = Period::new(500)?;
/// assert_eq!(p.lcm(q)?.as_u64(), 500);
/// assert!(Period::new(0).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Period(u64);

impl Period {
    /// Creates a period from a tick count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroPeriod`] if `ticks` is zero.
    pub const fn new(ticks: u64) -> Result<Self, CoreError> {
        if ticks == 0 {
            Err(CoreError::ZeroPeriod)
        } else {
            Ok(Period(ticks))
        }
    }

    /// Returns the raw tick count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Least common multiple of two periods.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TimeOverflow`] if the lcm overflows `u64`.
    pub fn lcm(self, other: Period) -> Result<Period, CoreError> {
        let g = gcd(self.0, other.0);
        (self.0 / g)
            .checked_mul(other.0)
            .map(Period)
            .ok_or(CoreError::TimeOverflow {
                context: format!("lcm of periods {} and {}", self.0, other.0),
            })
    }

    /// Number of whole periods in one round of length `round`, i.e. the
    /// largest admissible instance number `round / period` when `period`
    /// divides `round`.
    pub fn instances_per(self, round: Period) -> u64 {
        round.as_u64() / self.0
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Greatest common divisor (Euclid). `gcd(0, x) = x`.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of a non-empty iterator of periods.
///
/// # Errors
///
/// Returns [`CoreError::TimeOverflow`] on overflow. Returns
/// [`CoreError::ZeroPeriod`] if the iterator is empty.
pub fn lcm_all<I: IntoIterator<Item = Period>>(periods: I) -> Result<Period, CoreError> {
    let mut it = periods.into_iter();
    let first = it.next().ok_or(CoreError::ZeroPeriod)?;
    it.try_fold(first, |acc, p| acc.lcm(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(8, 12), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn lcm_of_fig1_periods_is_twelve() {
        let ps = [2u64, 3, 4, 2]
            .iter()
            .map(|&p| Period::new(p).unwrap())
            .collect::<Vec<_>>();
        assert_eq!(lcm_all(ps).unwrap().as_u64(), 12);
    }

    #[test]
    fn lcm_overflow_is_reported() {
        let a = Period::new(u64::MAX - 1).unwrap();
        let b = Period::new(u64::MAX - 2).unwrap();
        assert!(matches!(a.lcm(b), Err(CoreError::TimeOverflow { .. })));
    }

    #[test]
    fn zero_period_rejected() {
        assert_eq!(Period::new(0).unwrap_err(), CoreError::ZeroPeriod);
    }

    #[test]
    fn tick_of_instance() {
        let p = Period::new(4).unwrap();
        assert_eq!(Tick::of_instance(p, 2).unwrap(), Tick::new(8));
        assert!(Tick::of_instance(p, u64::MAX).is_err());
    }

    #[test]
    fn tick_multiples() {
        let p = Period::new(3).unwrap();
        assert!(Tick::new(0).is_multiple_of(p));
        assert!(Tick::new(9).is_multiple_of(p));
        assert!(!Tick::new(10).is_multiple_of(p));
    }

    #[test]
    fn instances_per_round() {
        let p = Period::new(100).unwrap();
        let round = Period::new(500).unwrap();
        assert_eq!(p.instances_per(round), 5);
    }

    proptest! {
        #[test]
        fn gcd_divides_both(a in 1u64..1_000_000, b in 1u64..1_000_000) {
            let g = gcd(a, b);
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        }

        #[test]
        fn lcm_is_common_multiple(a in 1u64..10_000, b in 1u64..10_000) {
            let l = Period::new(a).unwrap().lcm(Period::new(b).unwrap()).unwrap();
            prop_assert_eq!(l.as_u64() % a, 0);
            prop_assert_eq!(l.as_u64() % b, 0);
            // minimality: l/a and b/gcd coincide
            prop_assert_eq!(l.as_u64(), a / gcd(a, b) * b);
        }
    }
}
