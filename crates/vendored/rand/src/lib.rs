//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API subset it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen::<f64>()`, `gen_range(Range)`, and `gen_bool(p)`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! splitmix64, the seeding procedure recommended by its authors. It is not
//! the upstream `StdRng` stream (ChaCha12) — seeds therefore produce
//! different (but still deterministic and statistically sound) sequences.
//! Every consumer in this workspace only relies on determinism and i.i.d.
//! uniformity, never on a specific upstream stream.

#![forbid(unsafe_code)]

/// Advances a splitmix64 state and returns the next output.
///
/// Public because the Monte-Carlo batch runner reuses the same mixer for
/// per-replication seed derivation.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable pseudo-random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// state via splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over a raw `u64` source.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: std::ops::RangeBounds<T>,
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with uniform range sampling.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: &impl std::ops::RangeBounds<Self>)
        -> Self;
}

/// Resolves integer range bounds to an inclusive `[lo, hi]` pair in u64
/// offset space.
fn int_bounds<T, R>(range: &R, min: i128, max: i128, to: impl Fn(&T) -> i128) -> (i128, i128)
where
    R: std::ops::RangeBounds<T>,
{
    use std::ops::Bound;
    let lo = match range.start_bound() {
        Bound::Included(v) => to(v),
        Bound::Excluded(v) => to(v) + 1,
        Bound::Unbounded => min,
    };
    let hi = match range.end_bound() {
        Bound::Included(v) => to(v),
        Bound::Excluded(v) => to(v) - 1,
        Bound::Unbounded => max,
    };
    assert!(lo <= hi, "gen_range called with an empty range");
    (lo, hi)
}

/// Uniform draw from `[0, n)` without modulo bias (Lemire-style widening
/// rejection, simplified to plain rejection on the top bits).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    // Rejection sampling over the smallest power-of-two envelope.
    let bits = 128 - (n - 1).leading_zeros();
    loop {
        let raw = if bits <= 64 {
            u128::from(rng.next_u64()) & ((1u128 << bits) - 1)
        } else {
            let hi = u128::from(rng.next_u64());
            let lo = u128::from(rng.next_u64());
            ((hi << 64) | lo) & ((((1u128 << (bits - 1)) - 1) << 1) | 1)
        };
        if raw < n {
            return raw;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                range: &impl std::ops::RangeBounds<Self>,
            ) -> Self {
                let (lo, hi) = int_bounds(
                    range,
                    i128::from(<$t>::MIN),
                    i128::from(<$t>::MAX),
                    |v| i128::from(*v),
                );
                let span = (hi - lo) as u128 + 1;
                let off = uniform_u64(rng, span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for usize {
    fn sample_range<R: Rng + ?Sized>(
        rng: &mut R,
        range: &impl std::ops::RangeBounds<Self>,
    ) -> Self {
        let (lo, hi) = int_bounds(range, 0, usize::MAX as i128, |v| *v as i128);
        let span = (hi - lo) as u128 + 1;
        let off = uniform_u64(rng, span) as i128;
        (lo + off) as usize
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(
        rng: &mut R,
        range: &impl std::ops::RangeBounds<Self>,
    ) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(v) | Bound::Excluded(v) => *v,
            Bound::Unbounded => panic!("gen_range on f64 requires a lower bound"),
        };
        let hi = match range.end_bound() {
            Bound::Included(v) | Bound::Excluded(v) => *v,
            Bound::Unbounded => panic!("gen_range on f64 requires an upper bound"),
        };
        assert!(lo < hi || (lo == hi && range.contains(&lo)), "empty f64 range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{uniform_u64, Rng};

    /// Extension trait for slices: uniform in-place shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates, unbiased draws).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// All-zero states are unreachable through [`SeedableRng::seed_from_u64`]
    /// (splitmix64 expansion never yields four zero words).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        let below: usize = {
            let mut r = StdRng::seed_from_u64(8);
            (0..n).filter(|_| r.gen::<f64>() < 0.25).count()
        };
        let frac = below as f64 / f64::from(n);
        assert!((frac - 0.25).abs() < 0.005, "frac {frac}");
    }

    #[test]
    fn ranges_hit_all_values_without_bias() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.08, "counts {counts:?}");
        }
        // Inclusive and signed ranges stay in bounds.
        for _ in 0..1000 {
            let v = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let f = r.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        use super::seq::SliceRandom;
        let base: Vec<u32> = (0..32).collect();
        let shuffled = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            let mut v = base.clone();
            v.shuffle(&mut r);
            v
        };
        assert_eq!(shuffled(5), shuffled(5));
        assert_ne!(shuffled(5), base);
        let mut sorted = shuffled(5);
        sorted.sort_unstable();
        assert_eq!(sorted, base);
        // Degenerate lengths are fine.
        let mut r = StdRng::seed_from_u64(0);
        let mut empty: [u32; 0] = [];
        empty.shuffle(&mut r);
        let mut one = [7u32];
        one.shuffle(&mut r);
        assert_eq!(one, [7]);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
