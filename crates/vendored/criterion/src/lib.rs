//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use — benchmark
//! groups, [`BenchmarkId`], [`Throughput`], `bench_with_input`,
//! `bench_function` and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple but serviceable harness: per benchmark it warms up,
//! auto-calibrates an iteration count to a target measurement time, then
//! reports the median of several timed batches together with derived
//! throughput.
//!
//! Statistical machinery (bootstrap CIs, HTML reports, baselines) is out
//! of scope; the numbers are stable enough for the `≥ N×` comparisons the
//! repo's perf work asserts, and `--bench` filtering is honoured so
//! `cargo bench -p logrel-bench simulator` behaves as expected.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-amount annotation used to derive throughput rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `routine`: warm-up, calibration to ~`MEASURE_MS` per
    /// batch, then the median over `BATCHES` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const WARMUP_MS: u64 = 120;
        const MEASURE_MS: u64 = 240;
        const BATCHES: usize = 5;

        // Warm-up and single-shot calibration.
        let warmup = Duration::from_millis(WARMUP_MS);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let batch =
            ((Duration::from_millis(MEASURE_MS).as_secs_f64() / BATCHES as f64) / per_iter)
                .ceil()
                .max(1.0) as u64;

        let mut samples = [0f64; BATCHES];
        for sample in &mut samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            *sample = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[BATCHES / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work amount used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`, labelled `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        self.criterion.report(&full, b.ns_per_iter, self.throughput);
        self
    }

    /// Benchmarks a parameterless routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId2>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.criterion.report(&full, b.ns_per_iter, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

/// Either a string or a [`BenchmarkId`] — argument sugar for
/// [`BenchmarkGroup::bench_function`].
pub struct BenchmarkId2(String);

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        BenchmarkId2(s.to_owned())
    }
}

impl From<String> for BenchmarkId2 {
    fn from(s: String) -> Self {
        BenchmarkId2(s)
    }
}

impl From<BenchmarkId> for BenchmarkId2 {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkId2(id.id)
    }
}

/// The harness entry point.
pub struct Criterion {
    filter: Option<String>,
    /// Collected `(name, ns/iter, throughput)` rows.
    results: Vec<(String, f64, Option<Throughput>)>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `cargo bench <filter>`: take the
        // first free argument as a substring filter, ignore flags.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| name.contains(f))
    }

    fn report(&mut self, name: &str, ns: f64, throughput: Option<Throughput>) {
        let mut line = format!("{name:<44} {:>12}/iter", human_time(ns));
        if let Some(t) = throughput {
            let (amount, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = amount as f64 / (ns / 1e9);
            let _ = write!(line, "   {:>14}", human_rate(rate, unit));
        }
        println!("{line}");
        self.results.push((name.to_owned(), ns, throughput));
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a parameterless routine at the top level.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(name) {
            return self;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let name = name.to_owned();
        self.report(&name, b.ns_per_iter, None);
        self
    }

    /// Final configuration hook (kept for API compatibility).
    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion {
            filter: None,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("work", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 > 0.0);
        assert!(c.results[0].0.contains("g/work/100"));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".to_owned()),
            results: Vec::new(),
        };
        c.bench_function("other", |b| b.iter(|| 1));
        assert!(c.results.is_empty());
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
