//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest used by this workspace as plain
//! random sampling: strategies are samplers, `proptest!` runs each test
//! body for `ProptestConfig::cases` independently drawn inputs with a
//! deterministic per-test seed (derived from the test's module path and
//! name), and `prop_assert*` forwards to the std assertion macros.
//!
//! **No shrinking**: a failing case panics with the sampled inputs left to
//! the panic message of the inner assertion. That trades minimal
//! counterexamples for zero dependencies, which is the right trade in a
//! build environment without crates.io access.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// The per-test RNG handed to strategies.
pub type TestRng = StdRng;

/// Run-time knobs of a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of independently sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 128 keeps offline CI fast while still
        // exercising every property broadly.
        ProptestConfig { cases: 128 }
    }
}

/// Derives the deterministic RNG for one test from its fully qualified
/// name (stable across runs and platforms — FNV-1a over the name).
#[must_use]
pub fn rng_for_test(qualified_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in qualified_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::RangeBounds;

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl RangeBounds<usize>) -> VecStrategy<S> {
        use std::ops::Bound;
        let lo = match size.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v + 1,
            Bound::Unbounded => 0,
        };
        let hi = match size.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v - 1,
            Bound::Unbounded => lo + 16,
        };
        assert!(lo <= hi, "empty size range for collection::vec");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// `None` in ~25% of samples (upstream's default weighting is 1:4),
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0..4usize) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The error type a `proptest!` body may early-return with `Ok(())` /
/// `Err(..)` (upstream runs bodies inside a `Result`-returning closure;
/// the shim does the same so `return Ok(())` keeps working).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed with a message.
    Fail(String),
    /// The case asked to be discarded (counted as a skip here).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy over the whole type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy over all of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod prelude {
    //! The idiomatic import set: `use proptest::prelude::*;`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Union of same-valued strategies, drawn with equal weight.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Random-sampling property tests.
///
/// Supports the upstream surface this workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then any number of `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    // Internal rules must precede the catch-all entry rule, or recursive
    // `@cfg` calls would re-enter it and never terminate.
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&$strat, &mut rng);)+
                // Bodies may `return Ok(())` early, as under upstream
                // proptest, so they run inside a Result closure.
                #[allow(unused_mut)]
                let mut case =
                    || -> ::std::result::Result<(), $crate::TestCaseError> { $body Ok(()) };
                match case() {
                    Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(reason)) => {
                        panic!("proptest case failed: {reason}")
                    }
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A(i64),
        B(bool),
    }

    fn tag() -> impl Strategy<Value = Tag> {
        prop_oneof![
            (-5i64..5).prop_map(Tag::A),
            any::<bool>().prop_map(Tag::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 1u64..20, y in -3i64..=3, f in 0.25f64..0.75) {
            prop_assert!((1..20).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(t in tag(), o in crate::option::of(Just(7u64))) {
            match t {
                Tag::A(v) => prop_assert!((-5..5).contains(&v)),
                Tag::B(_) => {}
            }
            if let Some(v) = o {
                prop_assert_eq!(v, 7);
            }
        }

        #[test]
        fn regex_subset_generates_identifiers(s in "[a-z][a-z0-9_]{0,6}") {
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(s.len() <= 7);
            prop_assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0u64..1000, 3..5);
        let mut a = crate::rng_for_test("x::y");
        let mut b = crate::rng_for_test("x::y");
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    #[test]
    fn filter_rejects_until_predicate_holds() {
        let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::rng_for_test("filter");
        for _ in 0..200 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }
}
