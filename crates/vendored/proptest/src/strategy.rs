//! Strategies: samplers of arbitrary values.

use super::TestRng;
use rand::Rng;

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is exactly a sampler.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, resampling (up to an attempt cap).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`] to mix arms of
    /// different concrete types).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core of [`Strategy`].
trait DynStrategy {
    type Value;
    fn dyn_sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.dyn_sample(rng)
    }
}

/// Equal-weight union of boxed strategies; the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union of the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.gen_range(0..self.0.len());
        self.0[k].sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 samples in a row", self.reason);
    }
}

/// The constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- ranges -------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64);

// --- any::<T>() ---------------------------------------------------------

/// Strategy behind `any::<T>()` for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl crate::Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_primitive!(bool, u32, u64, usize, i64, f64);

// --- tuples -------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// --- string patterns ----------------------------------------------------

/// `&str` patterns act as generators for the small regex subset used in
/// this workspace: literals, character classes (`[a-z0-9_]`, ranges and
/// plain members), and class repetition `{m,n}` / `?` / `*` / `+`
/// (unbounded repeats capped at 8).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal char.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
            let mut members = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    members.extend((lo..=hi).filter(|c| c.is_ascii()));
                    j += 3;
                } else {
                    members.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
            members
        } else {
            let c = chars[i];
            assert!(
                !"(){}|.\\^$".contains(c),
                "unsupported regex feature {c:?} in pattern {pattern:?} \
                 (the vendored proptest shim generates classes/literals/repeats only)"
            );
            i += 1;
            vec![c]
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.parse().expect("repeat lower bound"),
                    b.parse().expect("repeat upper bound"),
                ),
                None => {
                    let n: usize = body.parse().expect("repeat count");
                    (n, n)
                }
            }
        } else if i < chars.len() && "?*+".contains(chars[i]) {
            let op = chars[i];
            i += 1;
            match op {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}
