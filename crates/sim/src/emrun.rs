//! Cross-validation of the E-machine code generator.
//!
//! The direct kernel and the generated E-code must agree on *what happens
//! when*: every host updates every communicator at each of its update
//! instants (in declaration order), sensor-fed communicators are refreshed
//! first, and each replication latches inputs and is released exactly at
//! its task's read time. [`validate_ecode`] runs the generated machines for
//! a number of rounds against a recording platform and checks those
//! properties, tying the `emachine` crate to the kernel semantics.

use logrel_core::{HostId, Implementation, Specification, TaskId, Tick};
use logrel_emachine::{generate, DriverOp, EMachine, Platform};
use std::collections::BTreeSet;

/// A platform that records every driver call and release.
#[derive(Debug, Default)]
struct Recorder {
    calls: Vec<(HostId, Tick, DriverOp)>,
    releases: Vec<(HostId, Tick, TaskId)>,
}

impl Platform for Recorder {
    fn call(&mut self, host: HostId, op: DriverOp, now: Tick) {
        self.calls.push((host, now, op));
    }
    fn release(&mut self, host: HostId, task: TaskId, now: Tick) {
        self.releases.push((host, now, task));
    }
}

/// Runs each host's generated E-code for `rounds` rounds and checks it
/// against the specification's event calendar.
///
/// # Errors
///
/// Returns a human-readable description of the first disagreement.
pub fn validate_ecode(
    spec: &Specification,
    imp: &Implementation,
    hosts: impl IntoIterator<Item = HostId>,
    rounds: u64,
) -> Result<(), String> {
    let round = spec.round_period().as_u64();
    let horizon = Tick::new(rounds * round - 1);

    for host in hosts {
        let code = generate(spec, imp, host);
        let mut machine = EMachine::new(code, host);
        let mut rec = Recorder::default();
        machine.run_until(horizon, &mut rec);

        // 1. Every communicator update instant appears exactly once.
        for c in spec.communicator_ids() {
            let period = spec.communicator(c).period().as_u64();
            for r in 0..rounds {
                for k in 0..(round / period) {
                    let at = Tick::new(r * round + k * period);
                    let instance = k;
                    let n = rec
                        .calls
                        .iter()
                        .filter(|(h, t, op)| {
                            *h == host
                                && *t == at
                                && *op
                                    == DriverOp::UpdateCommunicator {
                                        comm: c,
                                        instance,
                                    }
                        })
                        .count();
                    if n != 1 {
                        return Err(format!(
                            "host {host}: update of {c} instance {instance} at {at} \
                             occurred {n} times"
                        ));
                    }
                }
            }
            // Sensor refreshes precede updates at the same instant.
            if spec.is_sensor_input(c) {
                for (i, (h, t, op)) in rec.calls.iter().enumerate() {
                    if *h == host && *op == (DriverOp::ReadSensors { comm: c }) {
                        let follows = rec.calls[i + 1..].iter().find(|(h2, t2, op2)| {
                            h2 == h
                                && t2 == t
                                && matches!(op2, DriverOp::UpdateCommunicator { comm, .. } if *comm == c)
                        });
                        if follows.is_none() {
                            return Err(format!(
                                "host {host}: sensor read of {c} at {t} without update"
                            ));
                        }
                    }
                }
            }
        }

        // 2. Releases happen exactly at read times, only for local tasks.
        let local: BTreeSet<TaskId> = spec
            .task_ids()
            .filter(|&t| imp.hosts_of(t).contains(&host))
            .collect();
        for (h, at, t) in &rec.releases {
            debug_assert_eq!(*h, host);
            if !local.contains(t) {
                return Err(format!("host {host}: released non-local task {t}"));
            }
            let rel = at.as_u64() % round;
            if rel != spec.read_time(*t).as_u64() {
                return Err(format!(
                    "host {host}: task {t} released at {at} (slot {rel}), read time is {}",
                    spec.read_time(*t)
                ));
            }
        }
        for &t in &local {
            let expected = rounds as usize;
            let got = rec.releases.iter().filter(|(_, _, t2)| *t2 == t).count();
            if got != expected {
                return Err(format!(
                    "host {host}: task {t} released {got} times, expected {expected}"
                ));
            }
            // Every input access latches exactly once per round, at its
            // access instant.
            for (index, &a) in spec.task(t).inputs().iter().enumerate() {
                let latches: Vec<&(HostId, Tick, DriverOp)> = rec
                    .calls
                    .iter()
                    .filter(|(_, _, op)| {
                        *op == (DriverOp::LatchInput {
                            task: t,
                            index: index as u32,
                        })
                    })
                    .collect();
                if latches.len() != expected {
                    return Err(format!(
                        "host {host}: input {index} of {t} latched {} times, \
                         expected {expected}",
                        latches.len()
                    ));
                }
                let want = spec.access_instant(a).as_u64() % round;
                for (_, at, _) in latches {
                    if at.as_u64() % round != want {
                        return Err(format!(
                            "host {host}: input {index} of {t} latched at {at}, \
                             expected slot {want}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        Architecture, CommunicatorDecl, HostDecl, Reliability, SensorDecl, SensorId, TaskDecl,
        ValueType,
    };

    fn system() -> (Specification, Implementation, Vec<HostId>) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let l = sb
            .communicator(CommunicatorDecl::new("l", ValueType::Float, 5).unwrap())
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let reader = sb
            .task(TaskDecl::new("reader").reads(s, 0).writes(l, 1))
            .unwrap();
        let ctrl = sb.task(TaskDecl::new("ctrl").reads(l, 1).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let r = Reliability::new(0.99).unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r)).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r)).unwrap();
        ab.sensor(SensorDecl::new("sn", r)).unwrap();
        for t in [reader, ctrl] {
            ab.wcet_all(t, 1).unwrap();
            ab.wctt_all(t, 1).unwrap();
        }
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(reader, [h1, h2])
            .assign(ctrl, [h2])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        (spec, imp, vec![h1, h2])
    }

    #[test]
    fn generated_code_is_consistent_over_multiple_rounds() {
        let (spec, imp, hosts) = system();
        validate_ecode(&spec, &imp, hosts, 3).unwrap();
    }

    #[test]
    fn validation_runs_for_each_host_independently() {
        let (spec, imp, hosts) = system();
        for h in hosts {
            validate_ecode(&spec, &imp, [h], 2).unwrap();
        }
    }
}
