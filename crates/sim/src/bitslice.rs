//! Bit-sliced Monte-Carlo execution: up to 64 replications per run.
//!
//! [`Simulation::run_bitsliced`] evaluates the compiled [`RoundProgram`]
//! for up to 64 *independent* replications ("lanes") in one pass. Boolean
//! per-replica state — liveness, broadcast delivery, warm-up, exclusion,
//! vote delivery — is packed into `u64` lane masks, and communicator
//! values are kept as *value classes*: disjoint lane masks per distinct
//! reliable value ([`LaneClasses`]). Because independent replications of
//! one system overwhelmingly agree on the data flow (they differ only
//! where a fault fired), a round's work collapses to a handful of classes
//! instead of 64 scalar evaluations.
//!
//! # Lane semantics
//!
//! Lane `i` replays scalar replication `i` *exactly*: it owns a private
//! RNG seeded with lane `i`'s seed, plus its own fault injector,
//! environment, supervisor and metrics sink ([`LaneContext`]). At every
//! site where the scalar kernel ([`Simulation::run_observed`]) consumes a
//! draw or calls a hook, the bit-sliced kernel loops over the lanes and
//! performs the same call on the lane's own context, in the same order —
//! so each lane's RNG stream, trace, metrics and supervisor interactions
//! are bit-identical to a scalar run of the same seed.
//! [`BitslicedOutput::extract_lane`] recovers the scalar [`SimOutput`].
//!
//! # Shared behaviors — purity contract
//!
//! All lanes share one [`BehaviorMap`]: task behaviors must be pure
//! functions of their inputs. The kernel invokes a behavior once per
//! *input-class* (not once per lane), so a behavior with internal state
//! would observe a different call sequence than under scalar execution.
//!
//! # Corruption and the fast path
//!
//! When no lane's injector can corrupt outputs
//! ([`FaultInjector::corrupts`] is `false` for every lane), all delivering
//! replicas of a lane hold the identical voted-in value, so voting
//! reduces to mask intersection and the per-replica output buffers are
//! never materialized. A corrupting injector on any lane switches the
//! whole run to the slow path, which stores per-(replica, lane) output
//! rows and votes each lane with [`vote_into`] — still bit-identical,
//! just without the class compression on the vote.

use crate::behavior::BehaviorMap;
use crate::environment::Environment;
use crate::fault::FaultInjector;
use crate::kernel::{
    drop_counter, task_audiences, vote_counter, warm_after_rejoin, SimOutput, Simulation,
    TaskStats,
};
use crate::monitor::{NoSupervisor, Supervisor};
use crate::trace::Trace;
use logrel_core::roundprog::UpdateOp;
use logrel_core::{CommunicatorId, FailureModel, HostId, Specification, TaskId, Tick, Value};
use logrel_obs::{names, DropReason, MetricsSink, NoopSink, ObsEvent, VoteOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::mem;

/// A partition of the lane set by communicator value.
///
/// Invariants: the per-class masks are pairwise disjoint, every stored
/// value is reliable, and no mask is zero. Lanes outside the union of the
/// masks hold ⊥ ([`Value::Unreliable`]) — ⊥ is represented by *absence*,
/// which keeps the common all-reliable and all-⊥ cases at one and zero
/// classes respectively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneClasses {
    classes: Vec<(Value, u64)>,
}

impl LaneClasses {
    fn clear(&mut self) {
        self.classes.clear();
    }

    /// Adds `mask`'s lanes with value `v`, coalescing with an existing
    /// equal-valued class. ⊥ values and empty masks are dropped (⊥ is
    /// absence). The caller must keep masks disjoint from existing
    /// classes.
    fn push(&mut self, v: Value, mask: u64) {
        if mask == 0 || !v.is_reliable() {
            return;
        }
        if let Some(entry) = self.classes.iter_mut().find(|(w, _)| *w == v) {
            entry.1 |= mask;
        } else {
            self.classes.push((v, mask));
        }
    }

    /// The mask of lanes holding a reliable value.
    fn union(&self) -> u64 {
        self.classes.iter().fold(0, |m, &(_, cm)| m | cm)
    }

    /// The value lane `lane` holds (⊥ when in no class).
    fn value_at(&self, lane: usize) -> Value {
        let bit = 1u64 << lane;
        self.classes
            .iter()
            .find(|&&(_, m)| m & bit != 0)
            .map_or(Value::Unreliable, |&(v, _)| v)
    }

    /// Rebuilds the partition from one scalar value per lane.
    fn set_from_lane_values(&mut self, vals: &[Value]) {
        self.classes.clear();
        for (li, &v) in vals.iter().enumerate() {
            self.push(v, 1u64 << li);
        }
    }

    /// Copies `other` into `self` reusing `self`'s allocation (the
    /// derived `clone_from` would allocate a fresh vector).
    fn copy_from(&mut self, other: &LaneClasses) {
        self.classes.clear();
        self.classes.extend_from_slice(&other.classes);
    }
}

/// The packed analogue of [`Trace`]: per communicator, the chronological
/// update records, each pointing at a [`LaneClasses`] snapshot in a
/// shared class pool.
#[derive(Debug, Clone, Default)]
pub struct PackedTrace {
    /// Per communicator: `(at, pool_start, class_count)` per update.
    rows: Vec<Vec<(Tick, u32, u32)>>,
    /// Flattened class snapshots, shared across all rows.
    pool: Vec<(Value, u64)>,
}

impl PackedTrace {
    fn new(comm_count: usize) -> Self {
        PackedTrace {
            rows: vec![Vec::new(); comm_count],
            pool: Vec::new(),
        }
    }

    fn record(&mut self, comm: usize, at: Tick, classes: &LaneClasses) {
        let start = u32::try_from(self.pool.len()).expect("packed trace pool overflow");
        self.pool.extend_from_slice(&classes.classes);
        self.rows[comm].push((at, start, classes.classes.len() as u32));
    }

    /// Lane `lane`'s scalar value at row `(start, len)`.
    fn value_at(&self, start: u32, len: u32, lane: usize) -> Value {
        let bit = 1u64 << lane;
        self.pool[start as usize..(start + len) as usize]
            .iter()
            .find(|&&(_, m)| m & bit != 0)
            .map_or(Value::Unreliable, |&(v, _)| v)
    }
}

/// The packed result of [`Simulation::run_bitsliced`]; one
/// [`SimOutput`] per lane via [`BitslicedOutput::extract_lane`].
#[derive(Debug, Clone)]
pub struct BitslicedOutput {
    lanes: usize,
    trace: PackedTrace,
    /// Per task: executed rounds (lane-invariant).
    invocations: Vec<u64>,
    /// Per task: rounds in which *every* lane delivered.
    delivered_all: Vec<u64>,
    /// Per `(task, lane)`: deliveries in rounds where not every lane
    /// delivered (row-major, `task * lanes + lane`).
    delivered_extra: Vec<u64>,
    /// Final communicator values, per communicator.
    final_classes: Vec<LaneClasses>,
}

impl BitslicedOutput {
    /// Number of packed lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Reconstructs lane `lane`'s scalar [`SimOutput`] — bit-identical to
    /// what [`Simulation::run`] (or `run_observed`) produces for that
    /// lane's seed, injector and environment.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes()`.
    pub fn extract_lane(&self, spec: &Specification, lane: usize) -> SimOutput {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        let mut trace = Trace::new(spec);
        for (ci, rows) in self.trace.rows.iter().enumerate() {
            let c = CommunicatorId::new(ci as u32);
            for &(at, start, len) in rows {
                trace.record(c, at, self.trace.value_at(start, len, lane));
            }
        }
        let task_count = self.invocations.len();
        let task_stats = (0..task_count)
            .map(|t| TaskStats {
                delivered: self.delivered_all[t] + self.delivered_extra[t * self.lanes + lane],
                invocations: self.invocations[t],
            })
            .collect();
        let final_values = self
            .final_classes
            .iter()
            .map(|cls| cls.value_at(lane))
            .collect();
        SimOutput {
            trace,
            task_stats,
            final_values,
        }
    }
}

/// One lane's private execution context: seeded RNG, fault injector,
/// environment, supervisor and metrics sink.
///
/// Lane `i` of a packed run behaves exactly like a scalar
/// [`Simulation::run_observed`] call with seed `seed`, the same injector
/// and environment, because the kernel performs every draw and hook call
/// on this context in the scalar order.
#[derive(Debug, Clone)]
pub struct LaneContext<I, E, S = NoSupervisor, M = NoopSink> {
    rng: StdRng,
    injector: I,
    environment: E,
    supervisor: S,
    sink: M,
}

impl<I, E, S, M> LaneContext<I, E, S, M> {
    /// A fully supervised and observed lane. `seed` matches the scalar
    /// [`SimConfig::seed`](crate::SimConfig) of the replication this lane
    /// replays.
    pub fn new(seed: u64, injector: I, environment: E, supervisor: S, sink: M) -> Self {
        LaneContext {
            rng: StdRng::seed_from_u64(seed),
            injector,
            environment,
            supervisor,
            sink,
        }
    }

    /// Dismantles the lane, returning the injector, environment,
    /// supervisor and sink (e.g. to harvest per-lane metrics).
    pub fn into_parts(self) -> (I, E, S, M) {
        (self.injector, self.environment, self.supervisor, self.sink)
    }
}

impl<I, E> LaneContext<I, E> {
    /// An unsupervised, unobserved lane — the packed analogue of
    /// [`Simulation::run`].
    pub fn plain(seed: u64, injector: I, environment: E) -> Self {
        LaneContext::new(seed, injector, environment, NoSupervisor, NoopSink)
    }
}

impl<'a> Simulation<'a> {
    /// Runs up to 64 replications bit-sliced in one pass over the round
    /// program. Lane `i` replays the scalar run of `lanes[i]`'s seed,
    /// injector and environment exactly; see the module docs for the
    /// shared-behaviors purity contract and the fast/slow path split.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty or holds more than 64 contexts.
    pub fn run_bitsliced<I, E, S, M>(
        &self,
        behaviors: &mut BehaviorMap,
        lanes: &mut [LaneContext<I, E, S, M>],
        rounds: u64,
    ) -> BitslicedOutput
    where
        I: FaultInjector,
        E: Environment,
        S: Supervisor,
        M: MetricsSink,
    {
        let spec = self.spec;
        let prog = &self.program;
        let round = spec.round_period().as_u64();
        let phase_count = prog.phases.len() as u64;
        let n = lanes.len();
        assert!(
            (1..=64).contains(&n),
            "bit-sliced run needs 1..=64 lanes, got {n}"
        );
        let all_mask: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        // Any corrupting lane forces the slow (materialized-replicas)
        // path for the whole run; see the module docs.
        let corrupting = lanes.iter().any(|l| l.injector.corrupts());
        // Passive environments/supervisors contract their hooks to
        // no-ops, so the per-lane hook loops below can be skipped.
        let passive_env = lanes.iter().all(|l| l.environment.is_passive());
        let passive_sup = lanes.iter().all(|l| l.supervisor.is_passive());
        // Correlated-failure gates: the partition delivery check and the
        // adaptive vote echo are pure (no RNG draws), so lanes with a
        // plain injector see exactly their scalar call sequence whether
        // or not another lane partitions or adapts.
        let partitioned = lanes.iter().any(|l| l.injector.partitions());
        let adaptive = lanes.iter().any(|l| l.injector.adaptive());
        let audiences = if partitioned {
            task_audiences(spec, self.imp.phases())
        } else {
            Vec::new()
        };

        let comm_count = spec.communicator_count();
        let mut trace = PackedTrace::new(comm_count);
        let mut comm_classes: Vec<LaneClasses> = spec
            .communicator_ids()
            .map(|c| {
                let mut cls = LaneClasses::default();
                cls.push(spec.communicator(c).init(), all_mask);
                cls
            })
            .collect();
        let mut latched = vec![LaneClasses::default(); prog.total_inputs];
        let mut result_classes = [
            vec![LaneClasses::default(); prog.total_outputs],
            vec![LaneClasses::default(); prog.total_outputs],
        ];
        let mut result_delivered = [vec![0u64; spec.task_count()], vec![0u64; spec.task_count()]];
        let mut invocations = vec![0u64; spec.task_count()];
        let mut delivered_all = vec![0u64; spec.task_count()];
        let mut delivered_extra = vec![0u64; spec.task_count() * n];

        // Scratch, allocated once per run.
        let max_out = prog.max_outputs;
        let mut lane_vals = vec![Value::Unreliable; n];
        let mut cells_mask: Vec<u64> = Vec::with_capacity(n);
        let mut cells_vals: Vec<Value> = Vec::with_capacity(n * prog.max_inputs);
        let mut next_mask: Vec<u64> = Vec::with_capacity(n);
        let mut next_vals: Vec<Value> = Vec::with_capacity(n * prog.max_inputs);
        let mut cell_outs: Vec<Value> = Vec::with_capacity(n * max_out);
        let mut lane_cell = vec![0usize; n];
        let mut inputs_buf: Vec<Value> = Vec::with_capacity(prog.max_inputs);
        let mut outputs_buf: Vec<Value> = Vec::with_capacity(max_out);
        let mut ok_masks = vec![0u64; prog.max_replicas];
        // Slow path only: per-(replica, lane) output rows, and one lane's
        // gathered rows for `vote_into`.
        let mut rep_vals = if corrupting {
            vec![Value::Unreliable; prog.max_replicas * n * max_out]
        } else {
            Vec::new()
        };
        let mut lane_rep_vals = vec![Value::Unreliable; prog.max_replicas * max_out];
        let mut lane_rep_ok = vec![false; prog.max_replicas];
        let mut voted_buf = vec![Value::Unreliable; max_out];
        let mut delivered_hosts: Vec<HostId> = Vec::with_capacity(prog.max_replicas);

        // Observation state, per lane. With `NoopSink` this is constant
        // `false` and the obs blocks below monomorphize away.
        let any_obs = lanes.iter().any(|l| l.sink.enabled());
        let obs: Vec<bool> = lanes.iter().map(|l| l.sink.enabled()).collect();
        let hosts = if any_obs {
            prog.phases
                .iter()
                .flat_map(|p| p.hosts.iter().flatten())
                .map(|h| h.index())
                .max()
                .map_or(0, |m| m + 1)
        } else {
            0
        };
        // Per host: mask of lanes that consider the host up.
        let mut host_up = vec![all_mask; hosts];
        let mut hosts_up_count = vec![hosts; n];
        if any_obs {
            for lane in lanes.iter_mut().filter(|l| l.sink.enabled()) {
                lane.sink.set_gauge(names::HOSTS_UP, hosts as f64);
            }
        }

        for r in 0..rounds {
            let phase = &prog.phases[(r % phase_count) as usize];
            let base = r * round;
            let parity = (r % 2) as usize;
            for sp in &prog.slots {
                let now = Tick::new(base + sp.offset);
                if !passive_env {
                    for lane in lanes.iter_mut() {
                        lane.environment.advance(now);
                    }
                }

                // ---- 1. communicator updates due at this instant ----
                for op in &sp.updates {
                    match *op {
                        UpdateOp::Sensor { comm } => {
                            let c = CommunicatorId::new(comm);
                            let sensors = &phase.sensors[comm as usize];
                            for (li, lane) in lanes.iter_mut().enumerate() {
                                let mut any_ok = false;
                                for &s in sensors {
                                    // Sample every sensor (no short-circuit),
                                    // as in the scalar kernel.
                                    if lane.injector.sensor_ok(s, now, &mut lane.rng) {
                                        any_ok = true;
                                    }
                                }
                                lane_vals[li] = if any_ok {
                                    lane.environment.sense(c, now)
                                } else {
                                    Value::Unreliable
                                };
                            }
                            comm_classes[comm as usize].set_from_lane_values(&lane_vals);
                            trace.record(comm as usize, now, &comm_classes[comm as usize]);
                            if !passive_sup {
                                for (li, lane) in lanes.iter_mut().enumerate() {
                                    lane.supervisor
                                        .observe_with(c, now, lane_vals[li], &mut lane.sink);
                                }
                            }
                        }
                        UpdateOp::Landed {
                            comm,
                            task,
                            out_slot,
                            rounds_back,
                        } => {
                            let c = CommunicatorId::new(comm);
                            let rb = u64::from(rounds_back);
                            if r >= rb {
                                let p = ((r - rb) % 2) as usize;
                                let dm = result_delivered[p][task as usize];
                                let src = &result_classes[p][out_slot as usize];
                                let dst = &mut comm_classes[comm as usize];
                                dst.clear();
                                for &(v, m) in &src.classes {
                                    dst.push(v, m & dm);
                                }
                            }
                            // else: nothing produced yet, init persists.
                            trace.record(comm as usize, now, &comm_classes[comm as usize]);
                            if !(passive_env && passive_sup) {
                                let cls = &comm_classes[comm as usize];
                                for (li, lane) in lanes.iter_mut().enumerate() {
                                    let v = cls.value_at(li);
                                    lane.supervisor.observe_with(c, now, v, &mut lane.sink);
                                    lane.environment.actuate(c, v, now);
                                }
                            }
                        }
                        UpdateOp::Persist { comm } => {
                            let c = CommunicatorId::new(comm);
                            trace.record(comm as usize, now, &comm_classes[comm as usize]);
                            if !(passive_env && passive_sup) {
                                let cls = &comm_classes[comm as usize];
                                for (li, lane) in lanes.iter_mut().enumerate() {
                                    let v = cls.value_at(li);
                                    lane.supervisor.observe_with(c, now, v, &mut lane.sink);
                                    lane.environment.actuate(c, v, now);
                                }
                            }
                        }
                    }
                    if any_obs {
                        let un = comm_classes[op.comm()].union();
                        for (li, lane) in lanes.iter_mut().enumerate() {
                            if obs[li] {
                                lane.sink.inc(names::UPDATES);
                                if un & (1u64 << li) == 0 {
                                    lane.sink.inc(names::UPDATES_UNRELIABLE);
                                }
                            }
                        }
                    }
                }

                // ---- 2. latch input accesses due at this instant ----
                for l in &sp.latches {
                    let (dst, src) = (l.dst as usize, l.comm as usize);
                    // `latched` and `comm_classes` are distinct vectors.
                    let cls = &comm_classes[src];
                    latched[dst].copy_from(cls);
                }

                // ---- 3. task reads / logical execution ----
                for &ti in &sp.reads {
                    let t = ti as usize;
                    let tt = &prog.tasks[t];
                    let raw = &latched[tt.in_range()];
                    // The lane mask on which the task logically executes.
                    let exec: u64 = match tt.model {
                        FailureModel::Series => {
                            raw.iter().fold(all_mask, |m, cls| m & cls.union())
                        }
                        FailureModel::Parallel => raw.iter().fold(0, |m, cls| m | cls.union()),
                        FailureModel::Independent => all_mask,
                    };

                    // Partition the executing lanes into input-equivalence
                    // cells: lanes in one cell agree on every
                    // (default-substituted) input, so one behavior
                    // invocation serves the whole cell.
                    cells_mask.clear();
                    cells_vals.clear();
                    if exec != 0 {
                        cells_mask.push(exec);
                        for (j, cls) in raw.iter().enumerate() {
                            next_mask.clear();
                            next_vals.clear();
                            for (ci, &cm) in cells_mask.iter().enumerate() {
                                let vals = &cells_vals[ci * j..(ci + 1) * j];
                                let mut rem = cm;
                                for &(v, m) in &cls.classes {
                                    let sub = cm & m;
                                    if sub != 0 {
                                        rem &= !m;
                                        next_mask.push(sub);
                                        next_vals.extend_from_slice(vals);
                                        next_vals.push(v);
                                    }
                                }
                                if rem != 0 {
                                    // ⊥ lanes read the declared default.
                                    next_mask.push(rem);
                                    next_vals.extend_from_slice(vals);
                                    next_vals.push(tt.defaults[j]);
                                }
                            }
                            mem::swap(&mut cells_mask, &mut next_mask);
                            mem::swap(&mut cells_vals, &mut next_vals);
                        }
                    }
                    let n_in = tt.n_in;
                    let n_out = tt.n_out;
                    cell_outs.clear();
                    for ci in 0..cells_mask.len() {
                        inputs_buf.clear();
                        inputs_buf.extend_from_slice(&cells_vals[ci * n_in..(ci + 1) * n_in]);
                        behaviors.invoke_into(spec, TaskId::new(ti), &inputs_buf, &mut outputs_buf);
                        cell_outs.extend_from_slice(&outputs_buf);
                    }
                    if corrupting {
                        // Lane → cell map, for materializing replica rows.
                        for (ci, &cm) in cells_mask.iter().enumerate() {
                            let mut m = cm;
                            while m != 0 {
                                lane_cell[m.trailing_zeros() as usize] = ci;
                                m &= m - 1;
                            }
                        }
                    }

                    let hosts_of = &phase.hosts[t];
                    let mut delivered_mask = 0u64;
                    for (i, &h) in hosts_of.iter().enumerate() {
                        let mut okm = 0u64;
                        for (li, lane) in lanes.iter_mut().enumerate() {
                            let bit = 1u64 << li;
                            // Sample both draws for every replica, as in
                            // the scalar kernel.
                            let host_ok = lane.injector.host_ok(h, now, &mut lane.rng);
                            let bc_ok = lane.injector.broadcast_ok(h, now, &mut lane.rng)
                                && (!partitioned
                                    || audiences[t]
                                        .iter()
                                        .all(|&rcv| lane.injector.delivers(h, rcv, now)));
                            let warm = !tt.stateful
                                || warm_after_rejoin(lane.injector.rejoined_at(h, now), now, round);
                            let excluded =
                                lane.supervisor.exclude_replica(TaskId::new(ti), h, now);
                            let executes = exec & bit != 0;
                            let ok = executes && host_ok && bc_ok && warm && !excluded;
                            if ok {
                                okm |= bit;
                                if corrupting {
                                    let dst =
                                        &mut rep_vals[(i * n + li) * max_out..][..n_out];
                                    let cidx = lane_cell[li];
                                    dst.copy_from_slice(
                                        &cell_outs[cidx * n_out..(cidx + 1) * n_out],
                                    );
                                    lane.injector.corrupt(h, now, dst, &mut lane.rng);
                                }
                                // Fast path: `corrupts()` guarantees the
                                // corrupt hook neither mutates nor draws,
                                // so the call is skipped entirely.
                            }
                            if any_obs && obs[li] {
                                let hi = h.index();
                                if (host_up[hi] & bit != 0) != host_ok {
                                    host_up[hi] ^= bit;
                                    if host_ok {
                                        hosts_up_count[li] += 1;
                                        lane.sink.inc(names::HOST_UP_TRANSITIONS);
                                        lane.sink.event(&ObsEvent::HostUp {
                                            at: now.as_u64(),
                                            host: hi,
                                        });
                                    } else {
                                        hosts_up_count[li] -= 1;
                                        lane.sink.inc(names::HOST_DOWN_TRANSITIONS);
                                        lane.sink.event(&ObsEvent::HostDown {
                                            at: now.as_u64(),
                                            host: hi,
                                        });
                                    }
                                    lane.sink
                                        .set_gauge(names::HOSTS_UP, hosts_up_count[li] as f64);
                                }
                                if host_ok && !bc_ok {
                                    lane.sink.inc(names::BROADCAST_FAIL);
                                }
                                if ok {
                                    lane.sink.inc(names::REPLICA_OK);
                                } else {
                                    let reason = if !executes {
                                        DropReason::NotExecuted
                                    } else if !host_ok {
                                        DropReason::HostDown
                                    } else if !bc_ok {
                                        DropReason::Broadcast
                                    } else if !warm {
                                        DropReason::Warmup
                                    } else {
                                        DropReason::Excluded
                                    };
                                    lane.sink.inc(names::REPLICA_DROP);
                                    lane.sink.inc(drop_counter(reason));
                                    if reason != DropReason::NotExecuted {
                                        lane.sink.event(&ObsEvent::ReplicaDrop {
                                            at: now.as_u64(),
                                            task: t,
                                            host: hi,
                                            reason,
                                        });
                                    }
                                }
                            }
                        }
                        ok_masks[i] = okm;
                        delivered_mask |= okm;
                    }

                    // ---- vote ----
                    let out_base = tt.out_base;
                    for cls in &mut result_classes[parity][tt.out_range()] {
                        cls.clear();
                    }
                    if !corrupting {
                        // All delivering replicas of a lane agree (no
                        // corruption), so any strategy votes the cell's
                        // output for every delivering lane.
                        for (ci, &cm) in cells_mask.iter().enumerate() {
                            let dm = cm & delivered_mask;
                            if dm != 0 {
                                for k in 0..n_out {
                                    result_classes[parity][out_base + k]
                                        .push(cell_outs[ci * n_out + k], dm);
                                }
                            }
                        }
                    } else {
                        for li in 0..n {
                            let bit = 1u64 << li;
                            if delivered_mask & bit == 0 {
                                // vote_into would fill ⊥; absence is ⊥.
                                continue;
                            }
                            for (i, ok) in lane_rep_ok[..hosts_of.len()].iter_mut().enumerate()
                            {
                                *ok = ok_masks[i] & bit != 0;
                                if *ok {
                                    lane_rep_vals[i * n_out..(i + 1) * n_out].copy_from_slice(
                                        &rep_vals[(i * n + li) * max_out..][..n_out],
                                    );
                                }
                            }
                            crate::voting::vote_into(
                                &lane_rep_vals[..hosts_of.len() * n_out],
                                &lane_rep_ok[..hosts_of.len()],
                                n_out,
                                self.voting,
                                &mut voted_buf[..n_out],
                            );
                            for k in 0..n_out {
                                result_classes[parity][out_base + k].push(voted_buf[k], bit);
                            }
                        }
                    }

                    invocations[t] += 1;
                    if delivered_mask == all_mask {
                        delivered_all[t] += 1;
                    } else {
                        let mut m = delivered_mask;
                        while m != 0 {
                            delivered_extra[t * n + m.trailing_zeros() as usize] += 1;
                            m &= m - 1;
                        }
                    }
                    result_delivered[parity][t] = delivered_mask;

                    // Adaptive vote echo: lane `li`'s delivering hosts are
                    // the replicas whose ok-mask has bit `li` set, so the
                    // fast path needs no materialized replica rows.
                    if adaptive {
                        for (li, lane) in lanes.iter_mut().enumerate() {
                            if !lane.injector.adaptive() {
                                continue;
                            }
                            let bit = 1u64 << li;
                            delivered_hosts.clear();
                            for (i, &h) in hosts_of.iter().enumerate() {
                                if ok_masks[i] & bit != 0 {
                                    delivered_hosts.push(h);
                                }
                            }
                            lane.injector.observe_vote(
                                TaskId::new(ti),
                                now,
                                &delivered_hosts,
                                hosts_of.len(),
                            );
                        }
                    }

                    if any_obs {
                        for (li, lane) in lanes.iter_mut().enumerate() {
                            if !obs[li] {
                                continue;
                            }
                            let bit = 1u64 << li;
                            lane.sink.inc(names::TASK_INVOCATIONS);
                            let n_del = ok_masks[..hosts_of.len()]
                                .iter()
                                .filter(|&&m| m & bit != 0)
                                .count();
                            lane.sink.observe(names::REPLICAS_PER_VOTE, n_del as f64);
                            let lane_delivered = delivered_mask & bit != 0;
                            if lane_delivered {
                                lane.sink.inc(names::TASK_DELIVERED);
                            }
                            let outcome = if !corrupting {
                                // Uncorrupted delivering rows are equal.
                                if lane_delivered {
                                    VoteOutcome::Unanimous
                                } else {
                                    VoteOutcome::Silent
                                }
                            } else {
                                for (i, ok) in
                                    lane_rep_ok[..hosts_of.len()].iter_mut().enumerate()
                                {
                                    *ok = ok_masks[i] & bit != 0;
                                    if *ok {
                                        lane_rep_vals[i * n_out..(i + 1) * n_out]
                                            .copy_from_slice(
                                                &rep_vals[(i * n + li) * max_out..][..n_out],
                                            );
                                    }
                                }
                                crate::voting::classify_outcome(
                                    &lane_rep_vals[..hosts_of.len() * n_out],
                                    &lane_rep_ok[..hosts_of.len()],
                                    n_out,
                                )
                            };
                            lane.sink.inc(vote_counter(outcome));
                            lane.sink.event(&ObsEvent::Vote {
                                at: now.as_u64(),
                                task: t,
                                outcome,
                                delivered: n_del,
                                replicas: hosts_of.len(),
                            });
                        }
                    }
                }
            }
            if any_obs {
                for (li, lane) in lanes.iter_mut().enumerate() {
                    if obs[li] {
                        lane.sink.inc(names::ROUNDS);
                    }
                }
            }
        }

        BitslicedOutput {
            lanes: n,
            trace,
            invocations,
            delivered_all,
            delivered_extra,
            final_classes: comm_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_classes_partition_and_lookup() {
        let mut cls = LaneClasses::default();
        cls.push(Value::Float(1.0), 0b0011);
        cls.push(Value::Float(2.0), 0b0100);
        cls.push(Value::Float(1.0), 0b1000); // coalesces
        assert_eq!(cls.classes.len(), 2);
        assert_eq!(cls.union(), 0b1111);
        assert_eq!(cls.value_at(0), Value::Float(1.0));
        assert_eq!(cls.value_at(2), Value::Float(2.0));
        assert_eq!(cls.value_at(3), Value::Float(1.0));
        assert_eq!(cls.value_at(5), Value::Unreliable);
        // ⊥ and empty masks are dropped.
        cls.push(Value::Unreliable, 0b1_0000);
        cls.push(Value::Float(9.0), 0);
        assert_eq!(cls.classes.len(), 2);
    }

    #[test]
    fn set_from_lane_values_roundtrips() {
        let vals = [
            Value::Float(5.0),
            Value::Unreliable,
            Value::Float(5.0),
            Value::Int(3),
        ];
        let mut cls = LaneClasses::default();
        cls.set_from_lane_values(&vals);
        for (li, &v) in vals.iter().enumerate() {
            assert_eq!(cls.value_at(li), v);
        }
        assert_eq!(cls.union(), 0b0101 | 0b1000);
    }

    #[test]
    fn packed_trace_extracts_lane_values() {
        let mut t = PackedTrace::new(1);
        let mut cls = LaneClasses::default();
        cls.push(Value::Int(7), 0b01);
        t.record(0, Tick::new(0), &cls);
        cls.clear();
        t.record(0, Tick::new(5), &cls);
        assert_eq!(t.rows[0].len(), 2);
        let (_, s0, l0) = t.rows[0][0];
        assert_eq!(t.value_at(s0, l0, 0), Value::Int(7));
        assert_eq!(t.value_at(s0, l0, 1), Value::Unreliable);
        let (_, s1, l1) = t.rows[0][1];
        assert_eq!(t.value_at(s1, l1, 0), Value::Unreliable);
    }
}
