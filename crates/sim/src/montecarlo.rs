//! Deterministic parallel Monte-Carlo batches.
//!
//! A batch runs `N` independent replications of a seeded simulation. Each
//! replication's seed is derived from the batch's `base_seed` and the
//! replication index with [`derive_seed`] (a SplitMix64 stream jump), so
//! the sequence of per-replication seeds is a pure function of the batch
//! configuration. Replications fan out over [`std::thread::scope`] workers
//! that write into disjoint chunks of the result vector; results are
//! therefore always **merged in replication order**, and a batch produces
//! bit-identical output at any thread count — including `threads: 1` and
//! a hand-written sequential loop over the same derived seeds.
//!
//! Nothing here is specific to the simulator: [`run_batch`] distributes
//! any `job(rep_index, seed)` closure. [`run_replications`] is the
//! convenience layer that drives one compiled [`Simulation`] (which is
//! `Sync`: the round program is immutable after construction) with fresh
//! per-replication behaviors, environment and fault injector.

use crate::behavior::BehaviorMap;
use crate::environment::Environment;
use crate::fault::FaultInjector;
use crate::kernel::{SimConfig, SimOutput, Simulation};

/// Configuration of a Monte-Carlo batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of independent replications.
    pub replications: u64,
    /// Rounds simulated per replication.
    pub rounds: u64,
    /// Base seed; per-replication seeds are [`derive_seed`]`(base, i)`.
    pub base_seed: u64,
    /// Worker threads; `0` uses the machine's available parallelism. The
    /// thread count never affects results, only wall-clock time.
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            replications: 32,
            rounds: 1000,
            base_seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

impl BatchConfig {
    /// The per-replication simulator configuration of replication `rep`.
    #[must_use]
    pub fn sim_config(&self, rep: u64) -> SimConfig {
        SimConfig {
            rounds: self.rounds,
            seed: derive_seed(self.base_seed, rep),
        }
    }
}

/// Derives the seed of replication `rep_index` from `base_seed`: the
/// `rep_index`-th output of the SplitMix64 stream seeded at `base_seed`,
/// computed by jumping the generator's additive state directly to that
/// position (SplitMix64's state advances by a constant, so position `i`
/// is `base + i·γ`).
#[must_use]
pub fn derive_seed(base_seed: u64, rep_index: u64) -> u64 {
    let mut state = base_seed.wrapping_add(rep_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rand::splitmix64(&mut state)
}

/// Runs `job(rep_index, seed)` for every replication of the batch and
/// returns the results in replication order.
///
/// Replications are distributed over scoped worker threads in contiguous
/// chunks; each worker writes into its own disjoint slice, so the merged
/// vector is independent of the thread count and of scheduling order.
pub fn run_batch<T, F>(config: &BatchConfig, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    let n = config.replications as usize;
    if n == 0 {
        return Vec::new();
    }
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        config.threads
    }
    .min(n);

    let run_chunk = |first_rep: usize, slots: &mut [Option<T>]| {
        for (j, slot) in slots.iter_mut().enumerate() {
            let rep = (first_rep + j) as u64;
            *slot = Some(job(rep, derive_seed(config.base_seed, rep)));
        }
    };

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if threads == 1 {
        run_chunk(0, &mut results);
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, slots) in results.chunks_mut(chunk).enumerate() {
                let run_chunk = &run_chunk;
                scope.spawn(move || run_chunk(ci * chunk, slots));
            }
        });
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every replication ran"))
        .collect()
}

/// Distributes `job(&unit, index)` over the units of a work list and
/// returns the results in unit order.
///
/// The generalized sibling of [`run_batch`] for callers whose work items
/// are not one-replication-per-seed — e.g. the campaign layer's
/// bit-sliced lane groups, where one unit covers up to 64 replications.
/// The same determinism argument applies: units are distributed over
/// scoped workers in contiguous chunks writing disjoint slices, so the
/// merged vector is independent of `threads` (with `0` using the
/// machine's available parallelism).
pub fn run_indexed_units<T, U, F>(threads: usize, units: &[U], job: F) -> Vec<T>
where
    T: Send,
    U: Sync,
    F: Fn(&U, usize) -> T + Sync,
{
    let n = units.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
    .min(n);

    let run_chunk = |first: usize, slots: &mut [Option<T>]| {
        for (j, slot) in slots.iter_mut().enumerate() {
            *slot = Some(job(&units[first + j], first + j));
        }
    };

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if threads == 1 {
        run_chunk(0, &mut results);
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, slots) in results.chunks_mut(chunk).enumerate() {
                let run_chunk = &run_chunk;
                scope.spawn(move || run_chunk(ci * chunk, slots));
            }
        });
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every unit ran"))
        .collect()
}

/// Everything one replication mutates while it runs.
pub struct ReplicationContext<'a> {
    /// The task behavior registry.
    pub behaviors: BehaviorMap,
    /// The environment (sensor source / actuator sink).
    pub environment: Box<dyn Environment + 'a>,
    /// The fault injector.
    pub injector: Box<dyn FaultInjector + 'a>,
}

/// Runs a batch of replications of one compiled simulation.
///
/// `setup(rep_index)` builds each replication's mutable context (called
/// inside the worker, so contexts never cross threads); `extract` reduces
/// the replication's [`SimOutput`] to the per-replication result. Results
/// are merged in replication order — see the module docs for the
/// determinism guarantee.
pub fn run_replications<'a, T, S, E>(
    sim: &Simulation<'_>,
    config: &BatchConfig,
    setup: S,
    extract: E,
) -> Vec<T>
where
    T: Send,
    S: Fn(u64) -> ReplicationContext<'a> + Sync,
    E: Fn(u64, SimOutput) -> T + Sync,
{
    run_batch(config, |rep, seed| {
        let mut ctx = setup(rep);
        let out = sim.run(
            &mut ctx.behaviors,
            &mut *ctx.environment,
            &mut *ctx.injector,
            &SimConfig {
                rounds: config.rounds,
                seed,
            },
        );
        extract(rep, out)
    })
}

/// Like [`run_replications`], but each replication also carries a
/// [`Supervisor`] built by `setup` (an online monitor, a degrader, …)
/// which `extract` receives back alongside the [`SimOutput`] — so
/// per-replication alarm logs and first-violation instants survive into
/// the merged results. Determinism is unchanged: supervisors never touch
/// the RNG stream.
///
/// [`Supervisor`]: crate::monitor::Supervisor
pub fn run_supervised_replications<'a, T, M, S, E>(
    sim: &Simulation<'_>,
    config: &BatchConfig,
    setup: S,
    extract: E,
) -> Vec<T>
where
    T: Send,
    M: crate::monitor::Supervisor,
    S: Fn(u64) -> (ReplicationContext<'a>, M) + Sync,
    E: Fn(u64, SimOutput, M) -> T + Sync,
{
    run_batch(config, |rep, seed| {
        let (mut ctx, mut supervisor) = setup(rep);
        let out = sim.run_supervised(
            &mut ctx.behaviors,
            &mut *ctx.environment,
            &mut *ctx.injector,
            &mut supervisor,
            &SimConfig {
                rounds: config.rounds,
                seed,
            },
        );
        extract(rep, out, supervisor)
    })
}

/// Like [`run_supervised_replications`], but each replication also
/// carries a [`MetricsSink`] built by `setup` (typically a fresh
/// `Registry` per replication) which `extract` receives back filled.
///
/// This is the deterministic-aggregation point of the observability
/// layer: because a per-replication registry holds only values that are
/// a deterministic function of that replication, and results come back
/// in replication order regardless of the thread count, merging the
/// extracted registries in result order yields a bit-identical aggregate
/// at any thread count.
///
/// [`MetricsSink`]: logrel_obs::MetricsSink
pub fn run_observed_replications<'a, T, Sup, M, S, E>(
    sim: &Simulation<'_>,
    config: &BatchConfig,
    setup: S,
    extract: E,
) -> Vec<T>
where
    T: Send,
    Sup: crate::monitor::Supervisor,
    M: logrel_obs::MetricsSink,
    S: Fn(u64) -> (ReplicationContext<'a>, Sup, M) + Sync,
    E: Fn(u64, SimOutput, Sup, M) -> T + Sync,
{
    run_batch(config, |rep, seed| {
        let (mut ctx, mut supervisor, mut sink) = setup(rep);
        let out = sim.run_observed(
            &mut ctx.behaviors,
            &mut *ctx.environment,
            &mut *ctx.injector,
            &mut supervisor,
            &mut sink,
            &SimConfig {
                rounds: config.rounds,
                seed,
            },
        );
        extract(rep, out, supervisor, sink)
    })
}

/// The arithmetic mean of a slice (0 for an empty slice).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::ConstantEnvironment;
    use crate::fault::ProbabilisticFaults;
    use logrel_core::{
        Architecture, CommunicatorDecl, HostDecl, Implementation, Reliability, SensorDecl,
        SensorId, Specification, TaskDecl, TimeDependentImplementation, Value, ValueType,
    };

    struct Sys {
        spec: Specification,
        arch: Architecture,
        imp: TimeDependentImplementation,
    }

    fn pipeline() -> Sys {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("double").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab
            .host(HostDecl::new("h1", Reliability::new(0.9).unwrap()))
            .unwrap();
        ab.sensor(SensorDecl::new("sn", Reliability::new(0.95).unwrap()))
            .unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        Sys {
            spec,
            arch,
            imp: imp.into(),
        }
    }

    fn batch_outputs(sys: &Sys, threads: usize) -> Vec<SimOutput> {
        let sim = Simulation::new(&sys.spec, &sys.arch, &sys.imp);
        let config = BatchConfig {
            replications: 13,
            rounds: 100,
            base_seed: 2024,
            threads,
        };
        run_replications(
            &sim,
            &config,
            |_rep| ReplicationContext {
                behaviors: BehaviorMap::new(),
                environment: Box::new(ConstantEnvironment::new(Value::Float(1.0))),
                injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
            },
            |_rep, out| out,
        )
    }

    /// The whole merged batch must be bit-identical at any thread count
    /// and equal to a plain sequential loop over the same derived seeds.
    #[test]
    fn batch_is_bit_identical_across_thread_counts() {
        let sys = pipeline();
        let one = batch_outputs(&sys, 1);
        for threads in [2usize, 8] {
            assert_eq!(one, batch_outputs(&sys, threads), "threads = {threads}");
        }

        let sim = Simulation::new(&sys.spec, &sys.arch, &sys.imp);
        let sequential: Vec<SimOutput> = (0..13u64)
            .map(|rep| {
                sim.run(
                    &mut BehaviorMap::new(),
                    &mut ConstantEnvironment::new(Value::Float(1.0)),
                    &mut ProbabilisticFaults::from_architecture(&sys.arch),
                    &SimConfig {
                        rounds: 100,
                        seed: derive_seed(2024, rep),
                    },
                )
            })
            .collect();
        assert_eq!(one, sequential);
    }

    /// More replications than threads, fewer replications than threads,
    /// and the empty batch all merge correctly.
    #[test]
    fn awkward_batch_shapes() {
        let cfg = |replications, threads| BatchConfig {
            replications,
            rounds: 0,
            base_seed: 1,
            threads,
        };
        let ids = |c: &BatchConfig| run_batch(c, |rep, _seed| rep);
        assert_eq!(ids(&cfg(7, 16)), (0..7).collect::<Vec<_>>());
        assert_eq!(ids(&cfg(16, 7)), (0..16).collect::<Vec<_>>());
        assert_eq!(ids(&cfg(0, 4)), Vec::<u64>::new());
    }

    /// Seed derivation is a pure function and distinct per replication.
    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let again: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }
}
