//! Coverage-guided scenario fuzzing over the campaign harness.
//!
//! The fuzzer searches the space of scripted fault timelines
//! ([`Scenario`]) for **monitor misses**: scenarios under which some
//! communicator's plain windowed mean dips below its declared LRC µ_c
//! (a ground-truth violation) while the online [`LrcMonitor`] never
//! raised an alarm at or before the dip — the Hoeffding band kept the
//! violation statistically unconfident, so the supervisor slept through
//! it. Correlated events (common-cause groups, partitions, wear-out,
//! adaptive adversaries) are exactly the mutations that manufacture such
//! near-threshold degradation, which is why the fuzzer ships with the
//! correlated-failure ecology.
//!
//! # Algorithm
//!
//! Classic coverage-guided mutation fuzzing, specialized to the `.scn`
//! event format:
//!
//! 1. keep a corpus of parsed scenarios, seeded with the input scenario;
//! 2. each iteration picks a corpus parent and applies one mutation —
//!    insert a random event, delete an event, widen an event's window,
//!    retarget an event's host(s), or splice two corpus parents;
//! 3. the candidate runs a short deterministic campaign
//!    ([`run_campaign_observed`]) and is reduced to a **coverage
//!    signature**: the log2-quantized vote-outcome class mix, one
//!    alarm/violation ordering class per communicator, and the scripted
//!    per-host availability decile;
//! 4. candidates with a previously unseen signature join the corpus;
//! 5. candidates that exhibit a monitor miss are **shrunk** — greedy
//!    event deletion, then window narrowing, each re-checked by
//!    replaying the campaign — and the minimal reproducer is emitted as
//!    a `.scn` artifact with a full campaign echo in comments.
//!
//! Everything is deterministic in [`FuzzConfig::seed`]: the mutation RNG
//! is a seeded [`StdRng`], every candidate campaign runs with the same
//! fixed base seed (so a reproducer replays with the seed echoed in its
//! header), and the corpus and reproducer artifacts come out in a fixed
//! order with fixed names. Two runs of the same configuration produce
//! byte-identical artifact sets at any thread count.
//!
//! The module is filesystem-free: artifacts are returned as
//! (name, contents) pairs for the caller (`htlc fuzz`) to write.
//!
//! [`LrcMonitor`]: crate::monitor::LrcMonitor

use crate::campaign::{
    run_campaign, run_campaign_observed, CampaignConfig, CampaignError, ScenarioReport,
};
use crate::kernel::Simulation;
use crate::montecarlo::ReplicationContext;
use crate::scenario::{HostSet, Scenario, ScenarioEvent};
use logrel_core::{HostId, Specification, Tick};
use logrel_obs::{names, MetricsSink, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of mutation iterations (candidates attempted).
    pub iters: u64,
    /// Seed of the mutation RNG; the whole run is deterministic in it.
    pub seed: u64,
    /// The per-candidate campaign (replications, rounds, base seed,
    /// monitor window, lanes). Every candidate — including shrink
    /// re-checks — runs with exactly this configuration, so a found
    /// reproducer replays from its echoed parameters alone.
    pub campaign: CampaignConfig,
    /// Hard cap on events per candidate (spliced children are truncated).
    pub max_events: usize,
    /// Extra comment lines for reproducer artifacts (e.g. the exact
    /// `htlc inject` replay command); written verbatim after `# `.
    pub echo: Vec<String>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 200,
            seed: 0xF022,
            campaign: CampaignConfig::default(),
            max_events: 32,
            echo: Vec::new(),
        }
    }
}

/// One artifact produced by the fuzzer, to be written by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzArtifact {
    /// Deterministic file name (`cov-0007.scn`, `miss-001.scn`).
    pub name: String,
    /// Full file contents (canonical scenario text, possibly with a
    /// comment header).
    pub contents: String,
}

/// The result of a fuzzing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzOutcome {
    /// Candidates attempted (= [`FuzzConfig::iters`]).
    pub iters: u64,
    /// Candidates rejected before execution (validation/bounds errors).
    pub invalid: u64,
    /// Candidates kept for a novel coverage signature.
    pub novel: u64,
    /// Distinct coverage signatures seen (including the seed scenario's).
    pub signatures: u64,
    /// Monitor misses found (before reproducer deduplication).
    pub monitor_misses: u64,
    /// Shrink campaign re-checks executed across all misses.
    pub shrink_steps: u64,
    /// Coverage corpus, in discovery order (`cov-%04d.scn`; entry 0 is
    /// the seed scenario).
    pub corpus: Vec<FuzzArtifact>,
    /// Shrunk monitor-miss reproducers, deduplicated by canonical text,
    /// in discovery order (`miss-%03d.scn`).
    pub reproducers: Vec<FuzzArtifact>,
}

/// The coverage signature of one candidate campaign: vote-outcome class
/// mix (log2-quantized), per-communicator alarm/violation ordering
/// class, and per-host scripted availability decile.
fn signature(registry: &Registry, report: &ScenarioReport) -> Vec<u8> {
    let mut sig = Vec::new();
    for name in [
        names::VOTE_UNANIMOUS,
        names::VOTE_MAJORITY,
        names::VOTE_TIE,
        names::VOTE_SILENT,
    ] {
        let v = registry.counter(name);
        sig.push(if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as u8
        });
    }
    for c in &report.comms {
        // 0 = quiet, 1 = alarm without ground-truth dip, 2 = dip with a
        // prior alarm (monitor did its job), 3 = dip the monitor missed.
        sig.push(match (c.violations > 0, c.alarms_raised > 0) {
            (false, false) => 0,
            (false, true) => 1,
            (true, _) if c.alarms_before_violation > 0 => 2,
            (true, _) => 3,
        });
    }
    for &a in &report.host_availability {
        sig.push(((a * 10.0).floor() as u8).min(9));
    }
    sig
}

/// Does the report exhibit a monitor miss — some communicator with a
/// ground-truth µ-violation in at least one replication and no
/// replication where an alarm preceded the dip?
fn is_miss(report: &ScenarioReport) -> bool {
    report
        .comms
        .iter()
        .any(|c| c.violations > 0 && c.alarms_before_violation == 0)
}

/// The `[from, until)` window of an event, if it has one.
fn window(e: &ScenarioEvent) -> Option<(Tick, Tick)> {
    match *e {
        ScenarioEvent::Crash { .. } | ScenarioEvent::Rejoin { .. } => None,
        ScenarioEvent::Flaky { from, until, .. }
        | ScenarioEvent::StuckSensor { from, until, .. }
        | ScenarioEvent::Burst { from, until, .. }
        | ScenarioEvent::CommonCause { from, until, .. }
        | ScenarioEvent::Partition { from, until, .. }
        | ScenarioEvent::Wearout { from, until, .. }
        | ScenarioEvent::Adversary { from, until, .. } => Some((from, until)),
    }
}

/// The same event with its window replaced (no-op for point events).
fn with_window(e: ScenarioEvent, from: Tick, until: Tick) -> ScenarioEvent {
    match e {
        ScenarioEvent::Crash { .. } | ScenarioEvent::Rejoin { .. } => e,
        ScenarioEvent::Flaky { host, up, .. } => ScenarioEvent::Flaky {
            host,
            from,
            until,
            up,
        },
        ScenarioEvent::StuckSensor { comm, .. } => ScenarioEvent::StuckSensor { comm, from, until },
        ScenarioEvent::Burst {
            p_enter,
            p_exit,
            loss,
            ..
        } => ScenarioEvent::Burst {
            from,
            until,
            p_enter,
            p_exit,
            loss,
        },
        ScenarioEvent::CommonCause { hosts, p, .. } => ScenarioEvent::CommonCause {
            hosts,
            from,
            until,
            p,
        },
        ScenarioEvent::Partition { hosts, .. } => ScenarioEvent::Partition { hosts, from, until },
        ScenarioEvent::Wearout {
            host, shape, scale, ..
        } => ScenarioEvent::Wearout {
            host,
            from,
            until,
            shape,
            scale,
        },
        ScenarioEvent::Adversary { hold, .. } => ScenarioEvent::Adversary { from, until, hold },
    }
}

/// A random host group of 1–3 members (bounded by the host count), or
/// `None` when the architecture has no hosts to pick from — mutations
/// treat that as "skip" rather than panicking on a degenerate system.
fn random_hosts(rng: &mut StdRng, host_count: usize) -> Option<HostSet> {
    if host_count == 0 {
        return None;
    }
    let k = rng.gen_range(1..=host_count.min(3));
    let mut picked = BTreeSet::new();
    while picked.len() < k {
        picked.insert(rng.gen_range(0..host_count) as u32);
    }
    HostSet::from_hosts(picked.into_iter().map(HostId::new)).ok()
}

/// A random `[from, until)` window within the horizon.
fn random_window(rng: &mut StdRng, horizon: u64) -> (Tick, Tick) {
    let from = rng.gen_range(0..horizon);
    let len = rng.gen_range(1..=horizon - from);
    (Tick::new(from), Tick::new(from + len))
}

/// A fresh random event of any kind, or `None` when the system is too
/// degenerate to target (no hosts, no horizon, or — for the sensor
/// kind — no communicators).
fn random_event(
    rng: &mut StdRng,
    host_count: usize,
    comm_count: usize,
    horizon: u64,
) -> Option<ScenarioEvent> {
    if host_count == 0 || horizon == 0 {
        return None;
    }
    let host = HostId::new(rng.gen_range(0..host_count) as u32);
    Some(match rng.gen_range(0..9u32) {
        0 => ScenarioEvent::Crash {
            host,
            at: Tick::new(rng.gen_range(0..horizon)),
        },
        1 => ScenarioEvent::Rejoin {
            host,
            at: Tick::new(rng.gen_range(0..horizon)),
        },
        2 => {
            let (from, until) = random_window(rng, horizon);
            ScenarioEvent::Flaky {
                host,
                from,
                until,
                up: rng.gen_range(0.5..1.0),
            }
        }
        3 => {
            if comm_count == 0 {
                return None;
            }
            let (from, until) = random_window(rng, horizon);
            ScenarioEvent::StuckSensor {
                comm: logrel_core::CommunicatorId::new(rng.gen_range(0..comm_count) as u32),
                from,
                until,
            }
        }
        4 => {
            let (from, until) = random_window(rng, horizon);
            ScenarioEvent::Burst {
                from,
                until,
                p_enter: rng.gen_range(0.0..0.2),
                p_exit: rng.gen_range(0.1..1.0),
                loss: rng.gen_range(0.2..1.0),
            }
        }
        5 => {
            let (from, until) = random_window(rng, horizon);
            ScenarioEvent::CommonCause {
                hosts: random_hosts(rng, host_count)?,
                from,
                until,
                p: rng.gen_range(0.0..0.5),
            }
        }
        6 => {
            let (from, until) = random_window(rng, horizon);
            ScenarioEvent::Partition {
                hosts: random_hosts(rng, host_count)?,
                from,
                until,
            }
        }
        7 => {
            let (from, until) = random_window(rng, horizon);
            ScenarioEvent::Wearout {
                host,
                from,
                until,
                shape: rng.gen_range(0.5..3.0),
                scale: rng.gen_range((horizon / 8).max(1)..horizon) as f64,
            }
        }
        _ => {
            let (from, until) = random_window(rng, horizon);
            ScenarioEvent::Adversary {
                from,
                until,
                hold: rng.gen_range(1..=(horizon / 4).max(1)),
            }
        }
    })
}

/// One mutation of `parent` (possibly invalid — the caller validates).
fn mutate(
    rng: &mut StdRng,
    parent: &[ScenarioEvent],
    corpus: &[Vec<ScenarioEvent>],
    host_count: usize,
    comm_count: usize,
    horizon: u64,
    max_events: usize,
) -> Vec<ScenarioEvent> {
    let mut events = parent.to_vec();
    match rng.gen_range(0..5u32) {
        // Insert a fresh random event (skipped on systems too degenerate
        // to target — the unchanged parent is simply not novel).
        0 => {
            if events.len() < max_events {
                if let Some(e) = random_event(rng, host_count, comm_count, horizon) {
                    let at = rng.gen_range(0..=events.len());
                    events.insert(at, e);
                }
            }
        }
        // Delete one event.
        1 => {
            if !events.is_empty() {
                let at = rng.gen_range(0..events.len());
                events.remove(at);
            }
        }
        // Widen one event's window (double its length).
        2 => {
            if !events.is_empty() {
                let at = rng.gen_range(0..events.len());
                if let Some((from, until)) = window(&events[at]) {
                    let len = until.as_u64() - from.as_u64();
                    events[at] =
                        with_window(events[at], from, Tick::new(from.as_u64() + 2 * len));
                }
            }
        }
        // Retarget one event's host or host group (a no-op skip on
        // host-free architectures rather than a panic).
        3 => {
            if !events.is_empty() && host_count > 0 {
                let at = rng.gen_range(0..events.len());
                let host = HostId::new(rng.gen_range(0..host_count) as u32);
                events[at] = match events[at] {
                    ScenarioEvent::Crash { at, .. } => ScenarioEvent::Crash { host, at },
                    ScenarioEvent::Rejoin { at, .. } => ScenarioEvent::Rejoin { host, at },
                    ScenarioEvent::Flaky {
                        from, until, up, ..
                    } => ScenarioEvent::Flaky {
                        host,
                        from,
                        until,
                        up,
                    },
                    ScenarioEvent::Wearout {
                        from,
                        until,
                        shape,
                        scale,
                        ..
                    } => ScenarioEvent::Wearout {
                        host,
                        from,
                        until,
                        shape,
                        scale,
                    },
                    ScenarioEvent::CommonCause {
                        hosts,
                        from,
                        until,
                        p,
                    } => ScenarioEvent::CommonCause {
                        hosts: random_hosts(rng, host_count).unwrap_or(hosts),
                        from,
                        until,
                        p,
                    },
                    ScenarioEvent::Partition { hosts, from, until } => ScenarioEvent::Partition {
                        hosts: random_hosts(rng, host_count).unwrap_or(hosts),
                        from,
                        until,
                    },
                    e => e,
                };
            }
        }
        // Splice: parent prefix + another corpus member's suffix.
        _ => {
            let other = &corpus[rng.gen_range(0..corpus.len())];
            let cut_a = rng.gen_range(0..=events.len());
            let cut_b = rng.gen_range(0..=other.len());
            events.truncate(cut_a);
            events.extend_from_slice(&other[cut_b..]);
            events.truncate(max_events);
        }
    }
    events
}

/// Renders a reproducer artifact: echo lines, campaign parameters and
/// the canonical scenario text.
fn render_reproducer(scenario: &Scenario, config: &FuzzConfig) -> String {
    let mut out = String::new();
    out.push_str("# monitor-miss reproducer (found and shrunk by `htlc fuzz`)\n");
    out.push_str("# a communicator's windowed mean dips below its LRC with no prior alarm\n");
    for line in &config.echo {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    let b = &config.campaign.batch;
    out.push_str(&format!(
        "# campaign: replications={} rounds={} seed={:#x} window={} confidence={}\n",
        b.replications,
        b.rounds,
        b.base_seed,
        config.campaign.monitor.window,
        config.campaign.monitor.confidence,
    ));
    out.push_str(&scenario.to_string());
    out
}

/// Runs a coverage-guided fuzzing campaign from `seed_scenario`.
///
/// `setup` builds each replication's base context exactly as for
/// [`run_campaign`]; every candidate campaign wraps it in the candidate's
/// scenario layers. Fuzz counters (`logrel_fuzz_*`) and the signature
/// cardinality gauge are recorded on `sink` once at the end of the run.
///
/// Fails only if the *seed* scenario itself does not fit the system
/// (bounds error); invalid mutants are counted and skipped.
pub fn run_fuzz<'a, S>(
    sim: &Simulation<'_>,
    spec: &Specification,
    seed_scenario: &Scenario,
    host_count: usize,
    config: &FuzzConfig,
    setup: S,
    sink: &mut dyn MetricsSink,
) -> Result<FuzzOutcome, CampaignError>
where
    S: Fn(u64) -> ReplicationContext<'a> + Sync,
{
    let horizon =
        (config.campaign.batch.rounds * spec.round_period().as_u64()).max(1);
    let comm_count = spec.communicator_count();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let evaluate = |scenario: &Scenario| -> Result<(Vec<u8>, ScenarioReport), CampaignError> {
        let mut registry = Registry::new();
        let report = run_campaign_observed(
            sim,
            spec,
            scenario,
            host_count,
            &config.campaign,
            &setup,
            &[],
            &mut registry,
            0,
        )?;
        let sig = signature(&registry, &report);
        Ok((sig, report))
    };
    // Shrink re-checks only need the report, not the signature.
    let check = |scenario: &Scenario| -> bool {
        run_campaign(
            sim,
            spec,
            scenario,
            host_count,
            &config.campaign,
            &setup,
            &[],
        )
        .is_ok_and(|report| is_miss(&report))
    };

    let mut outcome = FuzzOutcome {
        iters: 0,
        invalid: 0,
        novel: 0,
        signatures: 0,
        monitor_misses: 0,
        shrink_steps: 0,
        corpus: Vec::new(),
        reproducers: Vec::new(),
    };
    let mut seen: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut corpus: Vec<Vec<ScenarioEvent>> = Vec::new();
    let mut miss_texts: BTreeSet<String> = BTreeSet::new();

    // The seed scenario anchors the corpus and the signature set; a
    // bounds failure here is a caller error and aborts the run.
    let (seed_sig, seed_report) = evaluate(seed_scenario)?;
    seen.insert(seed_sig);
    corpus.push(seed_scenario.events().to_vec());
    outcome.corpus.push(FuzzArtifact {
        name: "cov-0000.scn".into(),
        contents: seed_scenario.to_string(),
    });
    if is_miss(&seed_report) {
        outcome.monitor_misses += 1;
        let (shrunk, steps) = shrink(seed_scenario.clone(), &check);
        outcome.shrink_steps += steps;
        record_miss(&shrunk, config, &mut miss_texts, &mut outcome);
    }

    for _ in 0..config.iters {
        outcome.iters += 1;
        let parent = &corpus[rng.gen_range(0..corpus.len())];
        let events = mutate(
            &mut rng,
            parent,
            &corpus,
            host_count,
            comm_count,
            horizon,
            config.max_events,
        );
        let Ok(candidate) = Scenario::from_events(events) else {
            outcome.invalid += 1;
            continue;
        };
        let Ok((sig, report)) = evaluate(&candidate) else {
            outcome.invalid += 1;
            continue;
        };
        if seen.insert(sig) {
            outcome.novel += 1;
            outcome.corpus.push(FuzzArtifact {
                name: format!("cov-{:04}.scn", corpus.len()),
                contents: candidate.to_string(),
            });
            corpus.push(candidate.events().to_vec());
        }
        if is_miss(&report) {
            outcome.monitor_misses += 1;
            let (shrunk, steps) = shrink(candidate, &check);
            outcome.shrink_steps += steps;
            record_miss(&shrunk, config, &mut miss_texts, &mut outcome);
        }
    }

    outcome.signatures = seen.len() as u64;
    sink.add(names::FUZZ_ITERS, outcome.iters);
    sink.add(names::FUZZ_NOVEL, outcome.novel);
    sink.add(names::FUZZ_MONITOR_MISS, outcome.monitor_misses);
    sink.add(names::FUZZ_SHRINK_STEPS, outcome.shrink_steps);
    sink.set_gauge(names::FUZZ_SIGNATURES, outcome.signatures as f64);
    Ok(outcome)
}

/// Appends a shrunk reproducer artifact unless its canonical text is
/// already recorded.
fn record_miss(
    shrunk: &Scenario,
    config: &FuzzConfig,
    miss_texts: &mut BTreeSet<String>,
    outcome: &mut FuzzOutcome,
) {
    let text = shrunk.to_string();
    if miss_texts.insert(text) {
        outcome.reproducers.push(FuzzArtifact {
            name: format!("miss-{:03}.scn", outcome.reproducers.len()),
            contents: render_reproducer(shrunk, config),
        });
    }
}

/// Greedy shrinking: drop events one at a time, then halve event
/// windows, re-checking the miss by campaign replay after every step.
/// Returns the minimal reproducer and the number of re-checks executed.
fn shrink(mut scenario: Scenario, check: &dyn Fn(&Scenario) -> bool) -> (Scenario, u64) {
    let mut steps = 0u64;
    loop {
        let mut changed = false;
        // Pass 1: event deletion.
        let mut i = 0;
        while i < scenario.events().len() {
            if scenario.events().len() == 1 {
                break; // keep at least one event: an empty file says nothing
            }
            let mut events = scenario.events().to_vec();
            events.remove(i);
            if let Ok(candidate) = Scenario::from_events(events) {
                steps += 1;
                if check(&candidate) {
                    scenario = candidate;
                    changed = true;
                    continue; // same index now holds the next event
                }
            }
            i += 1;
        }
        // Pass 2: window narrowing (halve from either end).
        for i in 0..scenario.events().len() {
            let Some((from, until)) = window(&scenario.events()[i]) else {
                continue;
            };
            let len = until.as_u64() - from.as_u64();
            if len < 2 {
                continue;
            }
            let half = len / 2;
            for (nf, nu) in [
                (from, Tick::new(from.as_u64() + half)),
                (Tick::new(until.as_u64() - half), until),
            ] {
                let mut events = scenario.events().to_vec();
                events[i] = with_window(events[i], nf, nu);
                if let Ok(candidate) = Scenario::from_events(events) {
                    steps += 1;
                    if check(&candidate) {
                        scenario = candidate;
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            return (scenario, steps);
        }
    }
}
