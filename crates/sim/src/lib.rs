//! Discrete-event simulation of the distributed runtime.
//!
//! The paper's semantics (§2) defines an execution as a sequence of
//! communicator values at harmonic time instants, produced by replicated
//! tasks on fail-silent hosts that broadcast their outputs and vote. This
//! crate executes that semantics directly:
//!
//! * [`kernel`] — the deterministic, seeded simulation loop: communicator
//!   updates (environment sensing, replica voting, value persistence),
//!   task reads with the three input failure models, replica execution
//!   with fault injection, and broadcast delivery;
//! * [`behavior`] — task function registries ([`TaskBehavior`]);
//! * [`environment`] — the world outside the program: sensor value
//!   sources and actuator sinks (a closed-loop plant implements this);
//! * [`fault`] — fault injectors: per-invocation transient faults from the
//!   architecture's reliabilities, scheduled "unplug" events, and
//!   compositions;
//! * [`scenario`] — scripted fault timelines (crash/rejoin, flaky hosts,
//!   burst broadcast loss, stuck sensors, common-cause host groups,
//!   network partitions, Weibull wear-out, adaptive adversaries) with a
//!   replayable, versioned text format;
//! * [`fuzz`] — coverage-guided mutation fuzzing of scenario timelines,
//!   hunting monitor misses (µ-violations the LRC monitor slept
//!   through) and shrinking them to minimal `.scn` reproducers;
//! * [`monitor`] — online LRC monitoring with Hoeffding bands and
//!   graceful-degradation supervisors;
//! * [`montecarlo`] — deterministic parallel Monte-Carlo batches: derived
//!   per-replication seeds, scoped worker threads, replication-order
//!   merging (bit-identical results at any thread count);
//! * [`campaign`] — scenario sweeps over the Monte-Carlo harness with
//!   per-communicator reliability/availability/alarm reports;
//! * [`trace`] — recorded traces, their reliability abstraction ρ and
//!   limit averages;
//! * [`emrun`] — cross-validation of the E-machine code generator against
//!   the kernel's event sequence.
//!
//! A key simplification, justified by the paper's assumptions: because the
//! broadcast is atomic (a lost broadcast reaches *no* host) and all
//! replicas of a task produce identical outputs, all replications of a
//! communicator hold identical values at read time — so the kernel keeps
//! one logical copy per communicator, and per-replica state reduces to
//! success/failure of each invocation. Network partitions refine this
//! without breaking it: a replica cut off from *any* host that reads its
//! outputs counts as silent for the round (its broadcast did not reach
//! the full audience), so delivered values remain identical everywhere.
//!
//! [`TaskBehavior`]: behavior::TaskBehavior

pub mod behavior;
pub mod bitslice;
pub mod campaign;
pub mod cosim;
pub mod emrun;
pub mod environment;
pub mod fault;
pub mod fuzz;
pub mod kernel;
pub mod monitor;
pub mod montecarlo;
pub mod scenario;
pub mod trace;
pub mod voting;

pub use behavior::{BehaviorMap, TaskBehavior};
pub use bitslice::{BitslicedOutput, LaneContext, PackedTrace};
pub use campaign::{
    aggregate_campaign, plan_units, run_campaign, run_campaign_observed, run_campaign_unit,
    CampaignConfig, CampaignError, CampaignUnit, CommunicatorReport, LaneMode, RepStats,
    ScenarioReport,
};
pub use environment::{ConstantEnvironment, Environment};
pub use fault::{
    CorruptingFaults, FaultInjector, HostSilencer, NoFaults, PermanentFaults,
    ProbabilisticFaults, UnplugAt,
};
pub use fuzz::{run_fuzz, FuzzArtifact, FuzzConfig, FuzzOutcome};
pub use kernel::{SimBuildError, SimConfig, SimOutput, Simulation};
pub use monitor::{
    Alarm, AlarmKind, DegradationRule, Degrader, LrcMonitor, MonitorConfig, NoSupervisor,
    Response, Supervisor,
};
pub use montecarlo::{
    derive_seed, run_batch, run_indexed_units, run_observed_replications, run_replications,
    run_supervised_replications, BatchConfig, ReplicationContext,
};
pub use scenario::{
    HostSet, Scenario, ScenarioEnvironment, ScenarioError, ScenarioEvent, ScenarioInjector,
    ScenarioSymbols,
};
pub use trace::Trace;
pub use voting::{classify_outcome, vote, vote_into, VotingStrategy};
