//! Discrete-event simulation of the distributed runtime.
//!
//! The paper's semantics (§2) defines an execution as a sequence of
//! communicator values at harmonic time instants, produced by replicated
//! tasks on fail-silent hosts that broadcast their outputs and vote. This
//! crate executes that semantics directly:
//!
//! * [`kernel`] — the deterministic, seeded simulation loop: communicator
//!   updates (environment sensing, replica voting, value persistence),
//!   task reads with the three input failure models, replica execution
//!   with fault injection, and broadcast delivery;
//! * [`behavior`] — task function registries ([`TaskBehavior`]);
//! * [`environment`] — the world outside the program: sensor value
//!   sources and actuator sinks (a closed-loop plant implements this);
//! * [`fault`] — fault injectors: per-invocation transient faults from the
//!   architecture's reliabilities, scheduled "unplug" events, and
//!   compositions;
//! * [`montecarlo`] — deterministic parallel Monte-Carlo batches: derived
//!   per-replication seeds, scoped worker threads, replication-order
//!   merging (bit-identical results at any thread count);
//! * [`trace`] — recorded traces, their reliability abstraction ρ and
//!   limit averages;
//! * [`emrun`] — cross-validation of the E-machine code generator against
//!   the kernel's event sequence.
//!
//! A key simplification, justified by the paper's assumptions: because the
//! broadcast is atomic (a lost broadcast reaches *no* host) and all
//! replicas of a task produce identical outputs, all replications of a
//! communicator hold identical values at read time — so the kernel keeps
//! one logical copy per communicator, and per-replica state reduces to
//! success/failure of each invocation.
//!
//! [`TaskBehavior`]: behavior::TaskBehavior

pub mod behavior;
pub mod cosim;
pub mod emrun;
pub mod environment;
pub mod fault;
pub mod kernel;
pub mod montecarlo;
pub mod trace;
pub mod voting;

pub use behavior::{BehaviorMap, TaskBehavior};
pub use environment::{ConstantEnvironment, Environment};
pub use fault::{
    CorruptingFaults, FaultInjector, NoFaults, PermanentFaults, ProbabilisticFaults, UnplugAt,
};
pub use kernel::{SimConfig, SimOutput, Simulation};
pub use montecarlo::{
    derive_seed, run_batch, run_replications, BatchConfig, ReplicationContext,
};
pub use trace::Trace;
pub use voting::{vote, vote_into, VotingStrategy};
