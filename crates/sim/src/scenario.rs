//! Scripted fault scenarios with deterministic, replayable timelines.
//!
//! A [`Scenario`] is a list of [`ScenarioEvent`]s — host crashes and
//! rejoins, intermittent ("flaky") host windows, stuck-at sensor windows
//! and correlated broadcast burst loss via a Gilbert–Elliott two-state
//! channel — that layers over any inner [`FaultInjector`] through
//! [`ScenarioInjector`] and over any [`Environment`] through
//! [`ScenarioEnvironment`]. Scenarios serialize to a small line-oriented
//! text format (see [`Scenario::parse`]); the canonical rendering
//! round-trips exactly, so a replay from the serialized form is
//! bit-identical to the original run.
//!
//! # Text format
//!
//! One event per line, `#` starts a comment, blank lines are ignored:
//!
//! ```text
//! # crash host 1 at instant 125000, bring it back at 200000
//! crash host=1 at=125000
//! rejoin host=1 at=200000
//! # host 2 only answers 80% of invocations during the window
//! flaky host=2 from=0 until=50000 up=0.8
//! # sensor-fed communicator 0 freezes its last value in the window
//! stuck comm=0 from=1000 until=2000
//! # Gilbert–Elliott burst loss on the broadcast channel
//! burst from=0 until=100000 enter=0.01 exit=0.2 loss=0.9
//! ```
//!
//! Instants are ticks; windows are half-open `[from, until)`. Crashed
//! hosts are fail-silent on every channel (no execution, no broadcast,
//! no corruption) until their `rejoin`; the kernel then applies the
//! warm-up rule via [`FaultInjector::rejoined_at`]. Flaky windows are
//! transient — they never trigger warm-up. All scenario randomness is
//! drawn from the simulation's seeded RNG in a fixed order (one flaky
//! draw per host and instant, one chain-advance plus one loss draw per
//! burst window and broadcast instant), so runs remain bit-reproducible
//! and the inner injector's draw sequence is unperturbed.

use crate::environment::Environment;
use crate::fault::FaultInjector;
use logrel_core::{CommunicatorId, HostId, SensorId, Tick, Value};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// One scripted fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioEvent {
    /// `host` goes fail-silent at `at` (and stays down until a `Rejoin`).
    Crash {
        /// The crashing host.
        host: HostId,
        /// Crash instant.
        at: Tick,
    },
    /// `host` returns to service at `at`.
    Rejoin {
        /// The rejoining host.
        host: HostId,
        /// Rejoin instant.
        at: Tick,
    },
    /// During `[from, until)`, `host` answers each instant only with
    /// probability `up` (applies to execution and broadcast alike).
    Flaky {
        /// The intermittent host.
        host: HostId,
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
        /// Per-instant availability in `[0, 1]`.
        up: f64,
    },
    /// During `[from, until)`, the sensor-fed communicator `comm` keeps
    /// re-delivering the last value sensed before the window (a stuck-at
    /// sensor: reliable but stale).
    StuckSensor {
        /// The frozen sensor-fed communicator.
        comm: CommunicatorId,
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
    },
    /// During `[from, until)`, the broadcast channel runs a
    /// Gilbert–Elliott chain: Good→Bad with probability `p_enter` and
    /// Bad→Good with `p_exit` per broadcast instant; in the Bad state
    /// each broadcast is lost with probability `loss`.
    Burst {
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
        /// Per-instant Good→Bad transition probability.
        p_enter: f64,
        /// Per-instant Bad→Good transition probability.
        p_exit: f64,
        /// Loss probability per broadcast while in the Bad state.
        loss: f64,
    },
}

impl fmt::Display for ScenarioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScenarioEvent::Crash { host, at } => {
                write!(f, "crash host={} at={}", host.index(), at.as_u64())
            }
            ScenarioEvent::Rejoin { host, at } => {
                write!(f, "rejoin host={} at={}", host.index(), at.as_u64())
            }
            ScenarioEvent::Flaky {
                host,
                from,
                until,
                up,
            } => write!(
                f,
                "flaky host={} from={} until={} up={}",
                host.index(),
                from.as_u64(),
                until.as_u64(),
                up
            ),
            ScenarioEvent::StuckSensor { comm, from, until } => write!(
                f,
                "stuck comm={} from={} until={}",
                comm.index(),
                from.as_u64(),
                until.as_u64()
            ),
            ScenarioEvent::Burst {
                from,
                until,
                p_enter,
                p_exit,
                loss,
            } => write!(
                f,
                "burst from={} until={} enter={} exit={} loss={}",
                from.as_u64(),
                until.as_u64(),
                p_enter,
                p_exit,
                loss
            ),
        }
    }
}

/// A scripted fault timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    events: Vec<ScenarioEvent>,
}

/// A parse or validation failure, with the offending 1-based line (0 for
/// whole-scenario validation errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number; 0 for validation errors without a line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "scenario line {}: {}", self.line, self.message)
        } else {
            write!(f, "scenario: {}", self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Resolves names in scenario text to model ids, so scenario files may
/// say `crash host=main_a` against a compiled HTL program. Numeric
/// indices are always accepted.
pub trait ScenarioSymbols {
    /// The host named `name`, if any.
    fn host(&self, name: &str) -> Option<HostId>;
    /// The communicator named `name`, if any.
    fn communicator(&self, name: &str) -> Option<CommunicatorId>;
}

/// The no-symbols resolver: only numeric indices parse.
struct NoSymbols;

impl ScenarioSymbols for NoSymbols {
    fn host(&self, _name: &str) -> Option<HostId> {
        None
    }
    fn communicator(&self, _name: &str) -> Option<CommunicatorId> {
        None
    }
}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        message: message.into(),
    }
}

/// `key=value` fields of one line, in order.
fn fields(rest: &str, line: usize) -> Result<Vec<(&str, &str)>, ScenarioError> {
    rest.split_whitespace()
        .map(|kv| {
            kv.split_once('=')
                .ok_or_else(|| err(line, format!("expected key=value, got `{kv}`")))
        })
        .collect()
}

struct LineParser<'a> {
    fields: Vec<(&'a str, &'a str)>,
    line: usize,
    symbols: &'a dyn ScenarioSymbols,
}

impl<'a> LineParser<'a> {
    fn get(&self, key: &str) -> Result<&'a str, ScenarioError> {
        self.fields
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| err(self.line, format!("missing field `{key}`")))
    }

    fn tick(&self, key: &str) -> Result<Tick, ScenarioError> {
        let v = self.get(key)?;
        v.parse::<u64>()
            .map(Tick::new)
            .map_err(|_| err(self.line, format!("field `{key}`: `{v}` is not an instant")))
    }

    fn prob(&self, key: &str) -> Result<f64, ScenarioError> {
        let v = self.get(key)?;
        let p: f64 = v
            .parse()
            .map_err(|_| err(self.line, format!("field `{key}`: `{v}` is not a number")))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(err(
                self.line,
                format!("field `{key}`: {p} is not a probability in [0, 1]"),
            ));
        }
        Ok(p)
    }

    fn host(&self, key: &str) -> Result<HostId, ScenarioError> {
        let v = self.get(key)?;
        if let Ok(i) = v.parse::<u32>() {
            return Ok(HostId::new(i));
        }
        self.symbols
            .host(v)
            .ok_or_else(|| err(self.line, format!("unknown host `{v}`")))
    }

    fn comm(&self, key: &str) -> Result<CommunicatorId, ScenarioError> {
        let v = self.get(key)?;
        if let Ok(i) = v.parse::<u32>() {
            return Ok(CommunicatorId::new(i));
        }
        self.symbols
            .communicator(v)
            .ok_or_else(|| err(self.line, format!("unknown communicator `{v}`")))
    }

    fn known_keys(&self, keys: &[&str]) -> Result<(), ScenarioError> {
        for &(k, _) in &self.fields {
            if !keys.contains(&k) {
                return Err(err(self.line, format!("unknown field `{k}`")));
            }
        }
        Ok(())
    }
}

impl Scenario {
    /// An empty scenario (pure pass-through).
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Builds a scenario from events, validating the timeline.
    pub fn from_events(events: Vec<ScenarioEvent>) -> Result<Self, ScenarioError> {
        let s = Scenario { events };
        s.validate()?;
        Ok(s)
    }

    /// The scripted events, in declaration order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Parses the text format with numeric indices only.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        Self::parse_with(text, &NoSymbols)
    }

    /// Parses the text format, resolving non-numeric host/communicator
    /// fields through `symbols`.
    pub fn parse_with(
        text: &str,
        symbols: &dyn ScenarioSymbols,
    ) -> Result<Self, ScenarioError> {
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if trimmed.is_empty() {
                continue;
            }
            let (verb, rest) = trimmed.split_once(char::is_whitespace).unwrap_or((trimmed, ""));
            let p = LineParser {
                fields: fields(rest, line)?,
                line,
                symbols,
            };
            let event = match verb {
                "crash" => {
                    p.known_keys(&["host", "at"])?;
                    ScenarioEvent::Crash {
                        host: p.host("host")?,
                        at: p.tick("at")?,
                    }
                }
                "rejoin" => {
                    p.known_keys(&["host", "at"])?;
                    ScenarioEvent::Rejoin {
                        host: p.host("host")?,
                        at: p.tick("at")?,
                    }
                }
                "flaky" => {
                    p.known_keys(&["host", "from", "until", "up"])?;
                    ScenarioEvent::Flaky {
                        host: p.host("host")?,
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                        up: p.prob("up")?,
                    }
                }
                "stuck" => {
                    p.known_keys(&["comm", "from", "until"])?;
                    ScenarioEvent::StuckSensor {
                        comm: p.comm("comm")?,
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                    }
                }
                "burst" => {
                    p.known_keys(&["from", "until", "enter", "exit", "loss"])?;
                    ScenarioEvent::Burst {
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                        p_enter: p.prob("enter")?,
                        p_exit: p.prob("exit")?,
                        loss: p.prob("loss")?,
                    }
                }
                other => return Err(err(line, format!("unknown event `{other}`"))),
            };
            events.push(event);
        }
        Self::from_events(events)
    }

    /// Timeline validation: windows must be non-empty, and each host's
    /// crash/rejoin events must strictly alternate in increasing time
    /// order starting with a crash.
    fn validate(&self) -> Result<(), ScenarioError> {
        let mut max_host = 0usize;
        for e in &self.events {
            match *e {
                ScenarioEvent::Crash { host, .. }
                | ScenarioEvent::Rejoin { host, .. }
                | ScenarioEvent::Flaky { host, .. } => max_host = max_host.max(host.index() + 1),
                _ => {}
            }
            match *e {
                ScenarioEvent::Flaky { from, until, .. }
                | ScenarioEvent::StuckSensor { from, until, .. }
                | ScenarioEvent::Burst { from, until, .. }
                    if from >= until =>
                {
                    return Err(err(0, format!("empty window in `{e}`")));
                }
                _ => {}
            }
        }
        for h in 0..max_host {
            let host = HostId::new(h as u32);
            let mut last: Option<(Tick, bool)> = None; // (at, was_crash)
            for e in &self.events {
                let (at, is_crash) = match *e {
                    ScenarioEvent::Crash { host: eh, at } if eh == host => (at, true),
                    ScenarioEvent::Rejoin { host: eh, at } if eh == host => (at, false),
                    _ => continue,
                };
                match last {
                    None if !is_crash => {
                        return Err(err(0, format!("host {h}: rejoin before any crash")))
                    }
                    Some((prev, was_crash)) => {
                        if at <= prev {
                            return Err(err(
                                0,
                                format!("host {h}: crash/rejoin instants must increase"),
                            ));
                        }
                        if was_crash == is_crash {
                            let what = if is_crash { "crash" } else { "rejoin" };
                            return Err(err(0, format!("host {h}: repeated {what}")));
                        }
                    }
                    None => {}
                }
                last = Some((at, is_crash));
            }
        }
        Ok(())
    }

    /// Checks every host/communicator index against the model sizes.
    pub fn check_bounds(
        &self,
        host_count: usize,
        comm_count: usize,
    ) -> Result<(), ScenarioError> {
        for e in &self.events {
            match *e {
                ScenarioEvent::Crash { host, .. }
                | ScenarioEvent::Rejoin { host, .. }
                | ScenarioEvent::Flaky { host, .. } => {
                    if host.index() >= host_count {
                        return Err(err(
                            0,
                            format!("host {} out of range (have {host_count})", host.index()),
                        ));
                    }
                }
                ScenarioEvent::StuckSensor { comm, .. } => {
                    if comm.index() >= comm_count {
                        return Err(err(
                            0,
                            format!(
                                "communicator {} out of range (have {comm_count})",
                                comm.index()
                            ),
                        ));
                    }
                }
                ScenarioEvent::Burst { .. } => {}
            }
        }
        Ok(())
    }

    /// The scripted availability of `host` over `[0, horizon)`: the
    /// fraction of time it is not crash-down (flaky windows, being
    /// probabilistic, are not counted here).
    pub fn host_availability(&self, host: HostId, horizon: Tick) -> f64 {
        let horizon = horizon.as_u64();
        if horizon == 0 {
            return 1.0;
        }
        let mut down = 0u64;
        let mut down_since: Option<u64> = None;
        for e in &self.events {
            match *e {
                ScenarioEvent::Crash { host: h, at } if h == host => {
                    down_since.get_or_insert(at.as_u64().min(horizon));
                }
                ScenarioEvent::Rejoin { host: h, at } if h == host => {
                    if let Some(since) = down_since.take() {
                        down += at.as_u64().min(horizon).saturating_sub(since);
                    }
                }
                _ => {}
            }
        }
        if let Some(since) = down_since {
            down += horizon - since;
        }
        // Overlapping or duplicated crash windows (expressible on a
        // hand-built event list that bypassed `validate`) can accumulate
        // more downtime than the horizon holds; clamp so the subtraction
        // below cannot underflow.
        let down = down.min(horizon);
        (horizon - down) as f64 / horizon as f64
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Per-burst Gilbert–Elliott chain state.
#[derive(Debug, Clone, Copy)]
struct GeState {
    bad: bool,
    /// Last instant the chain advanced at (`u64::MAX` = never).
    last: u64,
    /// Loss decision for the current instant.
    lose_now: bool,
}

/// Runs a [`Scenario`] over an inner injector.
///
/// Crash/rejoin windows silence the host on every channel and surface
/// through [`FaultInjector::rejoined_at`] for the kernel's warm-up rule.
/// The inner injector's draws are sampled unconditionally and first, so
/// outside scripted outages the composite behaves bit-identically to the
/// inner injector alone.
#[derive(Debug, Clone)]
pub struct ScenarioInjector<I> {
    inner: I,
    /// Per host: crash/rejoin transitions as (instant, is_rejoin), sorted.
    transitions: Vec<Vec<(u64, bool)>>,
    /// Per host: flaky windows (from, until, up).
    flaky: Vec<Vec<(u64, u64, f64)>>,
    /// Cached flaky decision per host: (instant + 1, up) — 0 = no cache.
    flaky_cache: Vec<(u64, bool)>,
    bursts: Vec<(u64, u64, f64, f64, f64)>,
    ge: Vec<GeState>,
}

impl<I: FaultInjector> ScenarioInjector<I> {
    /// Compiles `scenario` over `inner` for a model with `host_count`
    /// hosts and `comm_count` communicators.
    pub fn new(
        inner: I,
        scenario: &Scenario,
        host_count: usize,
        comm_count: usize,
    ) -> Result<Self, ScenarioError> {
        scenario.check_bounds(host_count, comm_count)?;
        let mut transitions = vec![Vec::new(); host_count];
        let mut flaky = vec![Vec::new(); host_count];
        let mut bursts = Vec::new();
        for e in scenario.events() {
            match *e {
                ScenarioEvent::Crash { host, at } => {
                    transitions[host.index()].push((at.as_u64(), false));
                }
                ScenarioEvent::Rejoin { host, at } => {
                    transitions[host.index()].push((at.as_u64(), true));
                }
                ScenarioEvent::Flaky {
                    host,
                    from,
                    until,
                    up,
                } => flaky[host.index()].push((from.as_u64(), until.as_u64(), up)),
                ScenarioEvent::Burst {
                    from,
                    until,
                    p_enter,
                    p_exit,
                    loss,
                } => bursts.push((from.as_u64(), until.as_u64(), p_enter, p_exit, loss)),
                ScenarioEvent::StuckSensor { .. } => {} // environment-side
            }
        }
        for t in &mut transitions {
            t.sort_unstable();
        }
        Ok(ScenarioInjector {
            inner,
            transitions,
            flaky,
            flaky_cache: vec![(0, true); host_count],
            ge: vec![
                GeState {
                    bad: false,
                    last: u64::MAX,
                    lose_now: false,
                };
                bursts.len()
            ],
            bursts,
        })
    }

    /// The inner injector.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Latest crash/rejoin transition of `host` at or before `now`:
    /// `Some(true)` = rejoined, `Some(false)` = crashed, `None` = no
    /// transition yet.
    fn last_transition(&self, host: HostId, now: u64) -> Option<(u64, bool)> {
        let ts = &self.transitions[host.index()];
        match ts.partition_point(|&(at, _)| at <= now) {
            0 => None,
            i => Some(ts[i - 1]),
        }
    }

    fn crash_down(&self, host: HostId, now: u64) -> bool {
        matches!(self.last_transition(host, now), Some((_, false)))
    }

    /// The flaky decision for `(host, now)`, drawn once per instant and
    /// cached so execution and broadcast of the same instant agree. One
    /// draw per window containing `now`.
    fn flaky_up(&mut self, host: HostId, now: u64, rng: &mut StdRng) -> bool {
        let h = host.index();
        if self.flaky_cache[h].0 == now + 1 {
            return self.flaky_cache[h].1;
        }
        let mut up = true;
        for &(from, until, p) in &self.flaky[h] {
            if (from..until).contains(&now) && !rng.gen_bool(p) {
                up = false;
            }
        }
        self.flaky_cache[h] = (now + 1, up);
        up
    }

    /// Pure variant of [`Self::flaky_up`] for corruption suppression:
    /// uses the cached decision if present, else reports "up" (a host
    /// whose broadcast was never sampled this instant delivers nothing
    /// anyway).
    fn flaky_up_cached(&self, host: HostId, now: u64) -> bool {
        let h = host.index();
        if self.flaky_cache[h].0 == now + 1 {
            self.flaky_cache[h].1
        } else {
            true
        }
    }

    /// Advances every burst chain whose window contains `now` (once per
    /// instant) and reports whether the broadcast at `now` survives all
    /// of them. Exactly two draws per active window per new instant
    /// (transition + loss) and zero outside windows, independent of the
    /// chain state.
    fn burst_ok(&mut self, now: u64, rng: &mut StdRng) -> bool {
        let mut ok = true;
        for (i, &(from, until, p_enter, p_exit, loss)) in self.bursts.iter().enumerate() {
            if !(from..until).contains(&now) {
                continue;
            }
            let st = &mut self.ge[i];
            if st.last != now {
                st.last = now;
                let flip = rng.gen::<f64>();
                if st.bad {
                    if flip < p_exit {
                        st.bad = false;
                    }
                } else if flip < p_enter {
                    st.bad = true;
                }
                // Draw the loss unconditionally so the stream does not
                // depend on the chain state.
                st.lose_now = rng.gen::<f64>() < loss;
            }
            if st.bad && st.lose_now {
                ok = false;
            }
        }
        ok
    }
}

impl<I: FaultInjector> FaultInjector for ScenarioInjector<I> {
    fn host_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        let inner_ok = self.inner.host_ok(host, now, rng);
        let t = now.as_u64();
        let flaky_up = self.flaky_up(host, t, rng);
        inner_ok && flaky_up && !self.crash_down(host, t)
    }

    fn sensor_ok(&mut self, sensor: SensorId, now: Tick, rng: &mut StdRng) -> bool {
        self.inner.sensor_ok(sensor, now, rng)
    }

    fn broadcast_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        let inner_ok = self.inner.broadcast_ok(host, now, rng);
        let t = now.as_u64();
        let burst_ok = self.burst_ok(t, rng);
        let flaky_up = self.flaky_up(host, t, rng);
        inner_ok && burst_ok && flaky_up && !self.crash_down(host, t)
    }

    fn corrupt(
        &mut self,
        host: HostId,
        now: Tick,
        outputs: &mut [Value],
        rng: &mut StdRng,
    ) {
        let t = now.as_u64();
        // A crashed or flaked-out host is fail-silent: no corruption.
        if !self.crash_down(host, t) && self.flaky_up_cached(host, t) {
            self.inner.corrupt(host, now, outputs, rng);
        }
    }

    fn rejoined_at(&self, host: HostId, now: Tick) -> Option<Tick> {
        match self.last_transition(host, now.as_u64()) {
            Some((at, true)) => Some(Tick::new(at)),
            Some((_, false)) => None,
            None => self.inner.rejoined_at(host, now),
        }
    }

    fn corrupts(&self) -> bool {
        // The scenario layer only *suppresses* inner corruption (crashed
        // or flaked-out hosts are fail-silent); it never corrupts itself.
        self.inner.corrupts()
    }
}

/// Applies a scenario's stuck-at sensor windows over an inner
/// environment: during a window, [`Environment::sense`] keeps returning
/// the last value sensed before the window (the communicator's most
/// recent reading, or the environment's current value if the window
/// begins before the first reading).
pub struct ScenarioEnvironment<E> {
    inner: E,
    /// Per communicator: stuck windows (from, until), and the frozen value.
    windows: Vec<Vec<(u64, u64)>>,
    frozen: Vec<Option<Value>>,
}

impl<E: Environment> ScenarioEnvironment<E> {
    /// Layers `scenario`'s stuck-sensor windows over `inner`.
    pub fn new(inner: E, scenario: &Scenario, comm_count: usize) -> Self {
        let mut windows = vec![Vec::new(); comm_count];
        for e in scenario.events() {
            if let ScenarioEvent::StuckSensor { comm, from, until } = *e {
                windows[comm.index()].push((from.as_u64(), until.as_u64()));
            }
        }
        ScenarioEnvironment {
            inner,
            windows,
            frozen: vec![None; comm_count],
        }
    }

    /// The inner environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The inner environment, mutably.
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    fn stuck(&self, comm: CommunicatorId, now: u64) -> bool {
        self.windows[comm.index()]
            .iter()
            .any(|&(from, until)| (from..until).contains(&now))
    }
}

impl<E: Environment> Environment for ScenarioEnvironment<E> {
    fn advance(&mut self, now: Tick) {
        self.inner.advance(now);
    }

    fn sense(&mut self, comm: CommunicatorId, now: Tick) -> Value {
        // Sample the inner environment unconditionally so plant models
        // with sensing side effects stay in step across scenarios.
        let fresh = self.inner.sense(comm, now);
        if self.stuck(comm, now.as_u64()) {
            *self.frozen[comm.index()].get_or_insert(fresh)
        } else {
            self.frozen[comm.index()] = Some(fresh);
            fresh
        }
    }

    fn actuate(&mut self, comm: CommunicatorId, value: Value, now: Tick) {
        self.inner.actuate(comm, value, now);
    }

    fn is_passive(&self) -> bool {
        // Stuck-sensor freezing lives in `sense`; advance/actuate only
        // forward, so passivity is the inner environment's.
        self.inner.is_passive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::ConstantEnvironment;
    use crate::fault::NoFaults;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    const EXAMPLE: &str = "\
# outage of host 1
crash host=1 at=125000
rejoin host=1 at=200000
flaky host=2 from=0 until=50000 up=0.8
stuck comm=0 from=1000 until=2000
burst from=0 until=100000 enter=0.01 exit=0.2 loss=0.9
";

    #[test]
    fn parse_display_roundtrip_is_canonical() {
        let s = Scenario::parse(EXAMPLE).unwrap();
        assert_eq!(s.events().len(), 5);
        let canon = s.to_string();
        let s2 = Scenario::parse(&canon).unwrap();
        assert_eq!(s, s2);
        assert_eq!(canon, s2.to_string());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for (text, needle) in [
            ("boom host=1 at=5", "unknown event"),
            ("crash host=1", "missing field `at`"),
            ("crash host=1 at=x", "not an instant"),
            ("crash host=1 at=5 extra=1", "unknown field"),
            ("flaky host=0 from=0 until=10 up=1.5", "probability"),
            ("crash host 1 at 5", "key=value"),
            ("rejoin host=0 at=5", "rejoin before any crash"),
            ("crash host=0 at=9\nrejoin host=0 at=9", "must increase"),
            ("crash host=0 at=1\ncrash host=0 at=2", "repeated crash"),
            ("flaky host=0 from=10 until=10 up=0.5", "empty window"),
        ] {
            let e = Scenario::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "`{text}` → `{e}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn bounds_are_checked() {
        let s = Scenario::parse("crash host=9 at=5").unwrap();
        assert!(s.check_bounds(3, 1).is_err());
        assert!(s.check_bounds(10, 1).is_ok());
        let s = Scenario::parse("stuck comm=4 from=0 until=5").unwrap();
        assert!(s.check_bounds(1, 4).is_err());
        assert!(ScenarioInjector::new(NoFaults, &s, 1, 4).is_err());
    }

    #[test]
    fn crash_and_rejoin_silence_the_window() {
        let s = Scenario::parse("crash host=0 at=10\nrejoin host=0 at=20").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 2, 0).unwrap();
        let mut r = rng();
        let h = HostId::new(0);
        assert!(inj.host_ok(h, Tick::new(9), &mut r));
        for t in 10..20 {
            assert!(!inj.host_ok(h, Tick::new(t), &mut r), "t={t}");
            assert!(!inj.broadcast_ok(h, Tick::new(t), &mut r));
            assert_eq!(inj.rejoined_at(h, Tick::new(t)), None);
        }
        assert!(inj.host_ok(h, Tick::new(20), &mut r));
        assert_eq!(inj.rejoined_at(h, Tick::new(20)), Some(Tick::new(20)));
        assert_eq!(inj.rejoined_at(h, Tick::new(999)), Some(Tick::new(20)));
        // The other host is untouched and has no rejoin.
        let other = HostId::new(1);
        assert!(inj.host_ok(other, Tick::new(15), &mut r));
        assert_eq!(inj.rejoined_at(other, Tick::new(15)), None);
    }

    #[test]
    fn scenario_draws_nothing_outside_windows() {
        // With NoFaults inside and no flaky/burst window at `now`, the
        // injector must not consume randomness: two RNG clones stay in
        // lockstep.
        let s = Scenario::parse("crash host=0 at=10\nrejoin host=0 at=20").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 1, 0).unwrap();
        let mut r = rng();
        for t in 0..40 {
            inj.host_ok(HostId::new(0), Tick::new(t), &mut r);
            inj.broadcast_ok(HostId::new(0), Tick::new(t), &mut r);
        }
        let mut fresh = rng();
        assert_eq!(r.gen::<f64>(), fresh.gen::<f64>());
    }

    #[test]
    fn flaky_rate_matches_up_probability() {
        let s = Scenario::parse("flaky host=0 from=0 until=1000000 up=0.8").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 1, 0).unwrap();
        let mut r = rng();
        let n = 100_000u64;
        let mut up = 0u64;
        for t in 0..n {
            let a = inj.host_ok(HostId::new(0), Tick::new(t), &mut r);
            // Broadcast agrees with execution within the same instant.
            let b = inj.broadcast_ok(HostId::new(0), Tick::new(t), &mut r);
            assert_eq!(a, b, "t={t}");
            up += u64::from(a);
        }
        let rate = up as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
        // Flaky windows are transient: never a rejoin.
        assert_eq!(inj.rejoined_at(HostId::new(0), Tick::new(n)), None);
    }

    #[test]
    fn burst_loss_only_in_bad_state() {
        // enter=1 forces Bad at the first instant; loss=1 kills every
        // broadcast in the window; exit=0 keeps it Bad.
        let s = Scenario::parse("burst from=10 until=20 enter=1 exit=0 loss=1").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 1, 0).unwrap();
        let mut r = rng();
        let h = HostId::new(0);
        assert!(inj.broadcast_ok(h, Tick::new(9), &mut r));
        for t in 10..20 {
            assert!(!inj.broadcast_ok(h, Tick::new(t), &mut r), "t={t}");
            // Host execution is unaffected by broadcast bursts.
            assert!(inj.host_ok(h, Tick::new(t), &mut r));
        }
        assert!(inj.broadcast_ok(h, Tick::new(20), &mut r));
    }

    #[test]
    fn stuck_sensor_freezes_the_last_value() {
        struct Ramp;
        impl Environment for Ramp {
            fn advance(&mut self, _now: Tick) {}
            fn sense(&mut self, _comm: CommunicatorId, now: Tick) -> Value {
                Value::Float(now.as_u64() as f64)
            }
            fn actuate(&mut self, _comm: CommunicatorId, _value: Value, _now: Tick) {}
        }
        let s = Scenario::parse("stuck comm=0 from=10 until=30").unwrap();
        let mut env = ScenarioEnvironment::new(Ramp, &s, 1);
        let c = CommunicatorId::new(0);
        assert_eq!(env.sense(c, Tick::new(5)), Value::Float(5.0));
        // Window: frozen at the last pre-window reading.
        for t in [10u64, 20, 29] {
            assert_eq!(env.sense(c, Tick::new(t)), Value::Float(5.0), "t={t}");
        }
        assert_eq!(env.sense(c, Tick::new(30)), Value::Float(30.0));
        // A window starting before any reading freezes the first reading.
        let s2 = Scenario::parse("stuck comm=0 from=0 until=20").unwrap();
        let mut env2 = ScenarioEnvironment::new(Ramp, &s2, 1);
        assert_eq!(env2.sense(c, Tick::new(4)), Value::Float(4.0));
        assert_eq!(env2.sense(c, Tick::new(12)), Value::Float(4.0));
    }

    #[test]
    fn host_availability_accounts_for_outages() {
        let s = Scenario::parse("crash host=1 at=25\nrejoin host=1 at=75").unwrap();
        let h1 = HostId::new(1);
        assert!((s.host_availability(h1, Tick::new(100)) - 0.5).abs() < 1e-12);
        assert_eq!(s.host_availability(HostId::new(0), Tick::new(100)), 1.0);
        // Unterminated outage runs to the horizon.
        let s2 = Scenario::parse("crash host=0 at=80").unwrap();
        assert!(
            (s2.host_availability(HostId::new(0), Tick::new(100)) - 0.8).abs() < 1e-12
        );
    }

    /// Regression: cumulative downtime exceeding the horizon used to
    /// underflow `horizon - down` (debug panic / release wrap). Windows
    /// reaching or crossing the horizon must clamp to availability 0.
    #[test]
    fn host_availability_clamps_downtime_at_the_horizon() {
        let h = HostId::new(0);
        // Boundary via the public API: down for exactly the whole horizon.
        let s = Scenario::parse("crash host=0 at=0\nrejoin host=0 at=100").unwrap();
        assert_eq!(s.host_availability(h, Tick::new(100)), 0.0);
        // Unterminated crash from 0: down to the horizon, availability 0.
        let s = Scenario::parse("crash host=0 at=0").unwrap();
        assert_eq!(s.host_availability(h, Tick::new(50)), 0.0);
        // A rejoin beyond the horizon truncates at the horizon.
        let s = Scenario::parse("crash host=0 at=30\nrejoin host=0 at=500").unwrap();
        assert!((s.host_availability(h, Tick::new(100)) - 0.3).abs() < 1e-12);
        // Pathological hand-built timelines (not expressible through
        // `parse`, which enforces alternation) accumulate overlapping
        // windows; the clamp keeps the quotient in [0, 1].
        let s = Scenario {
            events: vec![
                ScenarioEvent::Crash {
                    host: h,
                    at: Tick::new(0),
                },
                ScenarioEvent::Rejoin {
                    host: h,
                    at: Tick::new(90),
                },
                ScenarioEvent::Crash {
                    host: h,
                    at: Tick::new(10),
                },
                ScenarioEvent::Rejoin {
                    host: h,
                    at: Tick::new(95),
                },
            ],
        };
        let a = s.host_availability(h, Tick::new(100));
        assert!((0.0..=1.0).contains(&a), "availability {a}");
    }

    proptest::proptest! {
        /// Any valid timeline's canonical rendering re-parses to an
        /// identical scenario, and the rendering is a fixpoint.
        #[test]
        fn random_scenarios_roundtrip_canonically(
            raw in proptest::collection::vec(proptest::any::<u64>(), 0..30),
            hosts in 1u32..5,
        ) {
            use proptest::prop_assert_eq;
            // Cook the raw words into a valid timeline: per-host outages
            // strictly increase, windows are non-empty, probabilities are
            // in [0, 1]. An occasional outage is left unterminated, which
            // closes that host's timeline.
            let mut events = Vec::new();
            let mut clock = vec![0u64; hosts as usize];
            let mut closed = vec![false; hosts as usize];
            for chunk in raw.chunks(3) {
                let a = chunk[0];
                let b = chunk.get(1).copied().unwrap_or(17);
                let c = chunk.get(2).copied().unwrap_or(29);
                let host = HostId::new((a / 4 % u64::from(hosts)) as u32);
                let h = host.index();
                let prob = |x: u64| (x % 101) as f64 / 100.0;
                match a % 4 {
                    0 if !closed[h] => {
                        let start = clock[h] + 1 + b % 1000;
                        events.push(ScenarioEvent::Crash {
                            host,
                            at: Tick::new(start),
                        });
                        if c % 7 == 0 {
                            closed[h] = true;
                        } else {
                            let end = start + 1 + c % 1000;
                            events.push(ScenarioEvent::Rejoin {
                                host,
                                at: Tick::new(end),
                            });
                            clock[h] = end;
                        }
                    }
                    1 => events.push(ScenarioEvent::Flaky {
                        host,
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                        up: prob(c),
                    }),
                    2 => events.push(ScenarioEvent::StuckSensor {
                        comm: CommunicatorId::new((b % 3) as u32),
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                    }),
                    _ => events.push(ScenarioEvent::Burst {
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                        p_enter: prob(c),
                        p_exit: prob(c / 101),
                        loss: prob(c / 10_201),
                    }),
                }
            }
            let s = Scenario::from_events(events).unwrap();
            let canon = s.to_string();
            let parsed = Scenario::parse(&canon).unwrap();
            prop_assert_eq!(&s, &parsed);
            prop_assert_eq!(canon, parsed.to_string());
        }
    }

    #[test]
    fn scenario_environment_passthrough() {
        let s = Scenario::new();
        let mut env =
            ScenarioEnvironment::new(ConstantEnvironment::new(Value::Float(3.0)), &s, 2);
        env.advance(Tick::new(1));
        assert_eq!(env.sense(CommunicatorId::new(1), Tick::new(1)), Value::Float(3.0));
        env.actuate(CommunicatorId::new(0), Value::Float(9.0), Tick::new(1));
    }
}
