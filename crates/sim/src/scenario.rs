//! Scripted fault scenarios with deterministic, replayable timelines.
//!
//! A [`Scenario`] is a list of [`ScenarioEvent`]s — host crashes and
//! rejoins, intermittent ("flaky") host windows, stuck-at sensor windows,
//! correlated broadcast burst loss via a Gilbert–Elliott two-state
//! channel, common-cause group outages, network partitions, Weibull
//! wear-out and an adaptive vote-pivot adversary — that layers over any
//! inner [`FaultInjector`] through [`ScenarioInjector`] and over any
//! [`Environment`] through [`ScenarioEnvironment`]. Scenarios serialize
//! to a small line-oriented text format (see [`Scenario::parse`]); the
//! canonical rendering round-trips exactly, so a replay from the
//! serialized form is bit-identical to the original run.
//!
//! # Text format
//!
//! An optional `scn v2` version header, then one event per line; `#`
//! starts a comment, blank lines are ignored. Headerless input is
//! accepted as v1 for back-compat; unknown versions are rejected:
//!
//! ```text
//! scn v2
//! # crash host 1 at instant 125000, bring it back at 200000
//! crash host=1 at=125000
//! rejoin host=1 at=200000
//! # host 2 only answers 80% of invocations during the window
//! flaky host=2 from=0 until=50000 up=0.8
//! # sensor-fed communicator 0 freezes its last value in the window
//! stuck comm=0 from=1000 until=2000
//! # Gilbert–Elliott burst loss on the broadcast channel
//! burst from=0 until=100000 enter=0.01 exit=0.2 loss=0.9
//! # one draw downs hosts 0 and 1 *together* (correlated outage)
//! common hosts=0,1 from=0 until=50000 p=0.02
//! # the network splits: {0,2} vs everyone else
//! partition hosts=0,2 from=10000 until=20000
//! # host 1 wears out along a Weibull hazard over the window
//! wearout host=1 from=0 until=100000 shape=2 scale=40000
//! # adversary knocks out the vote pivot for 500 ticks at a time
//! adversary from=0 until=100000 hold=500
//! ```
//!
//! Instants are ticks; windows are half-open `[from, until)`. Crashed
//! hosts are fail-silent on every channel (no execution, no broadcast,
//! no corruption) until their `rejoin`; the kernel then applies the
//! warm-up rule via [`FaultInjector::rejoined_at`]. Flaky, common-cause,
//! wear-out and adversary windows are transient — they never trigger
//! warm-up. All scenario randomness is drawn from the simulation's
//! seeded RNG in a fixed order (one flaky draw per host and instant, one
//! chain-advance plus one loss draw per burst window and broadcast
//! instant, one draw per common-cause group and instant made by the
//! first member queried, one draw per wear-out window per host and
//! instant; partitions and the adversary are draw-free), so runs remain
//! bit-reproducible and the inner injector's draw sequence is
//! unperturbed.

use crate::environment::Environment;
use crate::fault::FaultInjector;
use logrel_core::{CommunicatorId, HostId, SensorId, TaskId, Tick, Value};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A set of hosts identified by index, packed as a bitmask. Scenario
/// events that name host *groups* (common-cause outages, partitions)
/// support host indices `0..64` — far beyond any modelled architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSet(u64);

impl HostSet {
    /// The empty set.
    pub const EMPTY: HostSet = HostSet(0);

    /// Builds a set from host ids; fails with the offending id if an
    /// index is `≥ 64`.
    pub fn from_hosts(hosts: impl IntoIterator<Item = HostId>) -> Result<Self, HostId> {
        let mut set = HostSet(0);
        for h in hosts {
            if h.index() >= 64 {
                return Err(h);
            }
            set.0 |= 1 << h.index();
        }
        Ok(set)
    }

    /// Whether `host` is a member (indices `≥ 64` never are).
    #[must_use]
    pub fn contains(self, host: HostId) -> bool {
        host.index() < 64 && self.0 & (1 << host.index()) != 0
    }

    /// Number of members.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The members in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = HostId> {
        (0..64u32).filter(move |i| self.0 & (1 << i) != 0).map(HostId::new)
    }

    /// The largest member index, if any.
    #[must_use]
    pub fn max_index(self) -> Option<usize> {
        (self.0 != 0).then(|| 63 - self.0.leading_zeros() as usize)
    }
}

impl fmt::Display for HostSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, h) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", h.index())?;
        }
        Ok(())
    }
}

/// One scripted fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioEvent {
    /// `host` goes fail-silent at `at` (and stays down until a `Rejoin`).
    Crash {
        /// The crashing host.
        host: HostId,
        /// Crash instant.
        at: Tick,
    },
    /// `host` returns to service at `at`.
    Rejoin {
        /// The rejoining host.
        host: HostId,
        /// Rejoin instant.
        at: Tick,
    },
    /// During `[from, until)`, `host` answers each instant only with
    /// probability `up` (applies to execution and broadcast alike).
    Flaky {
        /// The intermittent host.
        host: HostId,
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
        /// Per-instant availability in `[0, 1]`.
        up: f64,
    },
    /// During `[from, until)`, the sensor-fed communicator `comm` keeps
    /// re-delivering the last value sensed before the window (a stuck-at
    /// sensor: reliable but stale).
    StuckSensor {
        /// The frozen sensor-fed communicator.
        comm: CommunicatorId,
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
    },
    /// During `[from, until)`, the broadcast channel runs a
    /// Gilbert–Elliott chain: Good→Bad with probability `p_enter` and
    /// Bad→Good with `p_exit` per broadcast instant; in the Bad state
    /// each broadcast is lost with probability `loss`.
    Burst {
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
        /// Per-instant Good→Bad transition probability.
        p_enter: f64,
        /// Per-instant Bad→Good transition probability.
        p_exit: f64,
        /// Loss probability per broadcast while in the Bad state.
        loss: f64,
    },
    /// During `[from, until)`, one *common-cause* draw per instant downs
    /// every host in `hosts` together with probability `p`. Each
    /// member's marginal per-instant availability stays `1 − p` (as an
    /// independent flaky window would give it), but the failures are
    /// perfectly correlated — the independence assumption behind
    /// Proposition 1 is deliberately violated. Transient (no warm-up).
    CommonCause {
        /// The correlated host group.
        hosts: HostSet,
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
        /// Per-instant probability that the whole group goes down.
        p: f64,
    },
    /// During `[from, until)`, the network splits into two sides: the
    /// listed `hosts` and everyone else. A broadcast is delivered only
    /// between hosts on the same side. Membership is scripted and
    /// draw-free; the kernels consult it through
    /// [`FaultInjector::delivers`].
    Partition {
        /// One side of the split (the complement is the other side).
        hosts: HostSet,
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
    },
    /// During `[from, until)`, `host` wears out along a Weibull hazard:
    /// at age `τ = now − from` it answers each instant only with
    /// survival probability `exp(−(τ/scale)^shape)`. Transient (no
    /// warm-up); `shape > 1` models ageing, `shape < 1` infant
    /// mortality.
    Wearout {
        /// The wearing host.
        host: HostId,
        /// Window start (inclusive) — the age origin.
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
        /// Weibull shape parameter `k > 0`.
        shape: f64,
        /// Weibull scale parameter `λ > 0`, in ticks.
        scale: f64,
    },
    /// During `[from, until)`, an adaptive adversary watches every vote
    /// (via [`FaultInjector::observe_vote`]); whenever a vote sits at
    /// the minimal strict majority — losing any one replica would flip
    /// it — the lowest-indexed delivering host is knocked out for the
    /// next `hold` ticks. Entirely draw-free, so it perturbs no RNG
    /// stream.
    Adversary {
        /// Window start (inclusive).
        from: Tick,
        /// Window end (exclusive).
        until: Tick,
        /// How many ticks a targeted host stays down after the vote.
        hold: u64,
    },
}

impl fmt::Display for ScenarioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScenarioEvent::Crash { host, at } => {
                write!(f, "crash host={} at={}", host.index(), at.as_u64())
            }
            ScenarioEvent::Rejoin { host, at } => {
                write!(f, "rejoin host={} at={}", host.index(), at.as_u64())
            }
            ScenarioEvent::Flaky {
                host,
                from,
                until,
                up,
            } => write!(
                f,
                "flaky host={} from={} until={} up={}",
                host.index(),
                from.as_u64(),
                until.as_u64(),
                up
            ),
            ScenarioEvent::StuckSensor { comm, from, until } => write!(
                f,
                "stuck comm={} from={} until={}",
                comm.index(),
                from.as_u64(),
                until.as_u64()
            ),
            ScenarioEvent::Burst {
                from,
                until,
                p_enter,
                p_exit,
                loss,
            } => write!(
                f,
                "burst from={} until={} enter={} exit={} loss={}",
                from.as_u64(),
                until.as_u64(),
                p_enter,
                p_exit,
                loss
            ),
            ScenarioEvent::CommonCause {
                hosts,
                from,
                until,
                p,
            } => write!(
                f,
                "common hosts={} from={} until={} p={}",
                hosts,
                from.as_u64(),
                until.as_u64(),
                p
            ),
            ScenarioEvent::Partition { hosts, from, until } => write!(
                f,
                "partition hosts={} from={} until={}",
                hosts,
                from.as_u64(),
                until.as_u64()
            ),
            ScenarioEvent::Wearout {
                host,
                from,
                until,
                shape,
                scale,
            } => write!(
                f,
                "wearout host={} from={} until={} shape={} scale={}",
                host.index(),
                from.as_u64(),
                until.as_u64(),
                shape,
                scale
            ),
            ScenarioEvent::Adversary { from, until, hold } => write!(
                f,
                "adversary from={} until={} hold={}",
                from.as_u64(),
                until.as_u64(),
                hold
            ),
        }
    }
}

/// A scripted fault timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    events: Vec<ScenarioEvent>,
}

/// A parse or validation failure, with the offending 1-based line (0 for
/// whole-scenario validation errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number; 0 for validation errors without a line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "scenario line {}: {}", self.line, self.message)
        } else {
            write!(f, "scenario: {}", self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Resolves names in scenario text to model ids, so scenario files may
/// say `crash host=main_a` against a compiled HTL program. Numeric
/// indices are always accepted.
pub trait ScenarioSymbols {
    /// The host named `name`, if any.
    fn host(&self, name: &str) -> Option<HostId>;
    /// The communicator named `name`, if any.
    fn communicator(&self, name: &str) -> Option<CommunicatorId>;
}

/// The no-symbols resolver: only numeric indices parse.
struct NoSymbols;

impl ScenarioSymbols for NoSymbols {
    fn host(&self, _name: &str) -> Option<HostId> {
        None
    }
    fn communicator(&self, _name: &str) -> Option<CommunicatorId> {
        None
    }
}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        message: message.into(),
    }
}

/// `key=value` fields of one line, in order.
fn fields(rest: &str, line: usize) -> Result<Vec<(&str, &str)>, ScenarioError> {
    rest.split_whitespace()
        .map(|kv| {
            kv.split_once('=')
                .ok_or_else(|| err(line, format!("expected key=value, got `{kv}`")))
        })
        .collect()
}

struct LineParser<'a> {
    fields: Vec<(&'a str, &'a str)>,
    line: usize,
    symbols: &'a dyn ScenarioSymbols,
}

impl<'a> LineParser<'a> {
    fn get(&self, key: &str) -> Result<&'a str, ScenarioError> {
        self.fields
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| err(self.line, format!("missing field `{key}`")))
    }

    fn tick(&self, key: &str) -> Result<Tick, ScenarioError> {
        let v = self.get(key)?;
        v.parse::<u64>()
            .map(Tick::new)
            .map_err(|_| err(self.line, format!("field `{key}`: `{v}` is not an instant")))
    }

    fn prob(&self, key: &str) -> Result<f64, ScenarioError> {
        let v = self.get(key)?;
        let p: f64 = v
            .parse()
            .map_err(|_| err(self.line, format!("field `{key}`: `{v}` is not a number")))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(err(
                self.line,
                format!("field `{key}`: {p} is not a probability in [0, 1]"),
            ));
        }
        Ok(p)
    }

    fn host(&self, key: &str) -> Result<HostId, ScenarioError> {
        let v = self.get(key)?;
        self.resolve_host(v)
    }

    fn resolve_host(&self, v: &str) -> Result<HostId, ScenarioError> {
        if let Ok(i) = v.parse::<u32>() {
            return Ok(HostId::new(i));
        }
        self.symbols
            .host(v)
            .ok_or_else(|| err(self.line, format!("unknown host `{v}`")))
    }

    /// A comma-separated, non-empty host list packed into a [`HostSet`].
    fn hosts(&self, key: &str) -> Result<HostSet, ScenarioError> {
        let v = self.get(key)?;
        let mut set = HostSet::EMPTY;
        for part in v.split(',') {
            if part.is_empty() {
                return Err(err(
                    self.line,
                    format!("field `{key}`: empty host in list `{v}`"),
                ));
            }
            let h = self.resolve_host(part)?;
            set = HostSet::from_hosts(set.iter().chain([h])).map_err(|h| {
                err(
                    self.line,
                    format!(
                        "field `{key}`: host {} exceeds the group limit of 64",
                        h.index()
                    ),
                )
            })?;
        }
        Ok(set)
    }

    /// A strictly positive, finite number (Weibull shape/scale).
    fn positive(&self, key: &str) -> Result<f64, ScenarioError> {
        let v = self.get(key)?;
        let x: f64 = v
            .parse()
            .map_err(|_| err(self.line, format!("field `{key}`: `{v}` is not a number")))?;
        if !(x.is_finite() && x > 0.0) {
            return Err(err(
                self.line,
                format!("field `{key}`: {x} is not a positive number"),
            ));
        }
        Ok(x)
    }

    /// A strictly positive integer (tick counts).
    fn count(&self, key: &str) -> Result<u64, ScenarioError> {
        let v = self.get(key)?;
        let n: u64 = v
            .parse()
            .map_err(|_| err(self.line, format!("field `{key}`: `{v}` is not a count")))?;
        if n == 0 {
            return Err(err(self.line, format!("field `{key}` must be at least 1")));
        }
        Ok(n)
    }

    fn comm(&self, key: &str) -> Result<CommunicatorId, ScenarioError> {
        let v = self.get(key)?;
        if let Ok(i) = v.parse::<u32>() {
            return Ok(CommunicatorId::new(i));
        }
        self.symbols
            .communicator(v)
            .ok_or_else(|| err(self.line, format!("unknown communicator `{v}`")))
    }

    fn known_keys(&self, keys: &[&str]) -> Result<(), ScenarioError> {
        for &(k, _) in &self.fields {
            if !keys.contains(&k) {
                return Err(err(self.line, format!("unknown field `{k}`")));
            }
        }
        Ok(())
    }
}

impl Scenario {
    /// An empty scenario (pure pass-through).
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Builds a scenario from events, validating the timeline.
    pub fn from_events(events: Vec<ScenarioEvent>) -> Result<Self, ScenarioError> {
        let s = Scenario { events };
        s.validate()?;
        Ok(s)
    }

    /// The scripted events, in declaration order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Parses the text format with numeric indices only.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        Self::parse_with(text, &NoSymbols)
    }

    /// Parses the text format, resolving non-numeric host/communicator
    /// fields through `symbols`.
    pub fn parse_with(
        text: &str,
        symbols: &dyn ScenarioSymbols,
    ) -> Result<Self, ScenarioError> {
        let mut events = Vec::new();
        let mut significant_lines = 0usize;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if trimmed.is_empty() {
                continue;
            }
            significant_lines += 1;
            let (verb, rest) = trimmed.split_once(char::is_whitespace).unwrap_or((trimmed, ""));
            // Version directive: `scn v2` as the first significant line.
            // Headerless input is v1 (the original, pre-versioned format).
            if verb == "scn" {
                if significant_lines != 1 {
                    return Err(err(line, "version directive must be the first line"));
                }
                match rest.trim() {
                    "v1" | "v2" => continue,
                    other => {
                        return Err(err(
                            line,
                            format!("unsupported scenario version `{other}` (expected v1 or v2)"),
                        ))
                    }
                }
            }
            let p = LineParser {
                fields: fields(rest, line)?,
                line,
                symbols,
            };
            let event = match verb {
                "crash" => {
                    p.known_keys(&["host", "at"])?;
                    ScenarioEvent::Crash {
                        host: p.host("host")?,
                        at: p.tick("at")?,
                    }
                }
                "rejoin" => {
                    p.known_keys(&["host", "at"])?;
                    ScenarioEvent::Rejoin {
                        host: p.host("host")?,
                        at: p.tick("at")?,
                    }
                }
                "flaky" => {
                    p.known_keys(&["host", "from", "until", "up"])?;
                    ScenarioEvent::Flaky {
                        host: p.host("host")?,
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                        up: p.prob("up")?,
                    }
                }
                "stuck" => {
                    p.known_keys(&["comm", "from", "until"])?;
                    ScenarioEvent::StuckSensor {
                        comm: p.comm("comm")?,
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                    }
                }
                "burst" => {
                    p.known_keys(&["from", "until", "enter", "exit", "loss"])?;
                    ScenarioEvent::Burst {
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                        p_enter: p.prob("enter")?,
                        p_exit: p.prob("exit")?,
                        loss: p.prob("loss")?,
                    }
                }
                "common" => {
                    p.known_keys(&["hosts", "from", "until", "p"])?;
                    ScenarioEvent::CommonCause {
                        hosts: p.hosts("hosts")?,
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                        p: p.prob("p")?,
                    }
                }
                "partition" => {
                    p.known_keys(&["hosts", "from", "until"])?;
                    ScenarioEvent::Partition {
                        hosts: p.hosts("hosts")?,
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                    }
                }
                "wearout" => {
                    p.known_keys(&["host", "from", "until", "shape", "scale"])?;
                    ScenarioEvent::Wearout {
                        host: p.host("host")?,
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                        shape: p.positive("shape")?,
                        scale: p.positive("scale")?,
                    }
                }
                "adversary" => {
                    p.known_keys(&["from", "until", "hold"])?;
                    ScenarioEvent::Adversary {
                        from: p.tick("from")?,
                        until: p.tick("until")?,
                        hold: p.count("hold")?,
                    }
                }
                other => return Err(err(line, format!("unknown event `{other}`"))),
            };
            events.push(event);
        }
        Self::from_events(events)
    }

    /// Timeline validation: windows must be non-empty, host groups must
    /// have members, probabilities and Weibull parameters must be sane,
    /// and each host's crash/rejoin events must strictly alternate in
    /// increasing time order starting with a crash.
    fn validate(&self) -> Result<(), ScenarioError> {
        let mut max_host = 0usize;
        for e in &self.events {
            match *e {
                ScenarioEvent::Crash { host, .. }
                | ScenarioEvent::Rejoin { host, .. }
                | ScenarioEvent::Flaky { host, .. } => max_host = max_host.max(host.index() + 1),
                _ => {}
            }
            match *e {
                ScenarioEvent::Flaky { from, until, .. }
                | ScenarioEvent::StuckSensor { from, until, .. }
                | ScenarioEvent::Burst { from, until, .. }
                | ScenarioEvent::CommonCause { from, until, .. }
                | ScenarioEvent::Partition { from, until, .. }
                | ScenarioEvent::Wearout { from, until, .. }
                | ScenarioEvent::Adversary { from, until, .. }
                    if from >= until =>
                {
                    return Err(err(0, format!("empty window in `{e}`")));
                }
                _ => {}
            }
            match *e {
                ScenarioEvent::CommonCause { hosts, p, .. } => {
                    if hosts.is_empty() {
                        return Err(err(0, format!("empty host group in `{e}`")));
                    }
                    if !(0.0..=1.0).contains(&p) {
                        return Err(err(0, format!("probability out of [0, 1] in `{e}`")));
                    }
                }
                ScenarioEvent::Partition { hosts, .. } if hosts.is_empty() => {
                    return Err(err(0, format!("empty host group in `{e}`")));
                }
                ScenarioEvent::Wearout { shape, scale, .. }
                    if !(shape.is_finite()
                        && shape > 0.0
                        && scale.is_finite()
                        && scale > 0.0) =>
                {
                    return Err(err(
                        0,
                        format!("wearout shape/scale must be positive in `{e}`"),
                    ));
                }
                ScenarioEvent::Adversary { hold: 0, .. } => {
                    return Err(err(0, format!("adversary hold must be at least 1 in `{e}`")));
                }
                _ => {}
            }
        }
        for h in 0..max_host {
            let host = HostId::new(h as u32);
            let mut last: Option<(Tick, bool)> = None; // (at, was_crash)
            for e in &self.events {
                let (at, is_crash) = match *e {
                    ScenarioEvent::Crash { host: eh, at } if eh == host => (at, true),
                    ScenarioEvent::Rejoin { host: eh, at } if eh == host => (at, false),
                    _ => continue,
                };
                match last {
                    None if !is_crash => {
                        return Err(err(0, format!("host {h}: rejoin before any crash")))
                    }
                    Some((prev, was_crash)) => {
                        if at <= prev {
                            return Err(err(
                                0,
                                format!("host {h}: crash/rejoin instants must increase"),
                            ));
                        }
                        if was_crash == is_crash {
                            let what = if is_crash { "crash" } else { "rejoin" };
                            return Err(err(0, format!("host {h}: repeated {what}")));
                        }
                    }
                    None => {}
                }
                last = Some((at, is_crash));
            }
        }
        Ok(())
    }

    /// Checks every host/communicator index against the model sizes.
    pub fn check_bounds(
        &self,
        host_count: usize,
        comm_count: usize,
    ) -> Result<(), ScenarioError> {
        for e in &self.events {
            match *e {
                ScenarioEvent::Crash { host, .. }
                | ScenarioEvent::Rejoin { host, .. }
                | ScenarioEvent::Flaky { host, .. } => {
                    if host.index() >= host_count {
                        return Err(err(
                            0,
                            format!("host {} out of range (have {host_count})", host.index()),
                        ));
                    }
                }
                ScenarioEvent::StuckSensor { comm, .. } => {
                    if comm.index() >= comm_count {
                        return Err(err(
                            0,
                            format!(
                                "communicator {} out of range (have {comm_count})",
                                comm.index()
                            ),
                        ));
                    }
                }
                ScenarioEvent::Wearout { host, .. } => {
                    if host.index() >= host_count {
                        return Err(err(
                            0,
                            format!("host {} out of range (have {host_count})", host.index()),
                        ));
                    }
                }
                ScenarioEvent::CommonCause { hosts, .. }
                | ScenarioEvent::Partition { hosts, .. } => {
                    if let Some(max) = hosts.max_index() {
                        if max >= host_count {
                            return Err(err(
                                0,
                                format!("host {max} out of range (have {host_count})"),
                            ));
                        }
                    }
                }
                ScenarioEvent::Burst { .. } | ScenarioEvent::Adversary { .. } => {}
            }
        }
        Ok(())
    }

    /// The scripted availability of `host` over `[0, horizon)`: the
    /// fraction of time it is not crash-down (flaky windows, being
    /// probabilistic, are not counted here).
    pub fn host_availability(&self, host: HostId, horizon: Tick) -> f64 {
        let horizon = horizon.as_u64();
        if horizon == 0 {
            return 1.0;
        }
        let mut down = 0u64;
        let mut down_since: Option<u64> = None;
        for e in &self.events {
            match *e {
                ScenarioEvent::Crash { host: h, at } if h == host => {
                    down_since.get_or_insert(at.as_u64().min(horizon));
                }
                ScenarioEvent::Rejoin { host: h, at } if h == host => {
                    if let Some(since) = down_since.take() {
                        down += at.as_u64().min(horizon).saturating_sub(since);
                    }
                }
                _ => {}
            }
        }
        if let Some(since) = down_since {
            down += horizon - since;
        }
        // Overlapping or duplicated crash windows (expressible on a
        // hand-built event list that bypassed `validate`) can accumulate
        // more downtime than the horizon holds; clamp so the subtraction
        // below cannot underflow.
        let down = down.min(horizon);
        (horizon - down) as f64 / horizon as f64
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scn v2")?;
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Per-burst Gilbert–Elliott chain state.
#[derive(Debug, Clone, Copy)]
struct GeState {
    bad: bool,
    /// Last instant the chain advanced at (`u64::MAX` = never).
    last: u64,
    /// Loss decision for the current instant.
    lose_now: bool,
}

/// Runs a [`Scenario`] over an inner injector.
///
/// Crash/rejoin windows silence the host on every channel and surface
/// through [`FaultInjector::rejoined_at`] for the kernel's warm-up rule.
/// The inner injector's draws are sampled unconditionally and first, so
/// outside scripted outages the composite behaves bit-identically to the
/// inner injector alone.
#[derive(Debug, Clone)]
pub struct ScenarioInjector<I> {
    inner: I,
    /// Per host: crash/rejoin transitions as (instant, is_rejoin), sorted.
    transitions: Vec<Vec<(u64, bool)>>,
    /// Per host: flaky windows (from, until, up).
    flaky: Vec<Vec<(u64, u64, f64)>>,
    /// Cached flaky decision per host: (instant + 1, up) — 0 = no cache.
    flaky_cache: Vec<(u64, bool)>,
    bursts: Vec<(u64, u64, f64, f64, f64)>,
    ge: Vec<GeState>,
    /// Common-cause groups: (from, until, p, members), in event order.
    commons: Vec<(u64, u64, f64, HostSet)>,
    /// Cached group decision: (instant + 1, down) — 0 = no cache. The
    /// first member queried at an instant draws for the whole group.
    common_cache: Vec<(u64, bool)>,
    /// Per host: wear-out windows (from, until, shape, scale).
    wearouts: Vec<Vec<(u64, u64, f64, f64)>>,
    /// Cached wear decision per host: (instant + 1, up) — 0 = no cache.
    wear_cache: Vec<(u64, bool)>,
    /// Partition windows: (from, until, one side). Draw-free.
    splits: Vec<(u64, u64, HostSet)>,
    /// Adversary windows: (from, until, hold). Draw-free.
    adversaries: Vec<(u64, u64, u64)>,
    /// Per host: adversary-imposed downtime — down while `now < until`.
    adv_until: Vec<u64>,
}

impl<I: FaultInjector> ScenarioInjector<I> {
    /// Compiles `scenario` over `inner` for a model with `host_count`
    /// hosts and `comm_count` communicators.
    pub fn new(
        inner: I,
        scenario: &Scenario,
        host_count: usize,
        comm_count: usize,
    ) -> Result<Self, ScenarioError> {
        scenario.check_bounds(host_count, comm_count)?;
        let mut transitions = vec![Vec::new(); host_count];
        let mut flaky = vec![Vec::new(); host_count];
        let mut bursts = Vec::new();
        let mut commons = Vec::new();
        let mut wearouts = vec![Vec::new(); host_count];
        let mut splits = Vec::new();
        let mut adversaries = Vec::new();
        for e in scenario.events() {
            match *e {
                ScenarioEvent::Crash { host, at } => {
                    transitions[host.index()].push((at.as_u64(), false));
                }
                ScenarioEvent::Rejoin { host, at } => {
                    transitions[host.index()].push((at.as_u64(), true));
                }
                ScenarioEvent::Flaky {
                    host,
                    from,
                    until,
                    up,
                } => flaky[host.index()].push((from.as_u64(), until.as_u64(), up)),
                ScenarioEvent::Burst {
                    from,
                    until,
                    p_enter,
                    p_exit,
                    loss,
                } => bursts.push((from.as_u64(), until.as_u64(), p_enter, p_exit, loss)),
                ScenarioEvent::StuckSensor { .. } => {} // environment-side
                ScenarioEvent::CommonCause {
                    hosts,
                    from,
                    until,
                    p,
                } => commons.push((from.as_u64(), until.as_u64(), p, hosts)),
                ScenarioEvent::Partition { hosts, from, until } => {
                    splits.push((from.as_u64(), until.as_u64(), hosts));
                }
                ScenarioEvent::Wearout {
                    host,
                    from,
                    until,
                    shape,
                    scale,
                } => wearouts[host.index()].push((from.as_u64(), until.as_u64(), shape, scale)),
                ScenarioEvent::Adversary { from, until, hold } => {
                    adversaries.push((from.as_u64(), until.as_u64(), hold));
                }
            }
        }
        for t in &mut transitions {
            t.sort_unstable();
        }
        Ok(ScenarioInjector {
            inner,
            transitions,
            flaky,
            flaky_cache: vec![(0, true); host_count],
            ge: vec![
                GeState {
                    bad: false,
                    last: u64::MAX,
                    lose_now: false,
                };
                bursts.len()
            ],
            bursts,
            common_cache: vec![(0, false); commons.len()],
            commons,
            wearouts,
            wear_cache: vec![(0, true); host_count],
            splits,
            adversaries,
            adv_until: vec![0; host_count],
        })
    }

    /// The inner injector.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Latest crash/rejoin transition of `host` at or before `now`:
    /// `Some(true)` = rejoined, `Some(false)` = crashed, `None` = no
    /// transition yet.
    fn last_transition(&self, host: HostId, now: u64) -> Option<(u64, bool)> {
        let ts = &self.transitions[host.index()];
        match ts.partition_point(|&(at, _)| at <= now) {
            0 => None,
            i => Some(ts[i - 1]),
        }
    }

    fn crash_down(&self, host: HostId, now: u64) -> bool {
        matches!(self.last_transition(host, now), Some((_, false)))
    }

    /// The flaky decision for `(host, now)`, drawn once per instant and
    /// cached so execution and broadcast of the same instant agree. One
    /// draw per window containing `now`.
    fn flaky_up(&mut self, host: HostId, now: u64, rng: &mut StdRng) -> bool {
        let h = host.index();
        if self.flaky_cache[h].0 == now + 1 {
            return self.flaky_cache[h].1;
        }
        let mut up = true;
        for &(from, until, p) in &self.flaky[h] {
            if (from..until).contains(&now) && !rng.gen_bool(p) {
                up = false;
            }
        }
        self.flaky_cache[h] = (now + 1, up);
        up
    }

    /// Pure variant of [`Self::flaky_up`] for corruption suppression:
    /// uses the cached decision if present, else reports "up" (a host
    /// whose broadcast was never sampled this instant delivers nothing
    /// anyway).
    fn flaky_up_cached(&self, host: HostId, now: u64) -> bool {
        let h = host.index();
        if self.flaky_cache[h].0 == now + 1 {
            self.flaky_cache[h].1
        } else {
            true
        }
    }

    /// The common-cause decision for `(host, now)`: every group that
    /// contains `host` and whose window contains `now` draws once per
    /// instant — made by the first member queried, cached for the rest —
    /// so all members fail *together*. Zero draws outside windows.
    fn common_down(&mut self, host: HostId, now: u64, rng: &mut StdRng) -> bool {
        let mut down = false;
        for (i, &(from, until, p, members)) in self.commons.iter().enumerate() {
            if !members.contains(host) || !(from..until).contains(&now) {
                continue;
            }
            let cache = &mut self.common_cache[i];
            if cache.0 != now + 1 {
                *cache = (now + 1, rng.gen_bool(p));
            }
            if cache.1 {
                down = true;
            }
        }
        down
    }

    /// Pure variant of [`Self::common_down`] for corruption suppression:
    /// uses cached decisions only (a group never sampled this instant
    /// delivered nothing anyway).
    fn common_down_cached(&self, host: HostId, now: u64) -> bool {
        self.commons.iter().enumerate().any(|(i, &(from, until, _, members))| {
            members.contains(host)
                && (from..until).contains(&now)
                && self.common_cache[i] == (now + 1, true)
        })
    }

    /// The Weibull wear-out decision for `(host, now)`, one unconditional
    /// draw per active window per new instant with survival probability
    /// `exp(−(τ/scale)^shape)` at window age `τ`. Cached per instant like
    /// the flaky decision; zero draws outside windows.
    fn wear_up(&mut self, host: HostId, now: u64, rng: &mut StdRng) -> bool {
        let h = host.index();
        if self.wear_cache[h].0 == now + 1 {
            return self.wear_cache[h].1;
        }
        let mut up = true;
        for &(from, until, shape, scale) in &self.wearouts[h] {
            if (from..until).contains(&now) {
                let x = (now - from) as f64 / scale;
                // The canonical shapes — exponential (1) and Rayleigh
                // (2) — skip the libm powf; this is the per-instant hot
                // path of every wearing host.
                let hazard = if shape == 2.0 {
                    x * x
                } else if shape == 1.0 {
                    x
                } else {
                    x.powf(shape)
                };
                if !rng.gen_bool((-hazard).exp()) {
                    up = false;
                }
            }
        }
        self.wear_cache[h] = (now + 1, up);
        up
    }

    /// Pure variant of [`Self::wear_up`] for corruption suppression.
    fn wear_up_cached(&self, host: HostId, now: u64) -> bool {
        let h = host.index();
        if self.wear_cache[h].0 == now + 1 {
            self.wear_cache[h].1
        } else {
            true
        }
    }

    /// Whether the adversary currently holds `host` down. Pure.
    fn adv_down(&self, host: HostId, now: u64) -> bool {
        now < self.adv_until[host.index()]
    }

    /// Advances every burst chain whose window contains `now` (once per
    /// instant) and reports whether the broadcast at `now` survives all
    /// of them. Exactly two draws per active window per new instant
    /// (transition + loss) and zero outside windows, independent of the
    /// chain state.
    fn burst_ok(&mut self, now: u64, rng: &mut StdRng) -> bool {
        let mut ok = true;
        for (i, &(from, until, p_enter, p_exit, loss)) in self.bursts.iter().enumerate() {
            if !(from..until).contains(&now) {
                continue;
            }
            let st = &mut self.ge[i];
            if st.last != now {
                st.last = now;
                let flip = rng.gen::<f64>();
                if st.bad {
                    if flip < p_exit {
                        st.bad = false;
                    }
                } else if flip < p_enter {
                    st.bad = true;
                }
                // Draw the loss unconditionally so the stream does not
                // depend on the chain state.
                st.lose_now = rng.gen::<f64>() < loss;
            }
            if st.bad && st.lose_now {
                ok = false;
            }
        }
        ok
    }
}

impl<I: FaultInjector> FaultInjector for ScenarioInjector<I> {
    fn host_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        let inner_ok = self.inner.host_ok(host, now, rng);
        let t = now.as_u64();
        let flaky_up = self.flaky_up(host, t, rng);
        let common_down = self.common_down(host, t, rng);
        let wear_up = self.wear_up(host, t, rng);
        inner_ok
            && flaky_up
            && !common_down
            && wear_up
            && !self.crash_down(host, t)
            && !self.adv_down(host, t)
    }

    fn sensor_ok(&mut self, sensor: SensorId, now: Tick, rng: &mut StdRng) -> bool {
        self.inner.sensor_ok(sensor, now, rng)
    }

    fn broadcast_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        let inner_ok = self.inner.broadcast_ok(host, now, rng);
        let t = now.as_u64();
        let burst_ok = self.burst_ok(t, rng);
        let flaky_up = self.flaky_up(host, t, rng);
        let common_down = self.common_down(host, t, rng);
        let wear_up = self.wear_up(host, t, rng);
        inner_ok
            && burst_ok
            && flaky_up
            && !common_down
            && wear_up
            && !self.crash_down(host, t)
            && !self.adv_down(host, t)
    }

    fn corrupt(
        &mut self,
        host: HostId,
        now: Tick,
        outputs: &mut [Value],
        rng: &mut StdRng,
    ) {
        let t = now.as_u64();
        // A host silenced by any scripted process is fail-silent: no
        // corruption. The cached variants are pure, so no draws shift.
        if !self.crash_down(host, t)
            && self.flaky_up_cached(host, t)
            && !self.common_down_cached(host, t)
            && self.wear_up_cached(host, t)
            && !self.adv_down(host, t)
        {
            self.inner.corrupt(host, now, outputs, rng);
        }
    }

    fn rejoined_at(&self, host: HostId, now: Tick) -> Option<Tick> {
        match self.last_transition(host, now.as_u64()) {
            Some((at, true)) => Some(Tick::new(at)),
            Some((_, false)) => None,
            None => self.inner.rejoined_at(host, now),
        }
    }

    fn corrupts(&self) -> bool {
        // The scenario layer only *suppresses* inner corruption (crashed
        // or flaked-out hosts are fail-silent); it never corrupts itself.
        self.inner.corrupts()
    }

    fn delivers(&self, sender: HostId, receiver: HostId, now: Tick) -> bool {
        let t = now.as_u64();
        self.splits.iter().all(|&(from, until, side)| {
            !(from..until).contains(&t) || side.contains(sender) == side.contains(receiver)
        }) && self.inner.delivers(sender, receiver, now)
    }

    fn partitions(&self) -> bool {
        !self.splits.is_empty() || self.inner.partitions()
    }

    fn observe_vote(&mut self, task: TaskId, now: Tick, delivered: &[HostId], total: usize) {
        self.inner.observe_vote(task, now, delivered, total);
        let t = now.as_u64();
        // The pivot: the vote holds exactly the minimal strict majority,
        // so losing any one delivering replica flips it. Target the
        // lowest-indexed delivering host (deterministic, draw-free).
        if delivered.is_empty() || delivered.len() != total / 2 + 1 {
            return;
        }
        let target = delivered.iter().copied().min().expect("non-empty");
        for &(from, until, hold) in &self.adversaries {
            if (from..until).contains(&t) {
                let u = &mut self.adv_until[target.index()];
                *u = (*u).max(t + 1 + hold);
            }
        }
    }

    fn adaptive(&self) -> bool {
        !self.adversaries.is_empty() || self.inner.adaptive()
    }
}

/// Applies a scenario's stuck-at sensor windows over an inner
/// environment: during a window, [`Environment::sense`] keeps returning
/// the last value sensed before the window (the communicator's most
/// recent reading, or the environment's current value if the window
/// begins before the first reading).
pub struct ScenarioEnvironment<E> {
    inner: E,
    /// Per communicator: stuck windows (from, until), and the frozen value.
    windows: Vec<Vec<(u64, u64)>>,
    frozen: Vec<Option<Value>>,
}

impl<E: Environment> ScenarioEnvironment<E> {
    /// Layers `scenario`'s stuck-sensor windows over `inner`.
    pub fn new(inner: E, scenario: &Scenario, comm_count: usize) -> Self {
        let mut windows = vec![Vec::new(); comm_count];
        for e in scenario.events() {
            if let ScenarioEvent::StuckSensor { comm, from, until } = *e {
                windows[comm.index()].push((from.as_u64(), until.as_u64()));
            }
        }
        ScenarioEnvironment {
            inner,
            windows,
            frozen: vec![None; comm_count],
        }
    }

    /// The inner environment.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The inner environment, mutably.
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    fn stuck(&self, comm: CommunicatorId, now: u64) -> bool {
        self.windows[comm.index()]
            .iter()
            .any(|&(from, until)| (from..until).contains(&now))
    }
}

impl<E: Environment> Environment for ScenarioEnvironment<E> {
    fn advance(&mut self, now: Tick) {
        self.inner.advance(now);
    }

    fn sense(&mut self, comm: CommunicatorId, now: Tick) -> Value {
        // Sample the inner environment unconditionally so plant models
        // with sensing side effects stay in step across scenarios.
        let fresh = self.inner.sense(comm, now);
        if self.stuck(comm, now.as_u64()) {
            *self.frozen[comm.index()].get_or_insert(fresh)
        } else {
            self.frozen[comm.index()] = Some(fresh);
            fresh
        }
    }

    fn actuate(&mut self, comm: CommunicatorId, value: Value, now: Tick) {
        self.inner.actuate(comm, value, now);
    }

    fn is_passive(&self) -> bool {
        // Stuck-sensor freezing lives in `sense`; advance/actuate only
        // forward, so passivity is the inner environment's.
        self.inner.is_passive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::ConstantEnvironment;
    use crate::fault::NoFaults;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    const EXAMPLE: &str = "\
# outage of host 1
crash host=1 at=125000
rejoin host=1 at=200000
flaky host=2 from=0 until=50000 up=0.8
stuck comm=0 from=1000 until=2000
burst from=0 until=100000 enter=0.01 exit=0.2 loss=0.9
common hosts=0,2 from=5000 until=9000 p=0.25
partition hosts=1 from=3000 until=4000
wearout host=2 from=60000 until=90000 shape=2 scale=10000
adversary from=0 until=20000 hold=50
";

    #[test]
    fn parse_display_roundtrip_is_canonical() {
        // Headerless input is v1; the canonical rendering carries the
        // `scn v2` header and is a parse/display fixpoint.
        let s = Scenario::parse(EXAMPLE).unwrap();
        assert_eq!(s.events().len(), 9);
        let canon = s.to_string();
        assert!(canon.starts_with("scn v2\n"), "canon: {canon}");
        let s2 = Scenario::parse(&canon).unwrap();
        assert_eq!(s, s2);
        assert_eq!(canon, s2.to_string());
    }

    #[test]
    fn version_directive_is_checked() {
        for ok in ["scn v1\ncrash host=0 at=5\n", "scn v2\ncrash host=0 at=5\n"] {
            assert_eq!(Scenario::parse(ok).unwrap().events().len(), 1, "{ok}");
        }
        // Comments and blank lines may precede the directive.
        assert!(Scenario::parse("# hi\n\nscn v2\ncrash host=0 at=5\n").is_ok());
        let e = Scenario::parse("scn v3\ncrash host=0 at=5\n").unwrap_err();
        assert!(e.to_string().contains("unsupported scenario version `v3`"), "{e}");
        assert_eq!(e.line, 1);
        let e = Scenario::parse("crash host=0 at=5\nscn v2\n").unwrap_err();
        assert!(e.to_string().contains("must be the first line"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for (text, needle) in [
            ("boom host=1 at=5", "unknown event"),
            ("crash host=1", "missing field `at`"),
            ("crash host=1 at=x", "not an instant"),
            ("crash host=1 at=5 extra=1", "unknown field"),
            ("flaky host=0 from=0 until=10 up=1.5", "probability"),
            ("crash host 1 at 5", "key=value"),
            ("rejoin host=0 at=5", "rejoin before any crash"),
            ("crash host=0 at=9\nrejoin host=0 at=9", "must increase"),
            ("crash host=0 at=1\ncrash host=0 at=2", "repeated crash"),
            ("flaky host=0 from=10 until=10 up=0.5", "empty window"),
            ("common hosts= from=0 until=5 p=0.5", "empty host"),
            ("common hosts=0,1 from=0 until=5 p=1.5", "probability"),
            ("common hosts=0,1 from=0 until=5", "missing field `p`"),
            ("partition hosts=0 from=5 until=5", "empty window"),
            ("partition hosts=0,70 from=0 until=5", "group limit of 64"),
            ("wearout host=0 from=0 until=9 shape=0 scale=5", "positive"),
            ("wearout host=0 from=0 until=9 shape=1 scale=nan", "positive"),
            ("adversary from=0 until=5 hold=0", "at least 1"),
            ("adversary from=0 until=5 hold=1 p=0.5", "unknown field"),
        ] {
            let e = Scenario::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "`{text}` → `{e}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn bounds_are_checked() {
        let s = Scenario::parse("crash host=9 at=5").unwrap();
        assert!(s.check_bounds(3, 1).is_err());
        assert!(s.check_bounds(10, 1).is_ok());
        let s = Scenario::parse("stuck comm=4 from=0 until=5").unwrap();
        assert!(s.check_bounds(1, 4).is_err());
        assert!(ScenarioInjector::new(NoFaults, &s, 1, 4).is_err());
        let s = Scenario::parse("common hosts=0,9 from=0 until=5 p=0.1").unwrap();
        assert!(s.check_bounds(3, 0).is_err());
        assert!(s.check_bounds(10, 0).is_ok());
        let s = Scenario::parse("wearout host=5 from=0 until=5 shape=1 scale=1").unwrap();
        assert!(s.check_bounds(5, 0).is_err());
    }

    #[test]
    fn crash_and_rejoin_silence_the_window() {
        let s = Scenario::parse("crash host=0 at=10\nrejoin host=0 at=20").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 2, 0).unwrap();
        let mut r = rng();
        let h = HostId::new(0);
        assert!(inj.host_ok(h, Tick::new(9), &mut r));
        for t in 10..20 {
            assert!(!inj.host_ok(h, Tick::new(t), &mut r), "t={t}");
            assert!(!inj.broadcast_ok(h, Tick::new(t), &mut r));
            assert_eq!(inj.rejoined_at(h, Tick::new(t)), None);
        }
        assert!(inj.host_ok(h, Tick::new(20), &mut r));
        assert_eq!(inj.rejoined_at(h, Tick::new(20)), Some(Tick::new(20)));
        assert_eq!(inj.rejoined_at(h, Tick::new(999)), Some(Tick::new(20)));
        // The other host is untouched and has no rejoin.
        let other = HostId::new(1);
        assert!(inj.host_ok(other, Tick::new(15), &mut r));
        assert_eq!(inj.rejoined_at(other, Tick::new(15)), None);
    }

    #[test]
    fn scenario_draws_nothing_outside_windows() {
        // With NoFaults inside and no flaky/burst window at `now`, the
        // injector must not consume randomness: two RNG clones stay in
        // lockstep.
        let s = Scenario::parse("crash host=0 at=10\nrejoin host=0 at=20").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 1, 0).unwrap();
        let mut r = rng();
        for t in 0..40 {
            inj.host_ok(HostId::new(0), Tick::new(t), &mut r);
            inj.broadcast_ok(HostId::new(0), Tick::new(t), &mut r);
        }
        let mut fresh = rng();
        assert_eq!(r.gen::<f64>(), fresh.gen::<f64>());
    }

    #[test]
    fn flaky_rate_matches_up_probability() {
        let s = Scenario::parse("flaky host=0 from=0 until=1000000 up=0.8").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 1, 0).unwrap();
        let mut r = rng();
        let n = 100_000u64;
        let mut up = 0u64;
        for t in 0..n {
            let a = inj.host_ok(HostId::new(0), Tick::new(t), &mut r);
            // Broadcast agrees with execution within the same instant.
            let b = inj.broadcast_ok(HostId::new(0), Tick::new(t), &mut r);
            assert_eq!(a, b, "t={t}");
            up += u64::from(a);
        }
        let rate = up as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
        // Flaky windows are transient: never a rejoin.
        assert_eq!(inj.rejoined_at(HostId::new(0), Tick::new(n)), None);
    }

    #[test]
    fn burst_loss_only_in_bad_state() {
        // enter=1 forces Bad at the first instant; loss=1 kills every
        // broadcast in the window; exit=0 keeps it Bad.
        let s = Scenario::parse("burst from=10 until=20 enter=1 exit=0 loss=1").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 1, 0).unwrap();
        let mut r = rng();
        let h = HostId::new(0);
        assert!(inj.broadcast_ok(h, Tick::new(9), &mut r));
        for t in 10..20 {
            assert!(!inj.broadcast_ok(h, Tick::new(t), &mut r), "t={t}");
            // Host execution is unaffected by broadcast bursts.
            assert!(inj.host_ok(h, Tick::new(t), &mut r));
        }
        assert!(inj.broadcast_ok(h, Tick::new(20), &mut r));
    }

    #[test]
    fn common_cause_downs_the_group_together() {
        let s = Scenario::parse("common hosts=0,1 from=0 until=100000 p=0.3").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 3, 0).unwrap();
        let mut r = rng();
        let n = 50_000u64;
        let mut down = 0u64;
        for t in 0..n {
            let a = inj.host_ok(HostId::new(0), Tick::new(t), &mut r);
            let b = inj.host_ok(HostId::new(1), Tick::new(t), &mut r);
            // One draw per instant for the whole group: members always
            // agree — the failures are perfectly correlated.
            assert_eq!(a, b, "t={t}");
            // Broadcast of the same instant reuses the cached decision.
            assert_eq!(a, inj.broadcast_ok(HostId::new(0), Tick::new(t), &mut r));
            // A host outside the group is untouched.
            assert!(inj.host_ok(HostId::new(2), Tick::new(t), &mut r));
            down += u64::from(!a);
        }
        // The marginal per-instant failure rate of each member matches
        // the group probability (what an independent flaky window with
        // up = 1 − p would give it).
        let rate = down as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn wearout_hazard_grows_with_age() {
        // shape=2, scale=1000: survival exp(−(τ/1000)²) — certain at age
        // 0, astronomically unlikely by age 5000.
        let s = Scenario::parse("wearout host=0 from=100 until=10000 shape=2 scale=1000").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 1, 0).unwrap();
        let mut r = rng();
        let h = HostId::new(0);
        // Outside the window: untouched (and draw-free, checked below).
        assert!(inj.host_ok(h, Tick::new(99), &mut r));
        // Age 0: survival probability exactly 1.
        assert!(inj.host_ok(h, Tick::new(100), &mut r));
        // Execution and broadcast of one instant agree via the cache.
        for t in 100..200 {
            let a = inj.host_ok(h, Tick::new(t), &mut r);
            assert_eq!(a, inj.broadcast_ok(h, Tick::new(t), &mut r), "t={t}");
        }
        // Deep into wear-out the host is effectively gone.
        let up = (5000..5100)
            .filter(|&t| inj.host_ok(h, Tick::new(t), &mut r))
            .count();
        assert_eq!(up, 0, "survivals at age 4900+: {up}");
        // Wear-out is transient (no rejoin bookkeeping).
        assert_eq!(inj.rejoined_at(h, Tick::new(9999)), None);
    }

    #[test]
    fn partition_masks_cross_side_delivery_only() {
        let s = Scenario::parse("partition hosts=0 from=10 until=20").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 3, 0).unwrap();
        assert!(inj.partitions());
        let (a, b, c) = (HostId::new(0), HostId::new(1), HostId::new(2));
        // Inside the window: the listed side {0} is cut off from {1, 2},
        // both directions; same-side pairs still deliver.
        for t in 10..20 {
            let now = Tick::new(t);
            assert!(!inj.delivers(a, b, now), "t={t}");
            assert!(!inj.delivers(b, a, now), "t={t}");
            assert!(inj.delivers(b, c, now), "t={t}");
            assert!(inj.delivers(a, a, now), "t={t}");
        }
        // Outside: everything delivers.
        for t in [0, 9, 20, 100] {
            assert!(inj.delivers(a, b, Tick::new(t)), "t={t}");
        }
        // Partitions never touch execution or broadcast draws.
        let mut r = rng();
        for t in 0..40 {
            assert!(inj.host_ok(a, Tick::new(t), &mut r));
            assert!(inj.broadcast_ok(a, Tick::new(t), &mut r));
        }
        let mut fresh = rng();
        assert_eq!(r.gen::<f64>(), fresh.gen::<f64>());
    }

    #[test]
    fn adversary_holds_the_vote_pivot_down() {
        let s = Scenario::parse("adversary from=0 until=100 hold=5").unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 3, 0).unwrap();
        assert!(inj.adaptive());
        let mut r = rng();
        let (a, b, c) = (HostId::new(0), HostId::new(1), HostId::new(2));
        let task = TaskId::new(0);
        // Unanimous vote (3/3): no pivot, nothing happens.
        inj.observe_vote(task, Tick::new(10), &[a, b, c], 3);
        assert!(inj.host_ok(a, Tick::new(11), &mut r));
        // Below majority (1/3): the vote already failed, nothing to flip.
        inj.observe_vote(task, Tick::new(10), &[b], 3);
        assert!(inj.host_ok(b, Tick::new(11), &mut r));
        // Minimal strict majority (2/3): the lowest-indexed delivering
        // host is held down for `hold` instants starting next instant.
        inj.observe_vote(task, Tick::new(10), &[b, c], 3);
        for t in 11..16 {
            assert!(!inj.host_ok(b, Tick::new(t), &mut r), "t={t}");
            assert!(!inj.broadcast_ok(b, Tick::new(t), &mut r), "t={t}");
        }
        assert!(inj.host_ok(b, Tick::new(16), &mut r));
        assert!(inj.host_ok(c, Tick::new(12), &mut r), "non-pivot untouched");
        // Outside the adversary window the hook is inert.
        inj.observe_vote(task, Tick::new(500), &[b, c], 3);
        assert!(inj.host_ok(b, Tick::new(501), &mut r));
        // The whole adversary machinery is draw-free.
        let mut fresh = rng();
        assert_eq!(r.gen::<f64>(), fresh.gen::<f64>());
    }

    #[test]
    fn new_events_draw_nothing_outside_windows() {
        // Same discipline as crash/rejoin: with every window in the
        // future, the composite consumes no randomness at all.
        let s = Scenario::parse(
            "common hosts=0,1 from=1000 until=2000 p=0.5\n\
             wearout host=0 from=1000 until=2000 shape=1 scale=10\n\
             partition hosts=0 from=1000 until=2000\n\
             adversary from=1000 until=2000 hold=5",
        )
        .unwrap();
        let mut inj = ScenarioInjector::new(NoFaults, &s, 2, 0).unwrap();
        let mut r = rng();
        for t in 0..100 {
            for h in [HostId::new(0), HostId::new(1)] {
                assert!(inj.host_ok(h, Tick::new(t), &mut r));
                assert!(inj.broadcast_ok(h, Tick::new(t), &mut r));
            }
            inj.delivers(HostId::new(0), HostId::new(1), Tick::new(t));
        }
        let mut fresh = rng();
        assert_eq!(r.gen::<f64>(), fresh.gen::<f64>());
    }

    #[test]
    fn stuck_sensor_freezes_the_last_value() {
        struct Ramp;
        impl Environment for Ramp {
            fn advance(&mut self, _now: Tick) {}
            fn sense(&mut self, _comm: CommunicatorId, now: Tick) -> Value {
                Value::Float(now.as_u64() as f64)
            }
            fn actuate(&mut self, _comm: CommunicatorId, _value: Value, _now: Tick) {}
        }
        let s = Scenario::parse("stuck comm=0 from=10 until=30").unwrap();
        let mut env = ScenarioEnvironment::new(Ramp, &s, 1);
        let c = CommunicatorId::new(0);
        assert_eq!(env.sense(c, Tick::new(5)), Value::Float(5.0));
        // Window: frozen at the last pre-window reading.
        for t in [10u64, 20, 29] {
            assert_eq!(env.sense(c, Tick::new(t)), Value::Float(5.0), "t={t}");
        }
        assert_eq!(env.sense(c, Tick::new(30)), Value::Float(30.0));
        // A window starting before any reading freezes the first reading.
        let s2 = Scenario::parse("stuck comm=0 from=0 until=20").unwrap();
        let mut env2 = ScenarioEnvironment::new(Ramp, &s2, 1);
        assert_eq!(env2.sense(c, Tick::new(4)), Value::Float(4.0));
        assert_eq!(env2.sense(c, Tick::new(12)), Value::Float(4.0));
    }

    #[test]
    fn host_availability_accounts_for_outages() {
        let s = Scenario::parse("crash host=1 at=25\nrejoin host=1 at=75").unwrap();
        let h1 = HostId::new(1);
        assert!((s.host_availability(h1, Tick::new(100)) - 0.5).abs() < 1e-12);
        assert_eq!(s.host_availability(HostId::new(0), Tick::new(100)), 1.0);
        // Unterminated outage runs to the horizon.
        let s2 = Scenario::parse("crash host=0 at=80").unwrap();
        assert!(
            (s2.host_availability(HostId::new(0), Tick::new(100)) - 0.8).abs() < 1e-12
        );
    }

    /// Regression: cumulative downtime exceeding the horizon used to
    /// underflow `horizon - down` (debug panic / release wrap). Windows
    /// reaching or crossing the horizon must clamp to availability 0.
    #[test]
    fn host_availability_clamps_downtime_at_the_horizon() {
        let h = HostId::new(0);
        // Boundary via the public API: down for exactly the whole horizon.
        let s = Scenario::parse("crash host=0 at=0\nrejoin host=0 at=100").unwrap();
        assert_eq!(s.host_availability(h, Tick::new(100)), 0.0);
        // Unterminated crash from 0: down to the horizon, availability 0.
        let s = Scenario::parse("crash host=0 at=0").unwrap();
        assert_eq!(s.host_availability(h, Tick::new(50)), 0.0);
        // A rejoin beyond the horizon truncates at the horizon.
        let s = Scenario::parse("crash host=0 at=30\nrejoin host=0 at=500").unwrap();
        assert!((s.host_availability(h, Tick::new(100)) - 0.3).abs() < 1e-12);
        // Pathological hand-built timelines (not expressible through
        // `parse`, which enforces alternation) accumulate overlapping
        // windows; the clamp keeps the quotient in [0, 1].
        let s = Scenario {
            events: vec![
                ScenarioEvent::Crash {
                    host: h,
                    at: Tick::new(0),
                },
                ScenarioEvent::Rejoin {
                    host: h,
                    at: Tick::new(90),
                },
                ScenarioEvent::Crash {
                    host: h,
                    at: Tick::new(10),
                },
                ScenarioEvent::Rejoin {
                    host: h,
                    at: Tick::new(95),
                },
            ],
        };
        let a = s.host_availability(h, Tick::new(100));
        assert!((0.0..=1.0).contains(&a), "availability {a}");
    }

    proptest::proptest! {
        /// Any valid timeline's canonical rendering re-parses to an
        /// identical scenario, and the rendering is a fixpoint.
        #[test]
        fn random_scenarios_roundtrip_canonically(
            raw in proptest::collection::vec(proptest::any::<u64>(), 0..30),
            hosts in 1u32..5,
        ) {
            use proptest::prop_assert_eq;
            // Cook the raw words into a valid timeline: per-host outages
            // strictly increase, windows are non-empty, probabilities are
            // in [0, 1]. An occasional outage is left unterminated, which
            // closes that host's timeline.
            let mut events = Vec::new();
            let mut clock = vec![0u64; hosts as usize];
            let mut closed = vec![false; hosts as usize];
            for chunk in raw.chunks(3) {
                let a = chunk[0];
                let b = chunk.get(1).copied().unwrap_or(17);
                let c = chunk.get(2).copied().unwrap_or(29);
                let host = HostId::new((a / 8 % u64::from(hosts)) as u32);
                let h = host.index();
                let prob = |x: u64| (x % 101) as f64 / 100.0;
                // A non-empty group of 1–2 in-range hosts.
                let group = HostSet::from_hosts(
                    [host, HostId::new((b % u64::from(hosts)) as u32)]
                        .into_iter()
                        .take(1 + (c % 2) as usize),
                )
                .unwrap();
                match a % 8 {
                    0 if !closed[h] => {
                        let start = clock[h] + 1 + b % 1000;
                        events.push(ScenarioEvent::Crash {
                            host,
                            at: Tick::new(start),
                        });
                        if c % 7 == 0 {
                            closed[h] = true;
                        } else {
                            let end = start + 1 + c % 1000;
                            events.push(ScenarioEvent::Rejoin {
                                host,
                                at: Tick::new(end),
                            });
                            clock[h] = end;
                        }
                    }
                    1 => events.push(ScenarioEvent::Flaky {
                        host,
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                        up: prob(c),
                    }),
                    2 => events.push(ScenarioEvent::StuckSensor {
                        comm: CommunicatorId::new((b % 3) as u32),
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                    }),
                    3 => events.push(ScenarioEvent::Burst {
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                        p_enter: prob(c),
                        p_exit: prob(c / 101),
                        loss: prob(c / 10_201),
                    }),
                    4 => events.push(ScenarioEvent::CommonCause {
                        hosts: group,
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                        p: prob(c),
                    }),
                    5 => events.push(ScenarioEvent::Partition {
                        hosts: group,
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                    }),
                    6 => events.push(ScenarioEvent::Wearout {
                        host,
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                        shape: (c % 40 + 1) as f64 / 10.0,
                        scale: (b % 5000 + 1) as f64,
                    }),
                    _ => events.push(ScenarioEvent::Adversary {
                        from: Tick::new(b % 10_000),
                        until: Tick::new(b % 10_000 + 1 + c % 1000),
                        hold: 1 + c % 500,
                    }),
                }
            }
            let s = Scenario::from_events(events).unwrap();
            let canon = s.to_string();
            let parsed = Scenario::parse(&canon).unwrap();
            prop_assert_eq!(&s, &parsed);
            prop_assert_eq!(canon, parsed.to_string());
        }
    }

    #[test]
    fn scenario_environment_passthrough() {
        let s = Scenario::new();
        let mut env =
            ScenarioEnvironment::new(ConstantEnvironment::new(Value::Float(3.0)), &s, 2);
        env.advance(Tick::new(1));
        assert_eq!(env.sense(CommunicatorId::new(1), Tick::new(1)), Value::Float(3.0));
        env.actuate(CommunicatorId::new(0), Value::Float(9.0), Tick::new(1));
    }
}
